//! Offline vendored mini benchmark harness exposing the `criterion` API
//! subset the workspace uses: `Criterion::bench_function`, `Bencher::iter`
//! and `iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Timing is wall-clock with a fixed warm-up and measurement budget; output
//! is a single line per benchmark (median ns/iter). Good enough to compare
//! hot paths locally without crates.io access.

use std::time::{Duration, Instant};

/// How batches are sized in [`Bencher::iter_batched`]; accepted for API
/// compatibility — every batch holds one setup product.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup product per iteration.
    PerIteration,
}

/// The benchmark driver handed to group functions.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Set the measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Run one benchmark and print its median iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.samples.sort_unstable();
        let median = b
            .samples
            .get(b.samples.len() / 2)
            .copied()
            .unwrap_or_default();
        println!("bench {id:<48} {median:>12.1} ns/iter ({} samples)", b.samples.len());
        self
    }
}

/// Runs the measured routine.
pub struct Bencher {
    budget: Duration,
    samples: Vec<u64>,
}

impl Bencher {
    /// Measure `routine` repeatedly until the budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        while start.elapsed() < self.budget && self.samples.len() < 100_000 {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed().as_nanos() as u64);
        }
    }

    /// Measure `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        while start.elapsed() < self.budget && self.samples.len() < 100_000 {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed().as_nanos() as u64);
        }
    }
}

/// Re-export so `criterion::black_box` callers work.
pub use std::hint::black_box;

/// Declare a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(Vec::<u8>::new, |v| v.len(), BatchSize::SmallInput)
        });
    }
}
