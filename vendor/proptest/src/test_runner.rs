//! Test configuration and the deterministic RNG driving generation.

/// Configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 96 }
    }
}

/// A deterministic SplitMix64 RNG seeded from the test name.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the name, fixed basis).
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Seed directly.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A biased coin: true with probability `num/denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = TestRng::for_test("below");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let v = r.usize_in(3, 9);
            assert!((3..9).contains(&v));
        }
    }
}
