//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::Range;

/// Vectors of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = draw_size(&self.size, rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// BTree maps with up to `size` entries (duplicate keys collapse, as in
/// upstream proptest).
pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy { keys, values, size }
}

/// Strategy returned by [`btree_map`].
#[derive(Clone, Debug)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = draw_size(&self.size, rng);
        let mut out = BTreeMap::new();
        for _ in 0..n {
            out.insert(self.keys.generate(rng), self.values.generate(rng));
        }
        out
    }
}

fn draw_size(range: &Range<usize>, rng: &mut TestRng) -> usize {
    assert!(range.start < range.end, "empty size range");
    rng.usize_in(range.start, range.end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_respects_size() {
        let s = vec(any::<u8>(), 2..5);
        let mut rng = TestRng::for_test("vec");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn map_keys_collapse() {
        let s = btree_map("[a-b]{1}", any::<u8>(), 0..8);
        let mut rng = TestRng::for_test("map");
        for _ in 0..50 {
            let m = s.generate(&mut rng);
            assert!(m.len() <= 2, "only two possible keys");
        }
    }
}
