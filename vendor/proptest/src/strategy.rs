//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree or shrinking: a strategy
/// is just a deterministic generator over a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Keep only values for which `pred` holds (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            pred,
        }
    }

    /// Build a recursive strategy: `self` is the leaf case, and `recurse`
    /// wraps an inner strategy into the branch case, applied up to `depth`
    /// levels. The size/branch hints are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        strat
    }

    /// Type-erase into a cheaply-cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, shareable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1024 candidates", self.whence);
    }
}

/// Uniform choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0, self.options.len());
        self.options[i].generate(rng)
    }
}

// --- integer ranges ---------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                ((self.start as i128) + off) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// --- tuples -----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A/0);
tuple_strategy!(A/0, B/1);
tuple_strategy!(A/0, B/1, C/2);
tuple_strategy!(A/0, B/1, C/2, D/3);
tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);
tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6);
tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);

// --- regex-literal string strategies ---------------------------------------

/// A `&str` is a strategy generating strings from a small regex subset:
/// sequences of `.`, literal characters, and `[a-z0-9]`-style classes, each
/// optionally repeated with `{m}`, `{m,n}`, `*`, `+`, or `?`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Clone, Debug)]
enum Atom {
    /// `.`: any character (mostly printable ASCII, occasionally exotic).
    Any,
    /// A literal character.
    Lit(char),
    /// A character class as a flat list of candidates.
    Class(Vec<char>),
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse_pattern(pattern);
    let mut out = String::new();
    for (atom, lo, hi) in &atoms {
        let n = if lo == hi {
            *lo
        } else {
            rng.usize_in(*lo, hi + 1)
        };
        for _ in 0..n {
            out.push(match atom {
                Atom::Lit(c) => *c,
                Atom::Class(cs) => cs[rng.usize_in(0, cs.len())],
                Atom::Any => {
                    if rng.chance(1, 10) {
                        // Occasionally exercise non-ASCII and control chars.
                        const EXOTIC: &[char] =
                            &['\0', '\u{1}', '\n', '\t', 'é', '中', '\u{7f}', '𝄞'];
                        EXOTIC[rng.usize_in(0, EXOTIC.len())]
                    } else {
                        (0x20 + rng.below(0x5f) as u8) as char
                    }
                }
            });
        }
    }
    out
}

fn parse_pattern(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let mut cs = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (a, b) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in a..=b {
                            if let Some(c) = char::from_u32(c) {
                                cs.push(c);
                            }
                        }
                        j += 3;
                    } else {
                        cs.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                assert!(!cs.is_empty(), "empty class in pattern {pattern:?}");
                Atom::Class(cs)
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Lit(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        // Optional repetition suffix.
        let (lo, hi) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed repeat in pattern {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        None => {
                            let n = body.trim().parse().expect("repeat count");
                            (n, n)
                        }
                        Some((a, b)) => (
                            a.trim().parse().expect("repeat lower bound"),
                            b.trim().parse().expect("repeat upper bound"),
                        ),
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, lo, hi));
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests")
    }

    #[test]
    fn just_clones() {
        let s = Just(42);
        assert_eq!(s.generate(&mut rng()), 42);
    }

    #[test]
    fn map_and_filter_compose() {
        let s = (0i64..10).prop_map(|x| x * 2).prop_filter("small", |x| *x < 10);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && v < 10);
        }
    }

    #[test]
    fn union_picks_every_arm_eventually() {
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut r = rng();
        let picks: std::collections::BTreeSet<u8> =
            (0..64).map(|_| s.generate(&mut r)).collect();
        assert_eq!(picks.len(), 2);
    }

    #[test]
    fn pattern_shapes() {
        let mut r = rng();
        for _ in 0..50 {
            let s = "[a-z0-9]{0,12}".generate(&mut r);
            assert!(s.len() <= 12);
            assert!(s.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()));
            let t = "[a-c]{1}".generate(&mut r);
            assert_eq!(t.len(), 1);
            assert!(("a"..="c").contains(&t.as_str()));
            let u = "x\\.y".generate(&mut r);
            assert_eq!(u, "x.y");
        }
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        let s = Just(T::Leaf).prop_recursive(3, 8, 2, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(T::Node)
        });
        let mut r = rng();
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        for _ in 0..100 {
            assert!(depth(&s.generate(&mut r)) <= 3);
        }
    }
}
