//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical strategy.
pub trait Arbitrary {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (biased toward edge values).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // One case in eight is an edge value; the rest are raw bits.
                if rng.chance(1, 8) {
                    const EDGES: &[$t] = &[0, 1, <$t>::MAX, <$t>::MIN];
                    EDGES[rng.usize_in(0, EDGES.len())]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        if rng.chance(1, 8) {
            const EDGES: &[f64] = &[
                0.0,
                -0.0,
                1.0,
                -1.0,
                f64::MIN_POSITIVE,
                f64::MAX,
                f64::EPSILON,
            ];
            EDGES[rng.usize_in(0, EDGES.len())]
        } else if rng.chance(1, 4) {
            // A "reasonable" magnitude double.
            (rng.next_u64() as i64 % 1_000_000) as f64 / 997.0
        } else {
            // Raw bit pattern: covers subnormals, infinities, NaNs.
            f64::from_bits(rng.next_u64())
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        if rng.chance(3, 4) {
            (0x20 + rng.below(0x5f) as u8) as char
        } else {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{fffd}')
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_edges_and_bulk() {
        let mut rng = TestRng::for_test("arb");
        let vals: Vec<i64> = (0..256).map(|_| i64::arbitrary(&mut rng)).collect();
        assert!(vals.contains(&0) || vals.contains(&i64::MAX) || vals.contains(&i64::MIN));
        let distinct: std::collections::BTreeSet<_> = vals.iter().collect();
        assert!(distinct.len() > 100, "raw-bit values should dominate");
    }

    #[test]
    fn f64_hits_specials_sometimes() {
        let mut rng = TestRng::for_test("arb-f64");
        let vals: Vec<f64> = (0..512).map(|_| f64::arbitrary(&mut rng)).collect();
        assert!(vals.iter().any(|v| v.is_finite()));
        assert!(vals.iter().any(|v| *v == 0.0));
    }
}
