//! Offline vendored mini property-testing engine.
//!
//! The workspace builds in environments with no crates.io access, so this
//! crate reimplements the subset of the `proptest` API the workspace uses:
//! the [`Strategy`] trait with `prop_map`/`prop_filter`/`prop_recursive`,
//! [`strategy::Just`], `any::<T>()`, integer-range and regex-literal
//! strategies, `collection::{vec, btree_map}`, tuple strategies, and the
//! `proptest!`/`prop_oneof!`/`prop_assert!` macros.
//!
//! Generation is fully deterministic: each test derives its RNG seed from
//! the test name, so failures reproduce across runs. Shrinking is not
//! implemented — a failing case panics with the generated inputs printed
//! via the assertion message.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run each property as a normal `#[test]` over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]: one generated test fn per property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strats = ($($strat,)+);
            let mut __rng =
                $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strats, &mut __rng);
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a property; failure panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum V {
        I(i64),
        S(String),
        L(Vec<V>),
    }

    fn arb_v() -> impl Strategy<Value = V> {
        let leaf = prop_oneof![
            any::<i64>().prop_map(V::I),
            "[a-c]{1,3}".prop_map(V::S),
        ];
        leaf.prop_recursive(2, 8, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(V::L)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5i64..7, n in 1usize..4) {
            prop_assert!((-5..7).contains(&x));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn regex_literals_match_shape(s in "[a-z]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn recursive_values_generate(v in arb_v()) {
            // Exercise the value; equality with itself is trivially true.
            prop_assert_eq!(&v, &v);
        }

        #[test]
        fn filter_applies(x in any::<i64>().prop_filter("even", |x| x % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(any::<u8>(), 0..16);
        let run = |seed: &str| {
            let mut rng = TestRng::for_test(seed);
            (0..20).map(|_| strat.generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run("a"), run("a"));
        assert_ne!(run("a"), run("b"));
    }
}
