//! Offline vendored shim of the `bytes` crate: a cheaply-cloneable,
//! immutable byte buffer.
//!
//! Only the surface the workspace uses is provided: construction
//! (`new`, `from`, `from_static`, `copy_from_slice`), `Deref`/`AsRef` to
//! `[u8]`, length/emptiness, equality/ordering/hashing, and cheap clones
//! (shared `Arc` storage).

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Default for Repr {
    fn default() -> Repr {
        Repr::Static(&[])
    }
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Bytes {
        Bytes(Repr::Static(&[]))
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes(Repr::Static(bytes))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    /// The buffer contents.
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Repr::Shared(Arc::from(v.into_boxed_slice())))
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes(Repr::Static(v))
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes(Repr::Static(v.as_bytes()))
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        let c = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(&a[..], b"abc");
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::copy_from_slice(&[1, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn ordering_matches_slices() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from_static(b"abd");
        assert!(a < b);
    }
}
