//! Offline vendored shim exposing the `parking_lot` lock API over
//! `std::sync` primitives.
//!
//! The workspace builds in environments with no crates.io access, so the
//! handful of external dependencies are vendored as minimal shims. This one
//! covers exactly the surface the workspace uses: `Mutex::lock`,
//! `RwLock::read`/`write`, with guards returned directly (no `Result`).
//! Poisoning is transparently ignored, matching `parking_lot` semantics:
//! a panic while holding a lock does not poison it for later holders.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Unlike `std`, recovers
    /// from poisoning instead of returning a `Result`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempt to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        let _r1 = l.read();
        let _r2 = l.read();
    }

    #[test]
    fn poison_is_ignored() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 0);
    }
}
