#![warn(missing_docs)]

//! A Spanner-like storage substrate, built from scratch.
//!
//! Firestore stores every document as one row of a fixed-schema `Entities`
//! table and every index entry as one row of an `IndexEntries` table inside a
//! Spanner *directory* (paper §IV-D1). This crate implements the Spanner
//! semantics that layout depends on:
//!
//! * **MVCC storage** ([`mvcc`]): every cell keeps a timestamped version
//!   chain; reads at a timestamp are lock-free and repeatable.
//! * **TrueTime commit timestamps** (via [`simkit::truetime`]): strictly
//!   increasing, externally consistent timestamps with commit wait.
//! * **Lock-based read-write transactions** ([`txn`]): exclusive and shared
//!   cell locks, buffered mutations, atomic multi-table commit. Conflicts
//!   fail fast and the caller retries — the paper's stated resolution for
//!   lock contention and deadlocks (§IV-D3).
//! * **Tablets with load-based splitting** ([`tablet`]): each table's key
//!   space is partitioned into tablets that split under write load; commits
//!   spanning multiple tablets pay two-phase-commit coordination, which the
//!   latency model surfaces (Fig 10's participant scaling).
//! * **Directories** ([`database`]): key-prefix placement units; each
//!   Firestore database maps to one directory inside a shared Spanner
//!   database — the foundation of Firestore's multi-tenancy.
//! * **Transactional messaging** ([`messaging`]): the queue Firestore's
//!   write triggers ride on (§IV-D2).
//!
//! What is *modeled* instead of executed: replica quorums. A commit here is
//! applied to one in-process store; the latency a Paxos quorum would add is
//! drawn from [`simkit::latency::LatencyModel`] by the serving layer.

pub mod cursor;
pub mod database;
pub mod error;
pub mod key;
pub mod lock;
pub mod messaging;
pub mod mvcc;
pub mod redo;
pub mod tablet;
pub mod txn;

pub use cursor::{RangeCursor, ScanBackend, SnapshotBackend};
pub use database::{CommitInfo, SpannerDatabase, SpannerOptions, TableName};
pub use error::{SpannerError, SpannerResult};
pub use key::{Key, KeyRange};
pub use redo::{RecoveryReport, RedoRecord};
pub use txn::{ReadWriteTransaction, TxnId};
