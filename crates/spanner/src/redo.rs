//! Redo-log records for crash–restart recovery.
//!
//! The paper grounds Firestore's durability in Spanner's replicated redo
//! logs (§IV-D1). We model them with one append-only log per participant
//! tablet plus a coordinator *outcomes* log, written through
//! [`simkit::SimDisk`] inside the commit path:
//!
//! 1. every participant tablet gets a [`RedoRecord::Prepared`] carrying that
//!    tablet's share of the transaction's mutations (the 2PC prepare);
//! 2. the coordinator log gets a [`RedoRecord::Outcome`] — the commit point:
//!    a transaction is durable iff its outcome record is durable;
//! 3. only then are the mutations applied to the volatile MVCC stores and
//!    the commit acknowledged.
//!
//! Recovery replays the logs: prepared mutations whose transaction has a
//! durable outcome are reapplied in commit-timestamp order; prepared-but-
//! undecided participants (no outcome record) are discarded — exactly the
//! coordinator-resolution rule of two-phase commit.

use crate::key::Key;
use bytes::Bytes;
use simkit::Timestamp;

/// The coordinator log holding [`RedoRecord::Outcome`] records.
pub const OUTCOMES_LOG: &str = "outcomes";

/// Name of the redo log of one participant tablet.
pub fn tablet_log(table_id: u32, tablet_idx: usize) -> String {
    format!("redo.t{table_id:04}.p{tablet_idx:04}")
}

/// Prefix matching every participant redo log (for replay enumeration).
pub const TABLET_LOG_PREFIX: &str = "redo.";

/// One durable redo record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RedoRecord {
    /// A participant tablet's share of a transaction's mutations, written
    /// before the commit decision (2PC prepare).
    Prepared {
        /// The preparing transaction.
        txn_id: u64,
        /// The assigned commit timestamp.
        commit_ts: Timestamp,
        /// Interned table id of every mutation in this record.
        table: u32,
        /// `(key, value)` pairs; `None` is a tombstone.
        mutations: Vec<(Key, Option<Bytes>)>,
    },
    /// The coordinator's commit decision — the durability point. Only
    /// committed outcomes are logged; an aborted transaction simply never
    /// gets one, so replay discards its prepares.
    Outcome {
        /// The committed transaction.
        txn_id: u64,
        /// Its commit timestamp.
        commit_ts: Timestamp,
    },
}

const TAG_PREPARED: u8 = 1;
const TAG_OUTCOME: u8 = 2;

impl RedoRecord {
    /// Serialize to the byte payload stored in one [`simkit::SimDisk`] frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            RedoRecord::Prepared {
                txn_id,
                commit_ts,
                table,
                mutations,
            } => {
                out.push(TAG_PREPARED);
                out.extend_from_slice(&txn_id.to_be_bytes());
                out.extend_from_slice(&commit_ts.as_nanos().to_be_bytes());
                out.extend_from_slice(&table.to_be_bytes());
                out.extend_from_slice(&(mutations.len() as u32).to_be_bytes());
                for (key, value) in mutations {
                    out.extend_from_slice(&(key.len() as u32).to_be_bytes());
                    out.extend_from_slice(key.as_slice());
                    match value {
                        None => out.push(0),
                        Some(v) => {
                            out.push(1);
                            out.extend_from_slice(&(v.len() as u32).to_be_bytes());
                            out.extend_from_slice(v);
                        }
                    }
                }
            }
            RedoRecord::Outcome { txn_id, commit_ts } => {
                out.push(TAG_OUTCOME);
                out.extend_from_slice(&txn_id.to_be_bytes());
                out.extend_from_slice(&commit_ts.as_nanos().to_be_bytes());
            }
        }
        out
    }

    /// Parse a record; `None` on any structural corruption (replay treats
    /// an unparseable record as the start of a torn tail and stops).
    pub fn decode(bytes: &[u8]) -> Option<RedoRecord> {
        let mut pos = 0usize;
        let tag = *bytes.first()?;
        pos += 1;
        let read_u64 = |bytes: &[u8], pos: &mut usize| -> Option<u64> {
            let raw = bytes.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(u64::from_be_bytes(raw.try_into().ok()?))
        };
        let read_u32 = |bytes: &[u8], pos: &mut usize| -> Option<u32> {
            let raw = bytes.get(*pos..*pos + 4)?;
            *pos += 4;
            Some(u32::from_be_bytes(raw.try_into().ok()?))
        };
        match tag {
            TAG_PREPARED => {
                let txn_id = read_u64(bytes, &mut pos)?;
                let commit_ts = Timestamp::from_nanos(read_u64(bytes, &mut pos)?);
                let table = read_u32(bytes, &mut pos)?;
                let n = read_u32(bytes, &mut pos)? as usize;
                let mut mutations = Vec::with_capacity(n);
                for _ in 0..n {
                    let key_len = read_u32(bytes, &mut pos)? as usize;
                    let key = Key::from_bytes(bytes.get(pos..pos + key_len)?.to_vec());
                    pos += key_len;
                    let flag = *bytes.get(pos)?;
                    pos += 1;
                    let value = match flag {
                        0 => None,
                        1 => {
                            let len = read_u32(bytes, &mut pos)? as usize;
                            let v = Bytes::copy_from_slice(bytes.get(pos..pos + len)?);
                            pos += len;
                            Some(v)
                        }
                        _ => return None,
                    };
                    mutations.push((key, value));
                }
                (pos == bytes.len()).then_some(RedoRecord::Prepared {
                    txn_id,
                    commit_ts,
                    table,
                    mutations,
                })
            }
            TAG_OUTCOME => {
                let txn_id = read_u64(bytes, &mut pos)?;
                let commit_ts = Timestamp::from_nanos(read_u64(bytes, &mut pos)?);
                (pos == bytes.len()).then_some(RedoRecord::Outcome { txn_id, commit_ts })
            }
            _ => None,
        }
    }
}

/// What [`crate::SpannerDatabase::recover`] did, for assertions and the
/// recovery-time benchmark.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed transactions whose mutations were replayed.
    pub replayed_txns: usize,
    /// Mutations reapplied to the MVCC stores.
    pub replayed_mutations: usize,
    /// Prepared records discarded because no durable outcome existed
    /// (prepared-but-undecided participants resolved to abort).
    pub discarded_prepares: usize,
    /// Torn log tails detected and truncated during replay.
    pub torn_tails: usize,
    /// Participant logs scanned.
    pub logs_scanned: usize,
    /// Orphan locks discarded when volatile state was dropped.
    pub orphan_locks_discarded: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_round_trips() {
        let rec = RedoRecord::Prepared {
            txn_id: 42,
            commit_ts: Timestamp::from_millis(7),
            table: 3,
            mutations: vec![
                (Key::from("a"), Some(Bytes::from_static(b"v1"))),
                (Key::from("b"), None),
                (Key::from(""), Some(Bytes::new())),
            ],
        };
        assert_eq!(RedoRecord::decode(&rec.encode()), Some(rec));
    }

    #[test]
    fn outcome_round_trips() {
        let rec = RedoRecord::Outcome {
            txn_id: u64::MAX,
            commit_ts: Timestamp::MAX,
        };
        assert_eq!(RedoRecord::decode(&rec.encode()), Some(rec));
    }

    #[test]
    fn truncated_record_rejected() {
        let rec = RedoRecord::Prepared {
            txn_id: 1,
            commit_ts: Timestamp::from_millis(1),
            table: 0,
            mutations: vec![(Key::from("k"), Some(Bytes::from_static(b"v")))],
        };
        let bytes = rec.encode();
        for cut in 1..bytes.len() {
            assert_eq!(RedoRecord::decode(&bytes[..cut]), None, "cut at {cut}");
        }
        assert_eq!(RedoRecord::decode(&[]), None);
        assert_eq!(RedoRecord::decode(&[9, 9, 9]), None);
    }

    #[test]
    fn log_names_are_stable_and_prefixed() {
        assert_eq!(tablet_log(1, 2), "redo.t0001.p0002");
        assert!(tablet_log(0, 0).starts_with(TABLET_LOG_PREFIX));
    }
}
