//! Row keys and key ranges.
//!
//! Spanner rows are ordered by key, and both Firestore tables exploit that
//! order: `Entities` keys are encoded document names (so a collection is a
//! contiguous range) and `IndexEntries` keys are `(index-id, values, name)`
//! tuples (so an index scan is a contiguous range). Keys are plain byte
//! strings; all structure lives in the encoding layer above.

use bytes::Bytes;
use std::fmt;

/// An ordered byte-string row key.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key(pub Bytes);

impl Key {
    /// The empty key — the smallest possible key.
    pub const fn empty() -> Key {
        Key(Bytes::new())
    }

    /// Construct from anything byte-like.
    pub fn from_bytes(b: impl Into<Bytes>) -> Key {
        Key(b.into())
    }

    /// The raw bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Byte length.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the empty key.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether `prefix` is a byte prefix of this key.
    pub fn has_prefix(&self, prefix: &[u8]) -> bool {
        self.0.starts_with(prefix)
    }

    /// The immediate successor key (`key ++ 0x00`): the smallest key
    /// strictly greater than `self`. Useful for turning inclusive bounds
    /// into half-open ranges.
    pub fn successor(&self) -> Key {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(0);
        Key(Bytes::from(v))
    }

    /// The smallest key that is *not* prefixed by `self`: increments the
    /// last non-0xFF byte. Returns `None` when every byte is 0xFF (the
    /// prefix range extends to the end of the key space).
    pub fn prefix_end(&self) -> Option<Key> {
        let mut v = self.0.to_vec();
        while let Some(&last) = v.last() {
            if last == 0xFF {
                v.pop();
            } else {
                *v.last_mut().unwrap() += 1;
                return Some(Key(Bytes::from(v)));
            }
        }
        None
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key(")?;
        for &b in self.0.iter().take(48) {
            if (0x20..0x7f).contains(&b) && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.0.len() > 48 {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

impl From<&[u8]> for Key {
    fn from(b: &[u8]) -> Key {
        Key(Bytes::copy_from_slice(b))
    }
}

impl From<Vec<u8>> for Key {
    fn from(b: Vec<u8>) -> Key {
        Key(Bytes::from(b))
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Key {
        Key(Bytes::copy_from_slice(s.as_bytes()))
    }
}

/// A half-open key range `[start, end)`. An unbounded end is represented by
/// `end = None`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct KeyRange {
    /// Inclusive start.
    pub start: Key,
    /// Exclusive end; `None` means "to the end of the key space".
    pub end: Option<Key>,
}

impl KeyRange {
    /// The range covering every key.
    pub fn all() -> KeyRange {
        KeyRange {
            start: Key::empty(),
            end: None,
        }
    }

    /// `[start, end)`.
    pub fn new(start: Key, end: Option<Key>) -> KeyRange {
        KeyRange { start, end }
    }

    /// All keys with the given byte prefix.
    pub fn prefix(prefix: &Key) -> KeyRange {
        KeyRange {
            start: prefix.clone(),
            end: prefix.prefix_end(),
        }
    }

    /// Whether the range contains `key`.
    pub fn contains(&self, key: &Key) -> bool {
        if key < &self.start {
            return false;
        }
        match &self.end {
            Some(end) => key < end,
            None => true,
        }
    }

    /// Whether two ranges share at least one key.
    pub fn intersects(&self, other: &KeyRange) -> bool {
        let self_before_other = match &self.end {
            Some(end) => end <= &other.start,
            None => false,
        };
        let other_before_self = match &other.end {
            Some(end) => end <= &self.start,
            None => false,
        };
        !(self_before_other || other_before_self)
    }

    /// Whether the range is empty (`end <= start`).
    pub fn is_empty(&self) -> bool {
        match &self.end {
            Some(end) => end <= &self.start,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successor_is_next_key() {
        let k = Key::from("abc");
        let s = k.successor();
        assert!(s > k);
        assert!(s.as_slice() == b"abc\x00");
        // No key fits strictly between k and its successor.
        assert!(Key::from("abc") < s);
    }

    #[test]
    fn prefix_end_bounds_the_prefix() {
        let p = Key::from("ab");
        let end = p.prefix_end().unwrap();
        assert_eq!(end.as_slice(), b"ac");
        assert!(Key::from_bytes(vec![b'a', b'b', 0xFF, 0xFF]) < end);
        assert!(Key::from("ac") >= end);
        // All-0xFF prefix has no end.
        assert!(Key::from_bytes(vec![0xFF, 0xFF]).prefix_end().is_none());
    }

    #[test]
    fn prefix_end_carries_over_ff() {
        let p = Key::from_bytes(vec![b'a', 0xFF]);
        assert_eq!(p.prefix_end().unwrap().as_slice(), b"b");
    }

    #[test]
    fn range_contains() {
        let r = KeyRange::new(Key::from("b"), Some(Key::from("d")));
        assert!(!r.contains(&Key::from("a")));
        assert!(r.contains(&Key::from("b")));
        assert!(r.contains(&Key::from("c")));
        assert!(!r.contains(&Key::from("d")));
        let unbounded = KeyRange::new(Key::from("b"), None);
        assert!(unbounded.contains(&Key::from("zzzz")));
    }

    #[test]
    fn prefix_range_contains_only_prefixed() {
        let r = KeyRange::prefix(&Key::from("coll/"));
        assert!(r.contains(&Key::from("coll/doc1")));
        assert!(!r.contains(&Key::from("colk/doc")));
        assert!(!r.contains(&Key::from("colm")));
    }

    #[test]
    fn intersects() {
        let ab = KeyRange::new(Key::from("a"), Some(Key::from("b")));
        let bc = KeyRange::new(Key::from("b"), Some(Key::from("c")));
        let ac = KeyRange::new(Key::from("a"), Some(Key::from("c")));
        assert!(
            !ab.intersects(&bc),
            "half-open ranges touching at b do not overlap"
        );
        assert!(ab.intersects(&ac));
        assert!(bc.intersects(&ac));
        assert!(KeyRange::all().intersects(&ab));
    }

    #[test]
    fn empty_range() {
        assert!(KeyRange::new(Key::from("b"), Some(Key::from("a"))).is_empty());
        assert!(KeyRange::new(Key::from("b"), Some(Key::from("b"))).is_empty());
        assert!(!KeyRange::all().is_empty());
    }

    #[test]
    fn debug_renders_printable_and_hex() {
        let k = Key::from_bytes(vec![b'a', 0x00, b'z']);
        assert_eq!(format!("{k:?}"), "Key(a\\x00z)");
    }
}
