//! Read-write transactions.
//!
//! A transaction acquires cell locks as it reads, buffers its mutations, and
//! applies them atomically at a TrueTime commit timestamp (with exclusive
//! locks taken on written cells during commit, mirroring paper §IV-D2 step 6:
//! "Spanner acquires additional exclusive locks on the specific IndexEntries
//! rows"). Dropping an uncommitted transaction releases its locks.

use crate::key::{Key, KeyRange};
use bytes::Bytes;
use std::fmt;

/// A transaction identifier, unique within one [`crate::SpannerDatabase`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// A buffered write: insert/update (`Some`) or delete (`None`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mutation {
    /// Interned table id.
    pub table: u32,
    /// Row key.
    pub key: Key,
    /// New value, or `None` for a delete.
    pub value: Option<Bytes>,
}

/// State of a read-write transaction. Created by
/// [`crate::SpannerDatabase::begin`]; all operations go through the database
/// handle, which owns locks and storage.
pub struct ReadWriteTransaction {
    pub(crate) id: TxnId,
    pub(crate) mutations: Vec<Mutation>,
    pub(crate) closed: bool,
    /// Keys read under shared lock, for accounting.
    pub(crate) read_keys: Vec<(u32, Key)>,
    /// Key ranges scanned under this transaction (used for conflict-surface
    /// accounting and tests).
    pub(crate) scanned_ranges: Vec<(u32, KeyRange)>,
    /// `(table, key, value-hash)` observations made under shared lock, kept
    /// only while a history recorder is attached (consistency oracle).
    pub(crate) observed_reads: Vec<(u32, Key, Option<u64>)>,
}

impl Default for ReadWriteTransaction {
    /// A closed placeholder transaction; used by callers that need to move
    /// a transaction out of a `&mut` slot (e.g. to hand it to `commit`).
    fn default() -> Self {
        let mut t = ReadWriteTransaction::new(TxnId(0));
        t.closed = true;
        t
    }
}

impl ReadWriteTransaction {
    pub(crate) fn new(id: TxnId) -> Self {
        ReadWriteTransaction {
            id,
            mutations: Vec::new(),
            closed: false,
            read_keys: Vec::new(),
            scanned_ranges: Vec::new(),
            observed_reads: Vec::new(),
        }
    }

    /// This transaction's id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Buffered mutations, in buffer order (later writes to the same key
    /// supersede earlier ones at apply time).
    pub fn mutations(&self) -> &[Mutation] {
        &self.mutations
    }

    /// Total payload bytes across buffered mutations (keys + values).
    pub fn payload_bytes(&self) -> usize {
        self.mutations
            .iter()
            .map(|m| m.key.len() + m.value.as_ref().map_or(0, |v| v.len()))
            .sum()
    }

    /// Look up the buffered value for `(table, key)`, if this transaction
    /// wrote it (read-your-writes).
    pub(crate) fn buffered(&self, table: u32, key: &Key) -> Option<Option<Bytes>> {
        self.mutations
            .iter()
            .rev()
            .find(|m| m.table == table && &m.key == key)
            .map(|m| m.value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_counts_keys_and_values() {
        let mut t = ReadWriteTransaction::new(TxnId(1));
        t.mutations.push(Mutation {
            table: 0,
            key: Key::from("ab"),
            value: Some(Bytes::from_static(b"xyz")),
        });
        t.mutations.push(Mutation {
            table: 0,
            key: Key::from("c"),
            value: None,
        });
        assert_eq!(t.payload_bytes(), 2 + 3 + 1);
    }

    #[test]
    fn buffered_returns_last_write_wins() {
        let mut t = ReadWriteTransaction::new(TxnId(1));
        let k = Key::from("k");
        t.mutations.push(Mutation {
            table: 0,
            key: k.clone(),
            value: Some(Bytes::from_static(b"v1")),
        });
        t.mutations.push(Mutation {
            table: 0,
            key: k.clone(),
            value: None,
        });
        assert_eq!(t.buffered(0, &k), Some(None));
        assert_eq!(t.buffered(1, &k), None);
        assert_eq!(t.buffered(0, &Key::from("other")), None);
    }
}
