//! Cell-granular lock manager.
//!
//! Spanner read-write transactions are lock-based (paper §IV-D1: "Firestore's
//! transactions map directly to Spanner transactions, which are lock-based
//! and use two-phase-commits across tablets"). We implement shared (read) and
//! exclusive (write) locks at `(table, key)` granularity — row-granular, like
//! the paper notes Spanner provides ("Spanner provides row-granular atomicity
//! guarantees").
//!
//! Conflicts do not block: the requester gets [`SpannerError::LockConflict`]
//! and retries the whole transaction, which is how the paper says lock
//! contention and deadlocks are resolved (§IV-D3: "resolved by failing and
//! retrying such transactions"). No wait graph means no deadlock detector.

use crate::error::{SpannerError, SpannerResult};
use crate::key::Key;
use crate::txn::TxnId;
use parking_lot::Mutex;
use simkit::fault::{FaultInjector, FaultKind};
use std::collections::HashMap;
use std::sync::Arc;

/// Lock mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// Shared: many readers.
    Shared,
    /// Exclusive: single writer.
    Exclusive,
}

#[derive(Debug)]
struct LockState {
    mode: LockMode,
    holders: Vec<TxnId>,
}

/// A lock identity: table + row key.
pub type LockName = (u32, Key);

/// The lock table. One per Spanner database.
#[derive(Debug, Default)]
pub struct LockManager {
    locks: Mutex<HashMap<LockName, LockState>>,
    injector: Mutex<Option<Arc<FaultInjector>>>,
}

impl LockManager {
    /// Create an empty lock manager.
    pub fn new() -> Self {
        LockManager::default()
    }

    /// Install a fault injector; [`FaultKind::LockTimeout`] faults then make
    /// `acquire` fail with [`SpannerError::LockTimeout`].
    pub fn set_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.injector.lock() = injector;
    }

    /// Try to acquire a lock for `txn`. Shared locks are compatible with
    /// other shared locks; a transaction already holding a shared lock can
    /// upgrade to exclusive if it is the only holder. Re-acquisition is
    /// idempotent.
    pub fn acquire(&self, txn: TxnId, table: u32, key: &Key, mode: LockMode) -> SpannerResult<()> {
        if let Some(inj) = self.injector.lock().as_ref() {
            if inj.should_inject(FaultKind::LockTimeout, "lock-acquire") {
                return Err(SpannerError::LockTimeout);
            }
        }
        let mut locks = self.locks.lock();
        let name = (table, key.clone());
        match locks.get_mut(&name) {
            None => {
                locks.insert(
                    name,
                    LockState {
                        mode,
                        holders: vec![txn],
                    },
                );
                Ok(())
            }
            Some(state) => {
                let already_holds = state.holders.contains(&txn);
                match (state.mode, mode) {
                    (LockMode::Shared, LockMode::Shared) => {
                        if !already_holds {
                            state.holders.push(txn);
                        }
                        Ok(())
                    }
                    (LockMode::Shared, LockMode::Exclusive) => {
                        if already_holds && state.holders.len() == 1 {
                            state.mode = LockMode::Exclusive; // upgrade
                            Ok(())
                        } else if already_holds {
                            // Another reader blocks our upgrade. A holder
                            // list that contains only us despite len > 1 is
                            // a corrupted entry: surface it as a typed
                            // internal error rather than panicking.
                            let Some(holder) =
                                state.holders.iter().find(|&&h| h != txn).copied()
                            else {
                                return Err(SpannerError::Internal(format!(
                                    "lock table corrupted: shared holder list for \
                                     {name:?} duplicates {txn:?}"
                                )));
                            };
                            Err(SpannerError::LockConflict {
                                requester: txn,
                                holder,
                                key: key.clone(),
                            })
                        } else {
                            Err(SpannerError::LockConflict {
                                requester: txn,
                                holder: state.holders[0],
                                key: key.clone(),
                            })
                        }
                    }
                    (LockMode::Exclusive, _) => {
                        if already_holds {
                            Ok(())
                        } else {
                            Err(SpannerError::LockConflict {
                                requester: txn,
                                holder: state.holders[0],
                                key: key.clone(),
                            })
                        }
                    }
                }
            }
        }
    }

    /// Release every lock held by `txn`.
    pub fn release_all(&self, txn: TxnId) {
        let mut locks = self.locks.lock();
        locks.retain(|_, state| {
            state.holders.retain(|&h| h != txn);
            !state.holders.is_empty()
        });
    }

    /// Number of currently locked cells (for tests and metrics).
    pub fn locked_cells(&self) -> usize {
        self.locks.lock().len()
    }

    /// Drop every lock (a process crash loses the volatile lock table).
    /// Returns how many cells were locked — the orphan locks discarded.
    pub fn clear(&self) -> usize {
        let mut locks = self.locks.lock();
        let n = locks.len();
        locks.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: u32 = 0;

    #[test]
    fn exclusive_excludes_everyone() {
        let lm = LockManager::new();
        let k = Key::from("k");
        lm.acquire(TxnId(1), T, &k, LockMode::Exclusive).unwrap();
        assert!(lm.acquire(TxnId(2), T, &k, LockMode::Exclusive).is_err());
        assert!(lm.acquire(TxnId(2), T, &k, LockMode::Shared).is_err());
        // Re-acquisition by the holder is fine.
        lm.acquire(TxnId(1), T, &k, LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(1), T, &k, LockMode::Shared).unwrap();
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        let k = Key::from("k");
        lm.acquire(TxnId(1), T, &k, LockMode::Shared).unwrap();
        lm.acquire(TxnId(2), T, &k, LockMode::Shared).unwrap();
        // But a writer is blocked.
        let err = lm
            .acquire(TxnId(3), T, &k, LockMode::Exclusive)
            .unwrap_err();
        assert!(matches!(err, SpannerError::LockConflict { .. }));
    }

    #[test]
    fn upgrade_allowed_only_for_sole_reader() {
        let lm = LockManager::new();
        let k = Key::from("k");
        lm.acquire(TxnId(1), T, &k, LockMode::Shared).unwrap();
        lm.acquire(TxnId(1), T, &k, LockMode::Exclusive).unwrap(); // sole holder upgrades
        lm.release_all(TxnId(1));

        lm.acquire(TxnId(1), T, &k, LockMode::Shared).unwrap();
        lm.acquire(TxnId(2), T, &k, LockMode::Shared).unwrap();
        assert!(lm.acquire(TxnId(1), T, &k, LockMode::Exclusive).is_err());
    }

    #[test]
    fn release_unblocks() {
        let lm = LockManager::new();
        let k = Key::from("k");
        lm.acquire(TxnId(1), T, &k, LockMode::Exclusive).unwrap();
        lm.release_all(TxnId(1));
        lm.acquire(TxnId(2), T, &k, LockMode::Exclusive).unwrap();
        assert_eq!(lm.locked_cells(), 1);
    }

    #[test]
    fn different_keys_and_tables_do_not_conflict() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), 0, &Key::from("k"), LockMode::Exclusive)
            .unwrap();
        lm.acquire(TxnId(2), 0, &Key::from("other"), LockMode::Exclusive)
            .unwrap();
        lm.acquire(TxnId(3), 1, &Key::from("k"), LockMode::Exclusive)
            .unwrap();
    }

    #[test]
    fn shared_release_keeps_other_holders() {
        let lm = LockManager::new();
        let k = Key::from("k");
        lm.acquire(TxnId(1), T, &k, LockMode::Shared).unwrap();
        lm.acquire(TxnId(2), T, &k, LockMode::Shared).unwrap();
        lm.release_all(TxnId(1));
        // Txn 2 still holds it; a writer is still blocked.
        assert!(lm.acquire(TxnId(3), T, &k, LockMode::Exclusive).is_err());
        lm.release_all(TxnId(2));
        lm.acquire(TxnId(3), T, &k, LockMode::Exclusive).unwrap();
    }
}
