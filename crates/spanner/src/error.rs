//! Error types for the Spanner substrate.

use crate::key::Key;
use crate::txn::TxnId;
use std::fmt;

/// Result alias for substrate operations.
pub type SpannerResult<T> = Result<T, SpannerError>;

/// Errors surfaced by the storage substrate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpannerError {
    /// A lock could not be acquired because another transaction holds a
    /// conflicting lock. The caller is expected to abort and retry — the
    /// paper's stated strategy for contention and deadlocks (§IV-D3).
    LockConflict {
        /// Transaction that failed to acquire the lock.
        requester: TxnId,
        /// Transaction currently holding a conflicting lock.
        holder: TxnId,
        /// Key being locked.
        key: Key,
    },
    /// The transaction was already aborted or committed.
    TxnClosed(TxnId),
    /// No commit timestamp exists within the `[min, max]` window the caller
    /// allowed (paper §IV-D2's "not being able to respect the maximum
    /// timestamp" failure).
    CommitWindowExpired,
    /// The commit outcome is unknown (simulated timeout injected by tests or
    /// by the failure-injection hooks).
    UnknownOutcome,
    /// The named table does not exist.
    NoSuchTable(String),
    /// A read was attempted at a timestamp that has been garbage collected.
    SnapshotTooOld,
    /// A tablet or service dependency is transiently unavailable (injected
    /// by the chaos layer); the operation should be retried with backoff.
    Unavailable(&'static str),
    /// A lock acquisition timed out instead of resolving promptly (injected
    /// by the chaos layer). Retryable like any lock conflict.
    LockTimeout,
    /// An internal invariant was violated (e.g. a stale table id or a
    /// corrupted lock-table entry). Surfaced as a typed error so an injected
    /// fault degrades the one request instead of wedging the whole simulated
    /// process with a panic. Not retryable.
    Internal(String),
}

impl fmt::Display for SpannerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpannerError::LockConflict {
                requester,
                holder,
                key,
            } => {
                write!(
                    f,
                    "lock conflict: txn {requester:?} blocked by {holder:?} on {key:?}"
                )
            }
            SpannerError::TxnClosed(id) => write!(f, "transaction {id:?} is closed"),
            SpannerError::CommitWindowExpired => {
                write!(f, "no commit timestamp available within the allowed window")
            }
            SpannerError::UnknownOutcome => write!(f, "commit outcome unknown"),
            SpannerError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            SpannerError::SnapshotTooOld => write!(f, "snapshot timestamp is too old"),
            SpannerError::Unavailable(site) => write!(f, "transiently unavailable: {site}"),
            SpannerError::LockTimeout => write!(f, "lock acquisition timed out"),
            SpannerError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for SpannerError {}

impl SpannerError {
    /// Whether the error is transient and the operation should be retried
    /// with backoff (the Server SDK behaviour described in §III-D).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SpannerError::LockConflict { .. }
                | SpannerError::CommitWindowExpired
                | SpannerError::UnknownOutcome
                | SpannerError::Unavailable(_)
                | SpannerError::LockTimeout
        )
    }

    /// Alias for [`SpannerError::is_retryable`] matching the taxonomy used
    /// across the workspace's error types.
    pub fn is_retriable(&self) -> bool {
        self.is_retryable()
    }

    /// Whether the error reflects a transient condition rather than a
    /// permanent one. Currently identical to retriability.
    pub fn is_transient(&self) -> bool {
        self.is_retryable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_classification() {
        let conflict = SpannerError::LockConflict {
            requester: TxnId(1),
            holder: TxnId(2),
            key: Key::from("k"),
        };
        assert!(conflict.is_retryable());
        assert!(SpannerError::CommitWindowExpired.is_retryable());
        assert!(SpannerError::UnknownOutcome.is_retryable());
        assert!(SpannerError::Unavailable("tablet").is_retryable());
        assert!(SpannerError::LockTimeout.is_retryable());
        assert!(!SpannerError::NoSuchTable("t".into()).is_retryable());
        assert!(!SpannerError::TxnClosed(TxnId(3)).is_retryable());
        assert!(!SpannerError::SnapshotTooOld.is_retryable());
        assert!(!SpannerError::Internal("bad table id".into()).is_retryable());
        // Aliases agree.
        assert!(SpannerError::LockTimeout.is_retriable());
        assert!(SpannerError::Unavailable("x").is_transient());
    }

    #[test]
    fn display_is_informative() {
        let e = SpannerError::NoSuchTable("Entities".into());
        assert!(e.to_string().contains("Entities"));
    }
}
