//! Multi-version concurrency control storage.
//!
//! Every cell keeps a chain of `(commit_timestamp, value-or-tombstone)`
//! versions. Reads at a timestamp return the newest version at or below that
//! timestamp and never block writers — this is what lets Firestore run
//! strongly consistent queries without read locks (paper §IV-D1: "the
//! serializability guarantee on timestamps allows Firestore to perform
//! lock-free consistent (timestamp-based) reads across a database without
//! blocking writes").

use crate::key::{Key, KeyRange};
use bytes::Bytes;
use simkit::Timestamp;
use std::collections::BTreeMap;
use std::ops::Bound;

/// One committed version of a cell: a value, or a tombstone for a delete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Version {
    /// Commit timestamp of the writing transaction.
    pub ts: Timestamp,
    /// `None` is a tombstone.
    pub value: Option<Bytes>,
}

/// The version chain of one cell, newest last.
#[derive(Clone, Debug, Default)]
pub struct VersionChain {
    versions: Vec<Version>,
}

impl VersionChain {
    /// Append a committed version. Timestamps must arrive in increasing
    /// order (guaranteed by the commit protocol's global timestamp order).
    pub fn push(&mut self, ts: Timestamp, value: Option<Bytes>) {
        debug_assert!(
            self.versions.last().is_none_or(|v| v.ts < ts),
            "versions must be appended in timestamp order"
        );
        self.versions.push(Version { ts, value });
    }

    /// The newest version at or below `ts`.
    pub fn read_at(&self, ts: Timestamp) -> Option<&Version> {
        // Version chains are short (GC keeps them trimmed); scan from the
        // newest end.
        self.versions.iter().rev().find(|v| v.ts <= ts)
    }

    /// The newest version regardless of timestamp.
    pub fn latest(&self) -> Option<&Version> {
        self.versions.last()
    }

    /// Drop versions strictly older than the newest one at or below
    /// `before`; the newest such version must be retained so reads at
    /// `before` still succeed.
    pub fn gc(&mut self, before: Timestamp) {
        if self.versions.len() <= 1 {
            return;
        }
        // Index of the newest version with ts <= before.
        let keep_from = match self.versions.iter().rposition(|v| v.ts <= before) {
            Some(i) => i,
            None => return,
        };
        self.versions.drain(..keep_from);
    }

    /// Number of stored versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the chain has no versions.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Whether the chain is entirely tombstoned at its head and can be
    /// removed once GC has trimmed it to just that tombstone.
    pub fn is_dead(&self) -> bool {
        self.versions.len() == 1 && self.versions[0].value.is_none()
    }
}

/// An MVCC key-value store: the physical storage of one table.
#[derive(Debug, Default)]
pub struct MvccStore {
    cells: BTreeMap<Key, VersionChain>,
    /// Everything below this timestamp may have been garbage collected.
    gc_horizon: Timestamp,
}

impl MvccStore {
    /// Create an empty store.
    pub fn new() -> Self {
        MvccStore::default()
    }

    /// Apply a committed write.
    pub fn apply(&mut self, key: Key, ts: Timestamp, value: Option<Bytes>) {
        self.cells.entry(key).or_default().push(ts, value);
    }

    /// Read the value of `key` at `ts`. Tombstones and absent keys both
    /// return `Ok(None)`; reading below the GC horizon is an error.
    pub fn read_at(&self, key: &Key, ts: Timestamp) -> Result<Option<Bytes>, SnapshotTooOld> {
        if ts < self.gc_horizon {
            return Err(SnapshotTooOld);
        }
        Ok(self
            .cells
            .get(key)
            .and_then(|chain| chain.read_at(ts))
            .and_then(|v| v.value.clone()))
    }

    /// Read the latest committed value of `key`.
    pub fn read_latest(&self, key: &Key) -> Option<Bytes> {
        self.cells
            .get(key)
            .and_then(|c| c.latest())
            .and_then(|v| v.value.clone())
    }

    /// Read the latest committed value together with its commit timestamp.
    pub fn read_latest_versioned(&self, key: &Key) -> Option<(Bytes, Timestamp)> {
        self.cells
            .get(key)
            .and_then(|c| c.latest())
            .and_then(|v| v.value.clone().map(|b| (b, v.ts)))
    }

    /// Read the value of `key` at `ts` together with the commit timestamp of
    /// the version read.
    pub fn read_at_versioned(
        &self,
        key: &Key,
        ts: Timestamp,
    ) -> Result<Option<(Bytes, Timestamp)>, SnapshotTooOld> {
        if ts < self.gc_horizon {
            return Err(SnapshotTooOld);
        }
        Ok(self
            .cells
            .get(key)
            .and_then(|chain| chain.read_at(ts))
            .and_then(|v| v.value.clone().map(|b| (b, v.ts))))
    }

    /// The commit timestamp of the newest version of `key`, if any version
    /// (including tombstones) exists.
    pub fn latest_version_ts(&self, key: &Key) -> Option<Timestamp> {
        self.cells.get(key).and_then(|c| c.latest()).map(|v| v.ts)
    }

    /// Scan live `(key, value)` pairs in `range` as of `ts`, in key order,
    /// up to `limit` results.
    pub fn scan_at(
        &self,
        range: &KeyRange,
        ts: Timestamp,
        limit: usize,
    ) -> Result<Vec<(Key, Bytes)>, SnapshotTooOld> {
        if ts < self.gc_horizon {
            return Err(SnapshotTooOld);
        }
        if range.is_empty() {
            return Ok(Vec::new());
        }
        let lower = Bound::Included(range.start.clone());
        let upper = match &range.end {
            Some(end) => Bound::Excluded(end.clone()),
            None => Bound::Unbounded,
        };
        let mut out = Vec::new();
        for (k, chain) in self.cells.range((lower, upper)) {
            if out.len() >= limit {
                break;
            }
            if let Some(v) = chain.read_at(ts) {
                if let Some(bytes) = &v.value {
                    out.push((k.clone(), bytes.clone()));
                }
            }
        }
        Ok(out)
    }

    /// Scan live `(key, value)` pairs in `range` as of `ts`, in *reverse*
    /// key order, up to `limit` results. Serves descending index scans.
    pub fn scan_rev_at(
        &self,
        range: &KeyRange,
        ts: Timestamp,
        limit: usize,
    ) -> Result<Vec<(Key, Bytes)>, SnapshotTooOld> {
        if ts < self.gc_horizon {
            return Err(SnapshotTooOld);
        }
        if range.is_empty() {
            return Ok(Vec::new());
        }
        let lower = Bound::Included(range.start.clone());
        let upper = match &range.end {
            Some(end) => Bound::Excluded(end.clone()),
            None => Bound::Unbounded,
        };
        let mut out = Vec::new();
        for (k, chain) in self.cells.range((lower, upper)).rev() {
            if out.len() >= limit {
                break;
            }
            if let Some(v) = chain.read_at(ts) {
                if let Some(bytes) = &v.value {
                    out.push((k.clone(), bytes.clone()));
                }
            }
        }
        Ok(out)
    }

    /// Scan live `(key, value, version timestamp)` triples in `range` as of
    /// `ts`, in key order (or reverse), up to `limit` results. The version
    /// timestamp is the commit time of the version read — callers derive
    /// document `update_time` from it.
    pub fn scan_at_versioned(
        &self,
        range: &KeyRange,
        ts: Timestamp,
        limit: usize,
        reverse: bool,
    ) -> Result<Vec<(Key, Bytes, Timestamp)>, SnapshotTooOld> {
        if ts < self.gc_horizon {
            return Err(SnapshotTooOld);
        }
        if range.is_empty() {
            return Ok(Vec::new());
        }
        let lower = Bound::Included(range.start.clone());
        let upper = match &range.end {
            Some(end) => Bound::Excluded(end.clone()),
            None => Bound::Unbounded,
        };
        let mut out = Vec::new();
        let iter = self.cells.range((lower, upper));
        let mut push = |k: &Key, chain: &VersionChain| {
            if out.len() >= limit {
                return false;
            }
            if let Some(v) = chain.read_at(ts) {
                if let Some(bytes) = &v.value {
                    out.push((k.clone(), bytes.clone(), v.ts));
                }
            }
            true
        };
        if reverse {
            for (k, chain) in iter.rev() {
                if !push(k, chain) {
                    break;
                }
            }
        } else {
            for (k, chain) in iter {
                if !push(k, chain) {
                    break;
                }
            }
        }
        Ok(out)
    }

    /// Count live keys in `range` at `ts` (no limit).
    pub fn count_at(&self, range: &KeyRange, ts: Timestamp) -> Result<usize, SnapshotTooOld> {
        self.scan_at(range, ts, usize::MAX).map(|v| v.len())
    }

    /// Garbage-collect versions older than `before`, retaining the newest
    /// version at or below it, and dropping fully dead cells.
    pub fn gc(&mut self, before: Timestamp) {
        self.gc_horizon = self.gc_horizon.max(before);
        self.cells.retain(|_, chain| {
            chain.gc(before);
            !chain.is_dead()
        });
    }

    /// Total number of live keys (latest version is not a tombstone).
    pub fn live_keys(&self) -> usize {
        self.cells
            .values()
            .filter(|c| c.latest().is_some_and(|v| v.value.is_some()))
            .count()
    }

    /// Approximate live byte size (keys + latest values).
    pub fn live_bytes(&self) -> usize {
        self.cells
            .iter()
            .filter_map(|(k, c)| {
                c.latest()
                    .and_then(|v| v.value.as_ref())
                    .map(|val| k.len() + val.len())
            })
            .sum()
    }

    /// The median live key of `range`, used by load-based tablet splitting.
    pub fn median_key_in(&self, range: &KeyRange) -> Option<Key> {
        if range.is_empty() {
            return None;
        }
        let lower = Bound::Included(range.start.clone());
        let upper = match &range.end {
            Some(end) => Bound::Excluded(end.clone()),
            None => Bound::Unbounded,
        };
        let keys: Vec<&Key> = self.cells.range((lower, upper)).map(|(k, _)| k).collect();
        if keys.len() < 2 {
            return None;
        }
        Some(keys[keys.len() / 2].clone())
    }
}

/// Error: the requested snapshot predates the GC horizon.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotTooOld;

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn read_at_sees_version_at_or_below() {
        let mut s = MvccStore::new();
        s.apply(Key::from("k"), ts(10), Some(b("v1")));
        s.apply(Key::from("k"), ts(20), Some(b("v2")));
        assert_eq!(s.read_at(&Key::from("k"), ts(5)).unwrap(), None);
        assert_eq!(s.read_at(&Key::from("k"), ts(10)).unwrap(), Some(b("v1")));
        assert_eq!(s.read_at(&Key::from("k"), ts(15)).unwrap(), Some(b("v1")));
        assert_eq!(s.read_at(&Key::from("k"), ts(20)).unwrap(), Some(b("v2")));
        assert_eq!(s.read_at(&Key::from("k"), ts(99)).unwrap(), Some(b("v2")));
    }

    #[test]
    fn tombstones_hide_values() {
        let mut s = MvccStore::new();
        s.apply(Key::from("k"), ts(10), Some(b("v1")));
        s.apply(Key::from("k"), ts(20), None);
        assert_eq!(s.read_at(&Key::from("k"), ts(15)).unwrap(), Some(b("v1")));
        assert_eq!(s.read_at(&Key::from("k"), ts(25)).unwrap(), None);
        assert_eq!(s.read_latest(&Key::from("k")), None);
        assert_eq!(s.latest_version_ts(&Key::from("k")), Some(ts(20)));
    }

    #[test]
    fn snapshot_reads_are_repeatable_across_new_writes() {
        let mut s = MvccStore::new();
        s.apply(Key::from("k"), ts(10), Some(b("old")));
        let snapshot = ts(15);
        let before = s.read_at(&Key::from("k"), snapshot).unwrap();
        s.apply(Key::from("k"), ts(20), Some(b("new")));
        let after = s.read_at(&Key::from("k"), snapshot).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn scan_is_ordered_and_respects_range_and_limit() {
        let mut s = MvccStore::new();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            s.apply(Key::from(*name), ts(10 + i as u64), Some(b(name)));
        }
        let r = KeyRange::new(Key::from("b"), Some(Key::from("d")));
        let got = s.scan_at(&r, ts(100), 10).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, Key::from("b"));
        assert_eq!(got[1].0, Key::from("c"));
        let limited = s.scan_at(&KeyRange::all(), ts(100), 2).unwrap();
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn scan_at_old_timestamp_excludes_later_writes() {
        let mut s = MvccStore::new();
        s.apply(Key::from("a"), ts(10), Some(b("a")));
        s.apply(Key::from("b"), ts(30), Some(b("b")));
        let got = s.scan_at(&KeyRange::all(), ts(20), 10).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, Key::from("a"));
    }

    #[test]
    fn gc_retains_reads_at_horizon() {
        let mut s = MvccStore::new();
        s.apply(Key::from("k"), ts(10), Some(b("v1")));
        s.apply(Key::from("k"), ts(20), Some(b("v2")));
        s.apply(Key::from("k"), ts(30), Some(b("v3")));
        s.gc(ts(25));
        // Reads at the horizon still see v2.
        assert_eq!(s.read_at(&Key::from("k"), ts(25)).unwrap(), Some(b("v2")));
        // Reads below the horizon fail.
        assert_eq!(s.read_at(&Key::from("k"), ts(15)), Err(SnapshotTooOld));
    }

    #[test]
    fn gc_drops_dead_cells() {
        let mut s = MvccStore::new();
        s.apply(Key::from("k"), ts(10), Some(b("v")));
        s.apply(Key::from("k"), ts(20), None);
        s.gc(ts(30));
        assert_eq!(s.live_keys(), 0);
        assert_eq!(s.read_at(&Key::from("k"), ts(40)).unwrap(), None);
    }

    #[test]
    fn live_stats() {
        let mut s = MvccStore::new();
        s.apply(Key::from("a"), ts(1), Some(b("xx")));
        s.apply(Key::from("b"), ts(2), Some(b("yyy")));
        s.apply(Key::from("b"), ts(3), None);
        assert_eq!(s.live_keys(), 1);
        assert_eq!(s.live_bytes(), 1 + 2); // key "a" + "xx"
    }

    #[test]
    fn median_key() {
        let mut s = MvccStore::new();
        assert!(s.median_key_in(&KeyRange::all()).is_none());
        for name in ["a", "b", "c", "d", "e"] {
            s.apply(Key::from(name), ts(1), Some(b(name)));
        }
        let m = s.median_key_in(&KeyRange::all()).unwrap();
        assert_eq!(m, Key::from("c"));
    }

    #[test]
    fn version_chain_gc_keeps_latest_when_all_below() {
        let mut c = VersionChain::default();
        c.push(ts(1), Some(b("a")));
        c.push(ts(2), Some(b("b")));
        c.gc(ts(100));
        assert_eq!(c.len(), 1);
        assert_eq!(c.latest().unwrap().value, Some(b("b")));
    }
}
