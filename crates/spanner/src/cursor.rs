//! Seekable, batched range cursors — the streaming read primitive.
//!
//! A [`RangeCursor`] walks a key range in bounded batches instead of
//! materializing the whole range: each refill reads at most `batch` rows
//! from storage, and [`RangeCursor::seek`] narrows the remaining range so
//! skipped rows are never fetched at all. This is the substrate for the
//! query engine's zig-zag joins with limit pushdown (paper §IV-D3: cost
//! scales with the *result* set, not the *data* set).
//!
//! The cursor is deliberately storage-agnostic: it does not hold a
//! reference to the database or a transaction. Every refill goes through a
//! caller-supplied [`ScanBackend`], so the same cursor logic serves
//! lock-free snapshot reads and lock-acquiring transactional reads.

use crate::error::SpannerResult;
use crate::key::{Key, KeyRange};
use crate::TableName;
use bytes::Bytes;
use std::collections::VecDeque;

/// The storage access a [`RangeCursor`] refills through. Implemented for
/// snapshot reads ([`SnapshotBackend`]) and, in the engine crate, for
/// transactional reads (which must thread a `&mut` transaction).
pub trait ScanBackend {
    /// Read up to `limit` rows of `range` from `table`, in key order
    /// (or reverse key order when `reverse`).
    fn scan(
        &mut self,
        table: TableName,
        range: &KeyRange,
        limit: usize,
        reverse: bool,
    ) -> SpannerResult<Vec<(Key, Bytes)>>;
}

/// Lock-free snapshot [`ScanBackend`] at a fixed timestamp.
pub struct SnapshotBackend<'a> {
    /// The database read from.
    pub db: &'a crate::SpannerDatabase,
    /// The read timestamp.
    pub ts: simkit::Timestamp,
}

impl ScanBackend for SnapshotBackend<'_> {
    fn scan(
        &mut self,
        table: TableName,
        range: &KeyRange,
        limit: usize,
        reverse: bool,
    ) -> SpannerResult<Vec<(Key, Bytes)>> {
        if reverse {
            self.db.snapshot_scan_rev(table, range, self.ts, limit)
        } else {
            self.db.snapshot_scan(table, range, self.ts, limit)
        }
    }
}

/// A streaming cursor over one table's key range.
///
/// Rows are pulled in batches of `batch`; `rows_read` counts every row
/// fetched from storage (the quantity a limit-pushdown query is billed by).
#[derive(Debug)]
pub struct RangeCursor {
    table: TableName,
    /// The not-yet-fetched remainder of the scan range.
    remaining: KeyRange,
    reverse: bool,
    batch: usize,
    buf: VecDeque<(Key, Bytes)>,
    /// Set when storage returned fewer rows than requested: the remainder
    /// is exhausted.
    done: bool,
    /// Rows fetched from storage over the cursor's lifetime.
    pub rows_read: usize,
    /// Seeks that actually narrowed the remaining range (zig-zag jumps).
    pub seeks: usize,
}

impl RangeCursor {
    /// A cursor over `range` of `table`, reading `batch` rows per refill.
    pub fn new(table: TableName, range: KeyRange, reverse: bool, batch: usize) -> RangeCursor {
        RangeCursor {
            table,
            remaining: range,
            reverse,
            batch: batch.max(1),
            buf: VecDeque::new(),
            done: false,
            rows_read: 0,
            seeks: 0,
        }
    }

    /// Raise (or lower) the refill batch size.
    pub fn set_batch(&mut self, batch: usize) {
        self.batch = batch.max(1);
    }

    fn refill(&mut self, backend: &mut impl ScanBackend) -> SpannerResult<()> {
        if self.done || self.remaining.is_empty() {
            self.done = true;
            return Ok(());
        }
        let rows = backend.scan(self.table, &self.remaining, self.batch, self.reverse)?;
        self.rows_read += rows.len();
        if rows.len() < self.batch {
            self.done = true;
        } else {
            // Advance the remainder past the fetched rows.
            let last = &rows[rows.len() - 1].0;
            if self.reverse {
                self.remaining.end = Some(last.clone());
            } else {
                self.remaining.start = last.successor();
            }
        }
        self.buf.extend(rows);
        Ok(())
    }

    /// The current head row, refilling from storage if needed.
    pub fn peek(&mut self, backend: &mut impl ScanBackend) -> SpannerResult<Option<&(Key, Bytes)>> {
        if self.buf.is_empty() && !self.done {
            self.refill(backend)?;
        }
        // (Borrow-checker friendly: re-borrow after the possible refill.)
        Ok(self.buf.front())
    }

    /// Pop the current head row.
    pub fn next(&mut self, backend: &mut impl ScanBackend) -> SpannerResult<Option<(Key, Bytes)>> {
        if self.buf.is_empty() && !self.done {
            self.refill(backend)?;
        }
        Ok(self.buf.pop_front())
    }

    /// Skip forward (in scan order) to the first row at or past `target`:
    /// `key >= target` on a forward scan, `key <= target` on a reverse one.
    /// Rows in between are dropped from the buffer or excluded from the
    /// remaining range without ever being fetched.
    pub fn seek(&mut self, target: &Key) {
        let mut skipped = false;
        while let Some((k, _)) = self.buf.front() {
            let behind = if self.reverse { k > target } else { k < target };
            if behind {
                self.buf.pop_front();
                skipped = true;
            } else {
                break;
            }
        }
        if self.buf.is_empty() && !self.done {
            // The target lies beyond everything fetched: narrow the
            // remaining range so the skipped span is never read.
            if self.reverse {
                let new_end = target.successor();
                if self
                    .remaining
                    .end
                    .as_ref()
                    .is_none_or(|end| new_end < *end)
                {
                    self.remaining.end = Some(new_end);
                    skipped = true;
                }
            } else if *target > self.remaining.start {
                self.remaining.start = target.clone();
                skipped = true;
            }
        }
        if skipped {
            self.seeks += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpannerDatabase;
    use simkit::{Duration, SimClock, Timestamp};

    const T: TableName = "Entities";

    fn setup(n: usize) -> (SpannerDatabase, Timestamp) {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        let db = SpannerDatabase::new(clock);
        db.create_table(T);
        let mut txn = db.begin();
        for i in 0..n {
            db.txn_put(
                &mut txn,
                T,
                Key::from(format!("k{i:04}").as_str()),
                Bytes::from(format!("v{i}")),
            )
            .unwrap();
        }
        db.commit(txn, Timestamp::ZERO, Timestamp::MAX).unwrap();
        let ts = db.strong_read_ts();
        (db, ts)
    }

    #[test]
    fn streams_in_batches_without_reading_everything() {
        let (db, ts) = setup(100);
        let mut backend = SnapshotBackend { db: &db, ts };
        let mut cur = RangeCursor::new(T, KeyRange::all(), false, 8);
        for i in 0..10 {
            let (k, _) = cur.next(&mut backend).unwrap().unwrap();
            assert_eq!(k, Key::from(format!("k{i:04}").as_str()));
        }
        assert!(
            cur.rows_read <= 16,
            "10 rows consumed must not read all 100 (read {})",
            cur.rows_read
        );
    }

    #[test]
    fn reverse_streams_descending() {
        let (db, ts) = setup(50);
        let mut backend = SnapshotBackend { db: &db, ts };
        let mut cur = RangeCursor::new(T, KeyRange::all(), true, 4);
        let (k, _) = cur.next(&mut backend).unwrap().unwrap();
        assert_eq!(k, Key::from("k0049"));
        let (k, _) = cur.next(&mut backend).unwrap().unwrap();
        assert_eq!(k, Key::from("k0048"));
        assert!(cur.rows_read <= 8);
    }

    #[test]
    fn seek_skips_unfetched_rows() {
        let (db, ts) = setup(100);
        let mut backend = SnapshotBackend { db: &db, ts };
        let mut cur = RangeCursor::new(T, KeyRange::all(), false, 4);
        cur.next(&mut backend).unwrap(); // fetch one batch
        cur.seek(&Key::from("k0090"));
        let (k, _) = cur.next(&mut backend).unwrap().unwrap();
        assert_eq!(k, Key::from("k0090"));
        assert!(
            cur.rows_read <= 8,
            "seek must not fetch the skipped middle (read {})",
            cur.rows_read
        );
        assert!(cur.seeks >= 1);
    }

    #[test]
    fn reverse_seek_skips_down() {
        let (db, ts) = setup(100);
        let mut backend = SnapshotBackend { db: &db, ts };
        let mut cur = RangeCursor::new(T, KeyRange::all(), true, 4);
        cur.next(&mut backend).unwrap(); // k0099
        cur.seek(&Key::from("k0010"));
        let (k, _) = cur.next(&mut backend).unwrap().unwrap();
        assert_eq!(k, Key::from("k0010"));
        assert!(cur.rows_read <= 8, "read {}", cur.rows_read);
    }

    #[test]
    fn seek_to_missing_key_lands_on_successor() {
        let (db, ts) = setup(20);
        let mut backend = SnapshotBackend { db: &db, ts };
        let mut cur = RangeCursor::new(T, KeyRange::all(), false, 64);
        cur.seek(&Key::from("k0005x"));
        let (k, _) = cur.next(&mut backend).unwrap().unwrap();
        assert_eq!(k, Key::from("k0006"));
    }

    #[test]
    fn exhausts_cleanly() {
        let (db, ts) = setup(5);
        let mut backend = SnapshotBackend { db: &db, ts };
        let mut cur = RangeCursor::new(T, KeyRange::all(), false, 2);
        let mut n = 0;
        while cur.next(&mut backend).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
        assert!(cur.peek(&mut backend).unwrap().is_none());
    }
}
