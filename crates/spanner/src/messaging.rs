//! Transactional messaging.
//!
//! "Spanner also has a transactional messaging system that allows its user to
//! persist information that can be used to perform asynchronous work. This
//! system is used by the Firestore Backend to implement write triggers"
//! (paper §IV-D2). A message is enqueued *inside* a transaction — it becomes
//! visible exactly when (and only if) the transaction commits — and is later
//! dequeued and delivered asynchronously.
//!
//! Messages live in an ordinary table (`Messages`), keyed by
//! `(topic, sequence)`, so they inherit the substrate's atomicity; the
//! consumer is a cursor that scans forward and deletes delivered rows.

use crate::database::{SpannerDatabase, TableName};
use crate::error::{SpannerError, SpannerResult};
use crate::key::{Key, KeyRange};
use crate::txn::ReadWriteTransaction;
use bytes::Bytes;
use simkit::fault::FaultKind;
use simkit::Timestamp;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The table backing all message topics.
pub const MESSAGES_TABLE: TableName = "Messages";

/// A durable message queue multiplexed over the `Messages` table by topic.
#[derive(Clone)]
pub struct MessageQueue {
    db: SpannerDatabase,
    seq: Arc<AtomicU64>,
}

/// A message read from the queue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueuedMessage {
    /// The row key (needed to acknowledge).
    pub key: Key,
    /// Message payload.
    pub payload: Bytes,
}

impl MessageQueue {
    /// Create (or attach to) the message queue of `db`.
    pub fn new(db: SpannerDatabase) -> Self {
        db.create_table(MESSAGES_TABLE);
        MessageQueue {
            db,
            seq: Arc::new(AtomicU64::new(1)),
        }
    }

    fn message_key(&self, topic: &[u8]) -> Key {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let mut v = Vec::with_capacity(topic.len() + 1 + 8);
        v.extend_from_slice(topic);
        v.push(0);
        v.extend_from_slice(&seq.to_be_bytes());
        Key::from(v)
    }

    fn topic_range(topic: &[u8]) -> KeyRange {
        let mut start = topic.to_vec();
        start.push(0);
        let mut end = topic.to_vec();
        end.push(1);
        KeyRange::new(Key::from(start), Some(Key::from(end)))
    }

    /// Enqueue `payload` on `topic` inside `txn`: it is delivered only if
    /// the transaction commits.
    pub fn enqueue(
        &self,
        txn: &mut ReadWriteTransaction,
        topic: &[u8],
        payload: Bytes,
    ) -> SpannerResult<()> {
        let key = self.message_key(topic);
        self.db.txn_put(txn, MESSAGES_TABLE, key, payload)
    }

    /// Read up to `limit` pending messages of `topic` in enqueue order, at
    /// the given read timestamp.
    pub fn peek(
        &self,
        topic: &[u8],
        ts: Timestamp,
        limit: usize,
    ) -> SpannerResult<Vec<QueuedMessage>> {
        let rows = self
            .db
            .snapshot_scan(MESSAGES_TABLE, &Self::topic_range(topic), ts, limit)?;
        Ok(rows
            .into_iter()
            .map(|(key, payload)| QueuedMessage { key, payload })
            .collect())
    }

    /// Delete delivered messages (runs its own small transaction).
    pub fn ack(&self, messages: &[QueuedMessage]) -> SpannerResult<()> {
        if messages.is_empty() {
            return Ok(());
        }
        let mut txn = self.db.begin();
        for m in messages {
            self.db
                .txn_delete(&mut txn, MESSAGES_TABLE, m.key.clone())?;
        }
        self.db.commit(txn, Timestamp::ZERO, Timestamp::MAX)?;
        Ok(())
    }

    /// Convenience: dequeue (peek + ack) up to `limit` messages at the
    /// current strong-read timestamp.
    ///
    /// Under the chaos layer delivery is at-least-once: a
    /// [`FaultKind::MessageDrop`] fault fails the attempt while messages
    /// stay queued (delayed, never lost), and a
    /// [`FaultKind::MessageDuplicate`] fault delivers without acknowledging,
    /// so the same messages are redelivered on the next dequeue.
    pub fn dequeue(&self, topic: &[u8], limit: usize) -> SpannerResult<Vec<QueuedMessage>> {
        if let Some(inj) = self.db.fault_injector() {
            if inj.should_inject(FaultKind::MessageDrop, "dequeue") {
                return Err(SpannerError::Unavailable("dequeue: delivery dropped"));
            }
            if inj.should_inject(FaultKind::MessageDuplicate, "dequeue") {
                // Deliver without acking: redelivered next time.
                let ts = self.db.strong_read_ts();
                return self.peek(topic, ts, limit);
            }
        }
        let ts = self.db.strong_read_ts();
        let msgs = self.peek(topic, ts, limit)?;
        self.ack(&msgs)?;
        Ok(msgs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{Duration, SimClock};

    fn setup() -> (SpannerDatabase, MessageQueue) {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        let db = SpannerDatabase::new(clock);
        db.create_table("Entities");
        let q = MessageQueue::new(db.clone());
        (db, q)
    }

    #[test]
    fn message_visible_only_after_commit() {
        let (db, q) = setup();
        let mut txn = db.begin();
        q.enqueue(&mut txn, b"topic", Bytes::from_static(b"m1"))
            .unwrap();
        assert!(q
            .peek(b"topic", db.strong_read_ts(), 10)
            .unwrap()
            .is_empty());
        db.commit(txn, Timestamp::ZERO, Timestamp::MAX).unwrap();
        let msgs = q.peek(b"topic", db.strong_read_ts(), 10).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].payload, Bytes::from_static(b"m1"));
    }

    #[test]
    fn aborted_transaction_discards_message() {
        let (db, q) = setup();
        let mut txn = db.begin();
        q.enqueue(&mut txn, b"topic", Bytes::from_static(b"m1"))
            .unwrap();
        db.abort(&mut txn);
        assert!(q
            .peek(b"topic", db.strong_read_ts(), 10)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn dequeue_preserves_order_and_removes() {
        let (db, q) = setup();
        for payload in ["a", "b", "c"] {
            let mut txn = db.begin();
            q.enqueue(&mut txn, b"t", Bytes::copy_from_slice(payload.as_bytes()))
                .unwrap();
            db.commit(txn, Timestamp::ZERO, Timestamp::MAX).unwrap();
        }
        let msgs = q.dequeue(b"t", 2).unwrap();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].payload, Bytes::from_static(b"a"));
        assert_eq!(msgs[1].payload, Bytes::from_static(b"b"));
        let rest = q.dequeue(b"t", 10).unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].payload, Bytes::from_static(b"c"));
        assert!(q.dequeue(b"t", 10).unwrap().is_empty());
    }

    #[test]
    fn topics_are_isolated() {
        let (db, q) = setup();
        let mut txn = db.begin();
        q.enqueue(&mut txn, b"t1", Bytes::from_static(b"m"))
            .unwrap();
        db.commit(txn, Timestamp::ZERO, Timestamp::MAX).unwrap();
        assert!(q.dequeue(b"t2", 10).unwrap().is_empty());
        assert_eq!(q.dequeue(b"t1", 10).unwrap().len(), 1);
    }

    #[test]
    fn message_and_data_commit_atomically() {
        let (db, q) = setup();
        db.inject_commit_failure(crate::error::SpannerError::UnknownOutcome);
        let mut txn = db.begin();
        db.txn_put(
            &mut txn,
            "Entities",
            Key::from("doc"),
            Bytes::from_static(b"v"),
        )
        .unwrap();
        q.enqueue(&mut txn, b"t", Bytes::from_static(b"m")).unwrap();
        assert!(db.commit(txn, Timestamp::ZERO, Timestamp::MAX).is_err());
        // Neither the row nor the message is visible.
        assert_eq!(
            db.snapshot_read("Entities", &Key::from("doc"), db.strong_read_ts())
                .unwrap(),
            None
        );
        assert!(q.peek(b"t", db.strong_read_ts(), 10).unwrap().is_empty());
    }
}
