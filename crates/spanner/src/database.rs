//! The Spanner database: tables, directories, transactions, commits.
//!
//! One `SpannerDatabase` models one of the "small number of pre-initialized
//! Spanner databases" per region that Firestore multiplexes millions of
//! customer databases onto (paper §IV-D1). Customer databases map to
//! *directories* — key-prefix placement units — allocated from this object.

use crate::error::{SpannerError, SpannerResult};
use crate::key::{Key, KeyRange};
use crate::lock::{LockManager, LockMode};
use crate::mvcc::MvccStore;
use crate::redo::{tablet_log, RecoveryReport, RedoRecord, OUTCOMES_LOG, TABLET_LOG_PREFIX};
use crate::tablet::{SplitPolicy, TabletMap};
use crate::txn::{Mutation, ReadWriteTransaction, TxnId};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use simkit::fault::{FaultInjector, FaultKind};
use simkit::history::{hash_bytes, HistoryEvent, HistoryRecorder};
use simkit::prof;
use simkit::{CrashPoints, Duration, Obs, SimClock, SimDisk, Timestamp, TrueTime};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// A table name. Firestore uses `Entities` and `IndexEntries` (§IV-D1), plus
/// a `Messages` table for the transactional messaging system (§IV-D2).
pub type TableName = &'static str;

/// Commit mutations grouped by participant tablet `(table id, tablet index)`,
/// the unit that receives one redo `Prepared` record during 2PC.
type ParticipantMutations = BTreeMap<(u32, usize), Vec<(Key, Option<Bytes>)>>;

/// Options controlling substrate behaviour.
#[derive(Clone, Debug, Default)]
pub struct SpannerOptions {
    /// Tablet split policy applied to every table.
    pub split_policy: SplitPolicy,
}

struct TableData {
    store: RwLock<MvccStore>,
    tablets: Mutex<TabletMap>,
}

/// A directory id: the placement unit one Firestore database occupies.
/// Directory `d`'s keys all start with the 4-byte big-endian encoding of `d`,
/// so a directory is a contiguous key range in every table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DirectoryId(pub u32);

impl DirectoryId {
    /// The key prefix of this directory.
    pub fn prefix(&self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Prefix a key with this directory.
    pub fn key(&self, suffix: &[u8]) -> Key {
        let mut v = Vec::with_capacity(4 + suffix.len());
        v.extend_from_slice(&self.prefix());
        v.extend_from_slice(suffix);
        Key::from(v)
    }

    /// The key range covering the whole directory.
    pub fn range(&self) -> KeyRange {
        KeyRange::prefix(&Key::from(self.prefix().to_vec()))
    }
}

/// The result of a successful commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitInfo {
    /// The TrueTime commit timestamp assigned to the transaction.
    pub commit_ts: Timestamp,
    /// Distinct tablets (Paxos participant groups) the commit touched.
    pub participants: usize,
    /// Total mutation payload bytes.
    pub payload_bytes: usize,
    /// Number of mutations applied.
    pub mutation_count: usize,
    /// Simulated time spent acquiring exclusive locks (phase 1).
    pub lock_wait: Duration,
    /// Simulated time spent in TrueTime commit wait (phase 4), including
    /// any injected uncertainty spike.
    pub commit_wait: Duration,
    /// CPU time the cost ledger charged to the clock inside this commit
    /// (redo appends, fsyncs, lock release) — see `simkit::prof::costs`.
    pub cpu_charged: Duration,
}

/// Failure injection hooks for testing the write pipeline's error paths
/// (paper §IV-D2 enumerates them; §VI stresses testing them).
#[derive(Debug, Default)]
struct FailureInjector {
    /// Fail the next `n` commits with the given error.
    fail_commits: Mutex<Vec<SpannerError>>,
}

struct Inner {
    truetime: TrueTime,
    tables: RwLock<HashMap<&'static str, (u32, Arc<TableData>)>>,
    locks: LockManager,
    next_txn: AtomicU64,
    next_directory: AtomicU32,
    options: SpannerOptions,
    failures: FailureInjector,
    fault_injector: Mutex<Option<Arc<FaultInjector>>>,
    obs: Mutex<Option<Obs>>,
    commits: AtomicU64,
    aborts: AtomicU64,
    /// The durable medium redo records are appended to; `None` runs the
    /// database fully volatile (the pre-durability behaviour).
    disk: Mutex<Option<SimDisk>>,
    /// The crash-point registry consulted inside the commit path.
    crash_points: Mutex<Option<CrashPoints>>,
    /// Set by [`SpannerDatabase::crash`]; every operation fails until
    /// [`SpannerDatabase::recover`] completes.
    crashed: AtomicBool,
    /// Transactions begun before the last crash are fenced off: any id
    /// below this is rejected (its locks and buffers died with the process).
    min_live_txn: AtomicU64,
    /// Locks discarded by the last crash (reported by `recover`).
    orphan_locks: AtomicU64,
    /// Consistency-oracle history recorder; commits, transactional reads,
    /// and snapshot reads are recorded while one is attached.
    history: Mutex<Option<Arc<HistoryRecorder>>>,
    /// Oracle mutation toggle: serve snapshot reads from this much earlier
    /// than the requested timestamp while *recording* the requested one — a
    /// deliberate staleness bug the oracle must catch.
    oracle_stale_reads: Mutex<Option<Duration>>,
    /// Test-only perf-mutation knob (nanoseconds): extra charge added to
    /// every redo-log fsync, modeling a degraded device. The bench-gate
    /// mutation proof seeds this and asserts the gate fails.
    fsync_padding_ns: AtomicU64,
}

/// A Spanner-like database. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct SpannerDatabase {
    inner: Arc<Inner>,
}

impl SpannerDatabase {
    /// Create a database over the given clock with default options.
    pub fn new(clock: SimClock) -> Self {
        SpannerDatabase::with_options(clock, SpannerOptions::default())
    }

    /// Create a database with explicit options.
    pub fn with_options(clock: SimClock, options: SpannerOptions) -> Self {
        let truetime = TrueTime::with_default_epsilon(clock);
        SpannerDatabase {
            inner: Arc::new(Inner {
                truetime,
                tables: RwLock::new(HashMap::new()),
                locks: LockManager::new(),
                next_txn: AtomicU64::new(1),
                next_directory: AtomicU32::new(1),
                options,
                failures: FailureInjector::default(),
                fault_injector: Mutex::new(None),
                obs: Mutex::new(None),
                commits: AtomicU64::new(0),
                aborts: AtomicU64::new(0),
                disk: Mutex::new(None),
                crash_points: Mutex::new(None),
                crashed: AtomicBool::new(false),
                min_live_txn: AtomicU64::new(0),
                orphan_locks: AtomicU64::new(0),
                history: Mutex::new(None),
                oracle_stale_reads: Mutex::new(None),
                fsync_padding_ns: AtomicU64::new(0),
            }),
        }
    }

    /// Attach a durable medium. From now on every commit appends per-tablet
    /// `Prepared` redo records and a coordinator `Outcome` record (the
    /// durability point) before applying mutations, and
    /// [`SpannerDatabase::recover`] can rebuild state after a
    /// [`SpannerDatabase::crash`].
    pub fn attach_durability(&self, disk: SimDisk) {
        *self.inner.disk.lock() = Some(disk);
    }

    /// The attached durable medium, if any.
    pub fn durability(&self) -> Option<SimDisk> {
        self.inner.disk.lock().clone()
    }

    /// Test-only perf-mutation knob: pad every redo-log fsync charge by
    /// `d`, modeling a degraded device. The bench-gate mutation proof seeds
    /// this into a benched path and asserts the gate fails, then passes
    /// once reset to zero.
    pub fn set_redo_fsync_padding(&self, d: Duration) {
        self.inner
            .fsync_padding_ns
            .store(d.as_nanos(), Ordering::Relaxed);
    }

    /// Charge one redo-log fsync to the clock (cost-ledger model plus any
    /// test-only padding); returns the amount charged.
    fn charge_fsync(&self) -> Duration {
        let c = prof::costs::REDO_FSYNC
            + Duration::from_nanos(self.inner.fsync_padding_ns.load(Ordering::Relaxed));
        self.inner.truetime.clock().advance(c);
        c
    }

    /// Install (or clear) the crash-point registry consulted inside the
    /// commit path. When a registered site is armed, reaching it crashes the
    /// database mid-commit.
    pub fn set_crash_points(&self, points: Option<CrashPoints>) {
        *self.inner.crash_points.lock() = points;
    }

    /// Whether the process is currently crashed (every operation returns
    /// [`SpannerError::Unavailable`] until [`SpannerDatabase::recover`]).
    pub fn crashed(&self) -> bool {
        self.inner.crashed.load(Ordering::SeqCst)
    }

    /// Record that execution reached a named crash site; returns `true` —
    /// after crashing the database — iff the site was armed.
    fn crash_if_armed(&self, site: &'static str) -> bool {
        let points = self.inner.crash_points.lock().clone();
        match points {
            Some(p) if p.reached(site) => {
                self.crash();
                true
            }
            _ => false,
        }
    }

    /// Crash the process: drop every piece of volatile state — MVCC stores,
    /// tablet maps, the lock table, all in-flight transactions — and fail
    /// every subsequent operation until [`SpannerDatabase::recover`]. The
    /// attached [`SimDisk`] (if any) also crashes, losing unsynced bytes and
    /// possibly leaving torn log tails.
    pub fn crash(&self) {
        self.inner.crashed.store(true, Ordering::SeqCst);
        // Fence off every transaction begun before the crash: its locks and
        // buffers died with the process.
        self.inner.min_live_txn.store(
            self.inner.next_txn.load(Ordering::SeqCst),
            Ordering::SeqCst,
        );
        let orphans = self.inner.locks.clear();
        self.inner
            .orphan_locks
            .store(orphans as u64, Ordering::SeqCst);
        for (_, data) in self.inner.tables.read().values() {
            *data.store.write() = MvccStore::new();
            *data.tablets.lock() = TabletMap::new(self.inner.options.split_policy);
        }
        if let Some(disk) = self.inner.disk.lock().as_ref() {
            disk.crash();
        }
        if let Some(h) = self.inner.history.lock().as_ref() {
            h.record(HistoryEvent::Crash);
        }
    }

    /// Recover from a crash by replaying the redo logs: rebuild every tablet
    /// from its durable `Prepared` records whose transaction has a durable
    /// coordinator `Outcome`, discard prepared-but-undecided participants
    /// (the 2PC coordinator resolution), and truncate torn log tails. A
    /// no-op when the database is not crashed.
    pub fn recover(&self) -> RecoveryReport {
        let mut report = RecoveryReport {
            orphan_locks_discarded: self.inner.orphan_locks.swap(0, Ordering::SeqCst) as usize,
            ..RecoveryReport::default()
        };
        if !self.inner.crashed.swap(false, Ordering::SeqCst) {
            return report;
        }
        let Some(disk) = self.inner.disk.lock().clone() else {
            return report;
        };
        // Chaos layer: a TrueTime uncertainty spike during replay stretches
        // recovery (the commit-wait equivalent for the restart path).
        if self.inject(FaultKind::TtUncertaintySpike, "recover-replay") {
            let spike = self
                .fault_injector()
                .map(|inj| inj.tt_spike())
                .unwrap_or_default();
            self.inner.truetime.clock().advance(spike);
        }
        // 1. The coordinator log decides which transactions committed.
        let outcomes = disk.read(OUTCOMES_LOG);
        report.torn_tails += usize::from(outcomes.torn_tail);
        // Keyed by (txn id, commit ts), not txn id alone: the on-disk format
        // permits duplicate txn ids (a fresh database attached to an existing
        // disk restarts the id sequence), and an id reuse must not shadow an
        // earlier acked commit's outcome.
        let mut committed: HashSet<(u64, Timestamp)> = HashSet::new();
        for raw in &outcomes.records {
            if let Some(RedoRecord::Outcome { txn_id, commit_ts }) = RedoRecord::decode(raw) {
                committed.insert((txn_id, commit_ts));
            }
        }
        // 2. Scan every participant log, keeping prepared mutations whose
        // transaction has a durable outcome.
        let mut replayed: Vec<(Timestamp, u64, u32, Key, Option<Bytes>)> = Vec::new();
        let mut replayed_txns: HashMap<u64, ()> = HashMap::new();
        for log in disk.logs_with_prefix(TABLET_LOG_PREFIX) {
            report.logs_scanned += 1;
            let replay = disk.read(&log);
            report.torn_tails += usize::from(replay.torn_tail);
            for raw in &replay.records {
                let Some(RedoRecord::Prepared {
                    txn_id,
                    commit_ts,
                    table,
                    mutations,
                }) = RedoRecord::decode(raw)
                else {
                    continue;
                };
                if committed.contains(&(txn_id, commit_ts)) {
                    replayed_txns.insert(txn_id, ());
                    for (key, value) in mutations {
                        replayed.push((commit_ts, txn_id, table, key, value));
                    }
                } else {
                    report.discarded_prepares += 1;
                }
            }
        }
        // 3. Reapply in commit-timestamp order so each key's version chain
        // is rebuilt monotonically.
        replayed.sort_by(|a, b| (a.0, a.1, a.2, &a.3).cmp(&(b.0, b.1, b.2, &b.3)));
        report.replayed_txns = replayed_txns.len();
        report.replayed_mutations = replayed.len();
        let now = self.inner.truetime.clock().now();
        let tables = self.inner.tables.read();
        let mut id_to_data: HashMap<u32, &Arc<TableData>> = HashMap::new();
        for (id, data) in tables.values() {
            id_to_data.insert(*id, data);
        }
        for (commit_ts, _txn, tid, key, value) in replayed {
            let Some(data) = id_to_data.get(&tid) else {
                // A log for a table this schema no longer knows: skip rather
                // than wedge recovery.
                continue;
            };
            let bytes = key.len() + value.as_ref().map_or(0, |v| v.len());
            data.tablets.lock().record_write(&key, bytes, now);
            data.store.write().apply(key, commit_ts, value);
        }
        if let Some(o) = self.obs() {
            o.metrics.incr("spanner.recoveries", &[], 1);
            let s = o.tracer.span("spanner.recover");
            s.attr("replayed_txns", report.replayed_txns);
            s.attr("replayed_mutations", report.replayed_mutations);
            s.attr("logs_scanned", report.logs_scanned);
            s.attr("discarded_prepares", report.discarded_prepares);
        }
        if let Some(h) = self.inner.history.lock().as_ref() {
            h.record(HistoryEvent::Recovered);
        }
        report
    }

    /// Fail with [`SpannerError::Unavailable`] while crashed.
    fn ensure_up(&self) -> SpannerResult<()> {
        if self.crashed() {
            return Err(SpannerError::Unavailable("process crashed; recovery required"));
        }
        Ok(())
    }

    /// Reject operations on transactions that predate the last crash (their
    /// locks and buffers were volatile) and all operations while crashed.
    fn fence(&self, txn: &ReadWriteTransaction) -> SpannerResult<()> {
        self.ensure_up()?;
        if txn.id.0 < self.inner.min_live_txn.load(Ordering::SeqCst) {
            return Err(SpannerError::TxnClosed(txn.id));
        }
        Ok(())
    }

    /// The TrueTime source.
    pub fn truetime(&self) -> &TrueTime {
        &self.inner.truetime
    }

    /// Install (or clear) the chaos-layer fault injector. Tablet
    /// unavailability, TrueTime uncertainty spikes, and lock timeouts are
    /// then injected per the injector's [`simkit::fault::FaultPlan`].
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        self.inner.locks.set_injector(injector.clone());
        *self.inner.fault_injector.lock() = injector;
    }

    /// The installed fault injector, if any (shared with the messaging and
    /// cache layers so all decisions come from one seeded stream).
    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        self.inner.fault_injector.lock().clone()
    }

    /// Install (or clear) the observability handle. Commit phases, redo
    /// logging, tablet splits, and recovery then emit spans and metrics.
    pub fn set_obs(&self, obs: Option<Obs>) {
        *self.inner.obs.lock() = obs;
    }

    /// The installed observability handle, if any.
    pub fn obs(&self) -> Option<Obs> {
        self.inner.obs.lock().clone()
    }

    /// Attach (or clear) the consistency-oracle history recorder. While one
    /// is attached every commit, transactional read, and snapshot read is
    /// recorded; production paths pay a single null check otherwise.
    pub fn set_history(&self, history: Option<Arc<HistoryRecorder>>) {
        *self.inner.history.lock() = history;
    }

    /// The attached history recorder, if any.
    pub fn history(&self) -> Option<Arc<HistoryRecorder>> {
        self.inner.history.lock().clone()
    }

    /// Oracle mutation toggle (test-only): serve snapshot reads `delta`
    /// earlier than the requested timestamp while recording the requested
    /// one. A seeded staleness bug the consistency oracle must detect —
    /// `None` restores correct behaviour.
    pub fn oracle_serve_stale_reads(&self, delta: Option<Duration>) {
        *self.inner.oracle_stale_reads.lock() = delta;
    }

    /// The timestamp snapshot reads are actually served at: the requested
    /// one unless the stale-read oracle mutation is active.
    fn serve_ts(&self, ts: Timestamp) -> Timestamp {
        match *self.inner.oracle_stale_reads.lock() {
            Some(delta) => Timestamp(ts.0.saturating_sub(delta.0)),
            None => ts,
        }
    }

    /// Record a snapshot-read observation, if a recorder is attached.
    fn record_snapshot_read(
        &self,
        table: TableName,
        key: &Key,
        ts: Timestamp,
        observed: Option<u64>,
    ) {
        if let Some(h) = self.inner.history.lock().as_ref() {
            h.record(HistoryEvent::SnapshotRead {
                ts,
                table: table.to_string(),
                key: key.as_slice().to_vec(),
                observed,
            });
        }
    }

    /// Record a transactional read observation into the transaction, if a
    /// recorder is attached (drained into the `Commit` event on commit).
    fn observe_txn_read(
        &self,
        txn: &mut ReadWriteTransaction,
        tid: u32,
        key: &Key,
        observed: Option<u64>,
    ) {
        if self.inner.history.lock().is_some() {
            txn.observed_reads.push((tid, key.clone(), observed));
        }
    }

    /// Consult the chaos layer at an injection site.
    fn inject(&self, kind: FaultKind, site: &'static str) -> bool {
        self.inner
            .fault_injector
            .lock()
            .as_ref()
            .is_some_and(|inj| inj.should_inject(kind, site))
    }

    /// Create `name` if it does not exist; idempotent.
    pub fn create_table(&self, name: TableName) {
        let mut tables = self.inner.tables.write();
        let next_id = tables.len() as u32;
        tables.entry(name).or_insert_with(|| {
            (
                next_id,
                Arc::new(TableData {
                    store: RwLock::new(MvccStore::new()),
                    tablets: Mutex::new(TabletMap::new(self.inner.options.split_policy)),
                }),
            )
        });
    }

    fn table(&self, name: &str) -> SpannerResult<(u32, Arc<TableData>)> {
        self.ensure_up()?;
        self.inner
            .tables
            .read()
            .get(name)
            .map(|(id, t)| (*id, t.clone()))
            .ok_or_else(|| SpannerError::NoSuchTable(name.to_string()))
    }

    /// Allocate a fresh directory (a Firestore database's placement unit).
    pub fn allocate_directory(&self) -> DirectoryId {
        DirectoryId(self.inner.next_directory.fetch_add(1, Ordering::SeqCst))
    }

    /// Begin a read-write transaction.
    pub fn begin(&self) -> ReadWriteTransaction {
        ReadWriteTransaction::new(TxnId(self.inner.next_txn.fetch_add(1, Ordering::SeqCst)))
    }

    /// Transactional read with a shared lock. Sees the transaction's own
    /// buffered writes.
    pub fn txn_read(
        &self,
        txn: &mut ReadWriteTransaction,
        table: TableName,
        key: &Key,
    ) -> SpannerResult<Option<Bytes>> {
        self.txn_read_locked(txn, table, key, LockMode::Shared)
    }

    /// Transactional read with an exclusive lock, as the Backend does for
    /// documents it is about to write (paper §IV-D2 step 2).
    pub fn txn_read_for_update(
        &self,
        txn: &mut ReadWriteTransaction,
        table: TableName,
        key: &Key,
    ) -> SpannerResult<Option<Bytes>> {
        self.txn_read_locked(txn, table, key, LockMode::Exclusive)
    }

    fn txn_read_locked(
        &self,
        txn: &mut ReadWriteTransaction,
        table: TableName,
        key: &Key,
        mode: LockMode,
    ) -> SpannerResult<Option<Bytes>> {
        if txn.closed {
            return Err(SpannerError::TxnClosed(txn.id));
        }
        self.fence(txn)?;
        if self.inject(FaultKind::TabletUnavailable, "txn-read") {
            self.abort(txn);
            return Err(SpannerError::Unavailable("txn-read: tablet unreachable"));
        }
        let (tid, data) = self.table(table)?;
        if let Some(buffered) = txn.buffered(tid, key) {
            return Ok(buffered);
        }
        if let Err(e) = self.inner.locks.acquire(txn.id, tid, key, mode) {
            self.abort(txn);
            return Err(e);
        }
        txn.read_keys.push((tid, key.clone()));
        let value = data.store.read().read_latest(key);
        self.observe_txn_read(txn, tid, key, value.as_deref().map(hash_bytes));
        Ok(value)
    }

    /// Transactional scan: shared-locks each returned key so concurrent
    /// writers conflict (the read-lock behaviour of queries inside
    /// transactions, §IV-D3). Does not merge buffered writes — Firestore's
    /// Backend performs queries before buffering mutations.
    pub fn txn_scan(
        &self,
        txn: &mut ReadWriteTransaction,
        table: TableName,
        range: &KeyRange,
        limit: usize,
    ) -> SpannerResult<Vec<(Key, Bytes)>> {
        if txn.closed {
            return Err(SpannerError::TxnClosed(txn.id));
        }
        self.fence(txn)?;
        let (tid, data) = self.table(table)?;
        let rows: Vec<(Key, Bytes)> = {
            let store = data.store.read();
            let mut out = Vec::new();
            for (k, v) in store
                .scan_at(&range.clone(), Timestamp::MAX, limit)
                .unwrap_or_default()
            {
                out.push((k, v));
            }
            out
        };
        for (k, _) in &rows {
            if let Err(e) = self.inner.locks.acquire(txn.id, tid, k, LockMode::Shared) {
                self.abort(txn);
                return Err(e);
            }
        }
        for (k, v) in &rows {
            self.observe_txn_read(txn, tid, k, Some(hash_bytes(v)));
        }
        txn.scanned_ranges.push((tid, range.clone()));
        Ok(rows)
    }

    /// Transactional scan in *reverse* key order: shared-locks each returned
    /// key, reading at most `limit` rows from the top of the range. The
    /// bounded reverse read lets descending limit queries inside
    /// transactions lock only the rows they actually examine.
    pub fn txn_scan_rev(
        &self,
        txn: &mut ReadWriteTransaction,
        table: TableName,
        range: &KeyRange,
        limit: usize,
    ) -> SpannerResult<Vec<(Key, Bytes)>> {
        if txn.closed {
            return Err(SpannerError::TxnClosed(txn.id));
        }
        self.fence(txn)?;
        let (tid, data) = self.table(table)?;
        let rows: Vec<(Key, Bytes)> = data
            .store
            .read()
            .scan_rev_at(&range.clone(), Timestamp::MAX, limit)
            .unwrap_or_default();
        for (k, _) in &rows {
            if let Err(e) = self.inner.locks.acquire(txn.id, tid, k, LockMode::Shared) {
                self.abort(txn);
                return Err(e);
            }
        }
        for (k, v) in &rows {
            self.observe_txn_read(txn, tid, k, Some(hash_bytes(v)));
        }
        txn.scanned_ranges.push((tid, range.clone()));
        Ok(rows)
    }

    /// Buffer an insert/update.
    pub fn txn_put(
        &self,
        txn: &mut ReadWriteTransaction,
        table: TableName,
        key: Key,
        value: Bytes,
    ) -> SpannerResult<()> {
        self.txn_mutate(txn, table, key, Some(value))
    }

    /// Buffer a delete.
    pub fn txn_delete(
        &self,
        txn: &mut ReadWriteTransaction,
        table: TableName,
        key: Key,
    ) -> SpannerResult<()> {
        self.txn_mutate(txn, table, key, None)
    }

    fn txn_mutate(
        &self,
        txn: &mut ReadWriteTransaction,
        table: TableName,
        key: Key,
        value: Option<Bytes>,
    ) -> SpannerResult<()> {
        if txn.closed {
            return Err(SpannerError::TxnClosed(txn.id));
        }
        self.fence(txn)?;
        let (tid, _) = self.table(table)?;
        txn.mutations.push(Mutation {
            table: tid,
            key,
            value,
        });
        Ok(())
    }

    /// Abort a transaction, releasing its locks.
    pub fn abort(&self, txn: &mut ReadWriteTransaction) {
        if !txn.closed {
            txn.closed = true;
            self.inner.locks.release_all(txn.id);
            self.inner.aborts.fetch_add(1, Ordering::Relaxed);
            if let Some(obs) = self.obs() {
                obs.metrics.incr("spanner.aborts", &[], 1);
            }
        }
    }

    /// Commit a transaction with a commit timestamp constrained to
    /// `[min_ts, max_ts]` (the window negotiated with the Real-time Cache,
    /// paper §IV-D2 steps 5–6).
    ///
    /// On success every buffered mutation is applied atomically at the
    /// commit timestamp and commit-wait is performed so the timestamp is in
    /// the past when this returns.
    pub fn commit(
        &self,
        mut txn: ReadWriteTransaction,
        min_ts: Timestamp,
        max_ts: Timestamp,
    ) -> SpannerResult<CommitInfo> {
        if txn.closed {
            return Err(SpannerError::TxnClosed(txn.id));
        }
        self.fence(&txn)?;
        let obs = self.obs();
        let span = obs.as_ref().map(|o| {
            let s = o.tracer.span("spanner.commit");
            s.attr("txn", txn.id.0);
            s.attr("mutations", txn.mutations.len());
            s
        });
        // Injected failures (tests / failure-injection experiments).
        if let Some(err) = self.inner.failures.fail_commits.lock().pop() {
            self.abort(&mut txn);
            return Err(err);
        }
        // Chaos layer: a participant tablet is transiently unreachable.
        if self.inject(FaultKind::TabletUnavailable, "commit") {
            self.abort(&mut txn);
            return Err(SpannerError::Unavailable("commit: tablet unreachable"));
        }

        // Phase 1: acquire exclusive locks on every written cell. The span
        // brackets exactly the measured `lock_wait` window, so profiler
        // self-time for `spanner.lock.acquire` reconciles against the
        // breakdown's lock_wait phase (an aborted acquisition still records
        // the time waited so far when the guard drops on the error return).
        let lock_span = obs.as_ref().map(|o| {
            let s = o.tracer.span("spanner.lock.acquire");
            s.attr("cells", txn.mutations.len());
            s
        });
        let lock_start = self.inner.truetime.clock().now();
        for m in &txn.mutations {
            if let Err(e) = self
                .inner
                .locks
                .acquire(txn.id, m.table, &m.key, LockMode::Exclusive)
            {
                self.abort(&mut txn);
                return Err(e);
            }
        }
        let lock_wait = self.inner.truetime.clock().now().saturating_sub(lock_start);
        drop(lock_span);
        let mut cpu_charged = Duration::ZERO;
        if let Some(s) = &span {
            s.event(format!("locks-acquired n={}", txn.mutations.len()));
        }

        // Phase 2: assign a TrueTime commit timestamp inside the window.
        let commit_ts = match self.inner.truetime.assign_commit_timestamp(min_ts, max_ts) {
            Some(ts) => ts,
            None => {
                self.abort(&mut txn);
                return Err(SpannerError::CommitWindowExpired);
            }
        };
        if let Some(s) = &span {
            s.attr("commit_ts", commit_ts.as_nanos());
        }

        // Phase 3: log redo records, then apply mutations atomically (later
        // writes to the same key within the txn win) and account tablet
        // participation.
        let now = self.inner.truetime.clock().now();
        let mut participants = 0usize;
        let payload = txn.payload_bytes();
        let mutation_count = txn.mutations.len();
        {
            // Group mutations per table, deduplicated last-write-wins, in
            // deterministic table-id order (the redo logs must be stable
            // across identically seeded runs).
            let by_table: BTreeMap<u32, Vec<Mutation>> = {
                let mut dedup: HashMap<(u32, &Key), usize> = HashMap::new();
                for (i, m) in txn.mutations.iter().enumerate() {
                    dedup.insert((m.table, &m.key), i);
                }
                let mut grouped: BTreeMap<u32, Vec<Mutation>> = BTreeMap::new();
                for (i, m) in txn.mutations.iter().enumerate() {
                    if dedup[&(m.table, &m.key)] == i {
                        grouped.entry(m.table).or_default().push(m.clone());
                    }
                }
                grouped
            };
            // Snapshot the table map as owned handles: the crash sites
            // below re-enter the table map, so no guard may be held here.
            let id_to_data: HashMap<u32, Arc<TableData>> = self
                .inner
                .tables
                .read()
                .values()
                .map(|(id, data)| (*id, data.clone()))
                .collect();
            // Pre-flight: resolve every table id before touching any store,
            // so a corrupt id degrades to a clean abort instead of either a
            // panic or a partially applied transaction.
            for tid in by_table.keys() {
                if !id_to_data.contains_key(tid) {
                    self.abort(&mut txn);
                    return Err(SpannerError::Internal(format!(
                        "commit references unknown table id {tid}"
                    )));
                }
            }

            // Consistency oracle: stage the Commit event now (the mutation
            // groups are consumed by the apply loop below) and record it at
            // the durability point — right after the coordinator outcome
            // fsync when a disk is attached, so a commit that crashes inside
            // the ambiguous window still enters the model, or after the
            // volatile apply otherwise.
            let history = self.inner.history.lock().clone();
            let mut pending_commit_event = history.as_ref().map(|_| {
                let name_of: HashMap<u32, String> = self
                    .inner
                    .tables
                    .read()
                    .iter()
                    .map(|(name, (id, _))| (*id, name.to_string()))
                    .collect();
                let table_name =
                    |tid: &u32| name_of.get(tid).cloned().unwrap_or_else(|| tid.to_string());
                HistoryEvent::Commit {
                    txn: txn.id.0,
                    commit_ts,
                    writes: by_table
                        .iter()
                        .flat_map(|(tid, muts)| {
                            let t = table_name(tid);
                            muts.iter().map(move |m| {
                                (
                                    t.clone(),
                                    m.key.as_slice().to_vec(),
                                    m.value.as_ref().map(|v| v.to_vec()),
                                )
                            })
                        })
                        .collect(),
                    reads: txn
                        .observed_reads
                        .iter()
                        .map(|(tid, key, observed)| {
                            (table_name(tid), key.as_slice().to_vec(), *observed)
                        })
                        .collect(),
                }
            });

            // Phase 3a: 2PC prepare — append one redo record per participant
            // tablet, fsync, then log the coordinator outcome (the
            // durability point). Only then are mutations applied.
            let disk = self.inner.disk.lock().clone();
            if let Some(disk) = &disk {
                if self.crash_if_armed("commit-before-log") {
                    return Err(SpannerError::UnknownOutcome);
                }
                // Group each table's mutations by participant tablet.
                let mut by_participant = ParticipantMutations::new();
                for (tid, muts) in &by_table {
                    let data = &id_to_data[tid];
                    let tablets = data.tablets.lock();
                    for m in muts {
                        by_participant
                            .entry((*tid, tablets.tablet_index(&m.key)))
                            .or_default()
                            .push((m.key.clone(), m.value.clone()));
                    }
                }
                let multi = by_participant.len() > 1;
                for (i, ((tid, tablet_idx), mutations)) in by_participant.into_iter().enumerate()
                {
                    let record = RedoRecord::Prepared {
                        txn_id: txn.id.0,
                        commit_ts,
                        table: tid,
                        mutations,
                    };
                    let log = tablet_log(tid, tablet_idx);
                    let encoded = record.encode();
                    {
                        let append_span =
                            obs.as_ref().map(|o| o.tracer.span("spanner.redo.append"));
                        disk.append(&log, &encoded);
                        let c = prof::costs::redo_append(encoded.len());
                        self.inner.truetime.clock().advance(c);
                        cpu_charged += c;
                        if let Some(s) = &append_span {
                            s.attr("bytes", encoded.len());
                        }
                    }
                    // A crash between the append and its fsync dies mid
                    // log write: the record is in flight, not durable, and
                    // may reach the disk torn.
                    if self.crash_if_armed("commit-prepare-unsynced") {
                        return Err(SpannerError::UnknownOutcome);
                    }
                    let fsync_span = obs.as_ref().map(|o| o.tracer.span("spanner.redo.fsync"));
                    let c = self.charge_fsync();
                    cpu_charged += c;
                    if disk.fsync(&log).is_err() {
                        drop(fsync_span);
                        // The prepare is not durable; discard the dead
                        // record (a later commit's fsync of this log must
                        // not flush it) and abort cleanly. Earlier
                        // participants' prepares may be durable but have no
                        // outcome, so recovery discards them.
                        disk.discard_unsynced(&log);
                        if let Some(o) = &obs {
                            o.metrics.incr("spanner.redo.fsync_failures", &[], 1);
                        }
                        self.abort(&mut txn);
                        return Err(SpannerError::Unavailable("redo-log fsync failed"));
                    }
                    drop(fsync_span);
                    if let Some(o) = &obs {
                        o.metrics.incr("spanner.redo.prepares", &[], 1);
                        o.metrics.incr("spanner.redo.fsyncs", &[], 1);
                    }
                    if let Some(s) = &span {
                        s.event(format!("prepare-durable table={tid} tablet={tablet_idx}"));
                    }
                    // A crash after the first of several prepares leaves a
                    // prepared-but-undecided participant for recovery to
                    // resolve.
                    if multi && i == 0 && self.crash_if_armed("commit-partial-prepare") {
                        return Err(SpannerError::UnknownOutcome);
                    }
                }
                if self.crash_if_armed("commit-after-prepare") {
                    return Err(SpannerError::UnknownOutcome);
                }
                // The coordinator outcome record: the transaction is
                // committed iff this record is durable.
                let outcome = RedoRecord::Outcome {
                    txn_id: txn.id.0,
                    commit_ts,
                };
                let encoded = outcome.encode();
                {
                    let append_span = obs.as_ref().map(|o| o.tracer.span("spanner.redo.append"));
                    disk.append(OUTCOMES_LOG, &encoded);
                    let c = prof::costs::redo_append(encoded.len());
                    self.inner.truetime.clock().advance(c);
                    cpu_charged += c;
                    if let Some(s) = &append_span {
                        s.attr("bytes", encoded.len());
                    }
                }
                // A crash here dies mid write of the outcome record: not
                // durable, possibly torn — recovery resolves to abort.
                if self.crash_if_armed("commit-outcome-unsynced") {
                    return Err(SpannerError::UnknownOutcome);
                }
                let fsync_span = obs.as_ref().map(|o| o.tracer.span("spanner.redo.fsync"));
                let c = self.charge_fsync();
                cpu_charged += c;
                if disk.fsync(OUTCOMES_LOG).is_err() {
                    drop(fsync_span);
                    // The outcome is not durable, so the transaction aborts
                    // — but the appended record still sits in the shared
                    // log's unsynced tail, and the next successful commit's
                    // fsync would flush it, silently resurrecting this
                    // aborted transaction after a crash (its prepares are
                    // already durable). Discard the tail before aborting.
                    disk.discard_unsynced(OUTCOMES_LOG);
                    if let Some(o) = &obs {
                        o.metrics.incr("spanner.redo.fsync_failures", &[], 1);
                    }
                    self.abort(&mut txn);
                    return Err(SpannerError::Unavailable("redo-log fsync failed"));
                }
                drop(fsync_span);
                if let Some(o) = &obs {
                    o.metrics.incr("spanner.redo.outcomes", &[], 1);
                    o.metrics.incr("spanner.redo.fsyncs", &[], 1);
                }
                if let Some(s) = &span {
                    s.event("outcome-durable");
                }
                // Durability point reached: the transaction is committed
                // whatever happens next, so the oracle's model must know it.
                if let (Some(h), Some(ev)) = (&history, pending_commit_event.take()) {
                    h.record(ev);
                }
                // The ambiguous window: the commit is durable but the client
                // never hears the ack.
                if self.crash_if_armed("commit-after-outcome") {
                    return Err(SpannerError::UnknownOutcome);
                }
            }

            // Phase 3b: apply to the volatile MVCC stores.
            for (tid, muts) in by_table {
                let Some(data) = id_to_data.get(&tid) else {
                    continue; // unreachable: pre-flight validated every id
                };
                let mut tablets = data.tablets.lock();
                let mut store = data.store.write();
                let mut idxs: Vec<usize> = Vec::with_capacity(muts.len());
                for m in muts {
                    let bytes = m.key.len() + m.value.as_ref().map_or(0, |v| v.len());
                    idxs.push(tablets.record_write(&m.key, bytes, now));
                    store.apply(m.key.clone(), commit_ts, m.value.clone());
                }
                idxs.sort_unstable();
                idxs.dedup();
                participants += idxs.len();
            }
            // No durable medium: the volatile apply is the commit point.
            if let (Some(h), Some(ev)) = (&history, pending_commit_event.take()) {
                h.record(ev);
            }
        }
        participants = participants.max(1);
        // Crash after apply but before the ack: durable and applied, yet the
        // client still observes an unknown outcome.
        if self.crash_if_armed("commit-after-apply") {
            return Err(SpannerError::UnknownOutcome);
        }

        // Phase 4: commit wait (external consistency), then release locks.
        // A TrueTime uncertainty spike widens ε, stretching the wait.
        let wait_span = obs.as_ref().map(|o| o.tracer.span("spanner.commit_wait"));
        let wait_start = self.inner.truetime.clock().now();
        if self.inject(FaultKind::TtUncertaintySpike, "commit-wait") {
            let spike = self
                .fault_injector()
                .map(|inj| inj.tt_spike())
                .unwrap_or_default();
            self.inner.truetime.clock().advance(spike);
        }
        self.inner.truetime.commit_wait(commit_ts);
        let commit_wait = self.inner.truetime.clock().now().saturating_sub(wait_start);
        drop(wait_span);
        txn.closed = true;
        {
            let release_span = obs.as_ref().map(|o| o.tracer.span("spanner.lock.release"));
            self.inner.locks.release_all(txn.id);
            let c = prof::costs::LOCK_RELEASE * txn.mutations.len().max(1) as u64;
            self.inner.truetime.clock().advance(c);
            cpu_charged += c;
            if let Some(s) = &release_span {
                s.attr("cells", txn.mutations.len());
            }
        }
        self.inner.commits.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &obs {
            o.metrics.incr("spanner.commits", &[], 1);
            o.metrics.observe_duration("spanner.lock_wait_ms", &[], lock_wait);
            o.metrics.observe_duration("spanner.commit_wait_ms", &[], commit_wait);
        }
        if let Some(s) = &span {
            s.attr("participants", participants);
            s.attr("payload_bytes", payload);
            s.attr("commit_wait_ns", commit_wait.as_nanos());
        }

        Ok(CommitInfo {
            commit_ts,
            participants,
            payload_bytes: payload,
            mutation_count,
            lock_wait,
            commit_wait,
            cpu_charged,
        })
    }

    /// A timestamp at which a strong (lock-free) read sees every commit that
    /// completed before now.
    pub fn strong_read_ts(&self) -> Timestamp {
        self.inner.truetime.strong_read_timestamp()
    }

    /// Lock-free read of `key` at `ts`.
    pub fn snapshot_read(
        &self,
        table: TableName,
        key: &Key,
        ts: Timestamp,
    ) -> SpannerResult<Option<Bytes>> {
        if self.inject(FaultKind::TabletUnavailable, "snapshot-read") {
            return Err(SpannerError::Unavailable("snapshot-read: tablet unreachable"));
        }
        let (_, data) = self.table(table)?;
        let r = data
            .store
            .read()
            .read_at(key, self.serve_ts(ts))
            .map_err(|_| SpannerError::SnapshotTooOld);
        if let Ok(value) = &r {
            self.record_snapshot_read(table, key, ts, value.as_deref().map(hash_bytes));
        }
        r
    }

    /// Lock-free ordered scan of `range` at `ts`, up to `limit` rows.
    pub fn snapshot_scan(
        &self,
        table: TableName,
        range: &KeyRange,
        ts: Timestamp,
        limit: usize,
    ) -> SpannerResult<Vec<(Key, Bytes)>> {
        if self.inject(FaultKind::TabletUnavailable, "snapshot-scan") {
            return Err(SpannerError::Unavailable("snapshot-scan: tablet unreachable"));
        }
        let (_, data) = self.table(table)?;
        let r = data
            .store
            .read()
            .scan_at(range, self.serve_ts(ts), limit)
            .map_err(|_| SpannerError::SnapshotTooOld);
        if let Ok(rows) = &r {
            for (k, v) in rows {
                self.record_snapshot_read(table, k, ts, Some(hash_bytes(v)));
            }
        }
        r
    }

    /// Lock-free read of `key` at `ts`, returning the value and the commit
    /// timestamp of the version read.
    pub fn snapshot_read_versioned(
        &self,
        table: TableName,
        key: &Key,
        ts: Timestamp,
    ) -> SpannerResult<Option<(Bytes, Timestamp)>> {
        let (_, data) = self.table(table)?;
        let r = data
            .store
            .read()
            .read_at_versioned(key, self.serve_ts(ts))
            .map_err(|_| SpannerError::SnapshotTooOld);
        if let Ok(value) = &r {
            self.record_snapshot_read(table, key, ts, value.as_ref().map(|(b, _)| hash_bytes(b)));
        }
        r
    }

    /// Lock-free batched read of many keys at `ts`, returning value and
    /// commit timestamp per key (in input order; `None` for absent rows).
    /// One storage lock acquisition serves the whole page — the query
    /// executor's per-result-page document fetch (§IV-D3).
    pub fn snapshot_read_many_versioned(
        &self,
        table: TableName,
        keys: &[Key],
        ts: Timestamp,
    ) -> SpannerResult<Vec<Option<(Bytes, Timestamp)>>> {
        if self.inject(FaultKind::TabletUnavailable, "snapshot-read-many") {
            return Err(SpannerError::Unavailable(
                "snapshot-read-many: tablet unreachable",
            ));
        }
        let (_, data) = self.table(table)?;
        let r: SpannerResult<Vec<Option<(Bytes, Timestamp)>>> = {
            let store = data.store.read();
            keys.iter()
                .map(|k| {
                    store
                        .read_at_versioned(k, self.serve_ts(ts))
                        .map_err(|_| SpannerError::SnapshotTooOld)
                })
                .collect()
        };
        if let Ok(rows) = &r {
            for (k, v) in keys.iter().zip(rows) {
                self.record_snapshot_read(table, k, ts, v.as_ref().map(|(b, _)| hash_bytes(b)));
            }
        }
        r
    }

    /// Transactional read (shared lock) returning the value and its commit
    /// timestamp; sees buffered writes as having an unknown timestamp
    /// (`None` versions are not reported — buffered values return the
    /// current latest committed timestamp of zero).
    pub fn txn_read_versioned(
        &self,
        txn: &mut ReadWriteTransaction,
        table: TableName,
        key: &Key,
    ) -> SpannerResult<Option<(Bytes, Timestamp)>> {
        if txn.closed {
            return Err(SpannerError::TxnClosed(txn.id));
        }
        self.fence(txn)?;
        let (tid, data) = self.table(table)?;
        if let Some(buffered) = txn.buffered(tid, key) {
            return Ok(buffered.map(|b| (b, Timestamp::ZERO)));
        }
        if let Err(e) = self.inner.locks.acquire(txn.id, tid, key, LockMode::Shared) {
            self.abort(txn);
            return Err(e);
        }
        txn.read_keys.push((tid, key.clone()));
        let value = data.store.read().read_latest_versioned(key);
        self.observe_txn_read(txn, tid, key, value.as_ref().map(|(b, _)| hash_bytes(b)));
        Ok(value)
    }

    /// Transactional read with an *exclusive* lock returning value and
    /// commit timestamp.
    pub fn txn_read_for_update_versioned(
        &self,
        txn: &mut ReadWriteTransaction,
        table: TableName,
        key: &Key,
    ) -> SpannerResult<Option<(Bytes, Timestamp)>> {
        if txn.closed {
            return Err(SpannerError::TxnClosed(txn.id));
        }
        self.fence(txn)?;
        let (tid, data) = self.table(table)?;
        if let Some(buffered) = txn.buffered(tid, key) {
            return Ok(buffered.map(|b| (b, Timestamp::ZERO)));
        }
        if let Err(e) = self
            .inner
            .locks
            .acquire(txn.id, tid, key, LockMode::Exclusive)
        {
            self.abort(txn);
            return Err(e);
        }
        txn.read_keys.push((tid, key.clone()));
        let value = data.store.read().read_latest_versioned(key);
        self.observe_txn_read(txn, tid, key, value.as_ref().map(|(b, _)| hash_bytes(b)));
        Ok(value)
    }

    /// Lock-free ordered scan of `range` at `ts` in reverse key order, up to
    /// `limit` rows.
    pub fn snapshot_scan_rev(
        &self,
        table: TableName,
        range: &KeyRange,
        ts: Timestamp,
        limit: usize,
    ) -> SpannerResult<Vec<(Key, Bytes)>> {
        let (_, data) = self.table(table)?;
        let r = data
            .store
            .read()
            .scan_rev_at(range, self.serve_ts(ts), limit)
            .map_err(|_| SpannerError::SnapshotTooOld);
        if let Ok(rows) = &r {
            for (k, v) in rows {
                self.record_snapshot_read(table, k, ts, Some(hash_bytes(v)));
            }
        }
        r
    }

    /// Lock-free ordered scan returning `(key, value, version timestamp)`
    /// triples at `ts`, optionally in reverse key order.
    pub fn snapshot_scan_versioned(
        &self,
        table: TableName,
        range: &KeyRange,
        ts: Timestamp,
        limit: usize,
        reverse: bool,
    ) -> SpannerResult<Vec<(Key, Bytes, Timestamp)>> {
        let (_, data) = self.table(table)?;
        let r = data
            .store
            .read()
            .scan_at_versioned(range, self.serve_ts(ts), limit, reverse)
            .map_err(|_| SpannerError::SnapshotTooOld);
        if let Ok(rows) = &r {
            for (k, v, _) in rows {
                self.record_snapshot_read(table, k, ts, Some(hash_bytes(v)));
            }
        }
        r
    }

    /// Count live rows in `range` at `ts`.
    pub fn snapshot_count(
        &self,
        table: TableName,
        range: &KeyRange,
        ts: Timestamp,
    ) -> SpannerResult<usize> {
        let (_, data) = self.table(table)?;
        let r = data
            .store
            .read()
            .count_at(range, ts)
            .map_err(|_| SpannerError::SnapshotTooOld);
        r
    }

    /// Run maintenance: split overloaded tablets at their median keys and
    /// garbage-collect versions older than `gc_before`.
    pub fn maintain(&self, gc_before: Timestamp) {
        let now = self.inner.truetime.clock().now();
        let obs = self.obs();
        let tables: Vec<Arc<TableData>> = self
            .inner
            .tables
            .read()
            .values()
            .map(|(_, d)| d.clone())
            .collect();
        let (mut splits, mut merges) = (0u64, 0u64);
        for data in tables {
            let mut tablets = data.tablets.lock();
            for idx in tablets.overloaded() {
                let median = {
                    let store = data.store.read();
                    store.median_key_in(&tablets.tablets()[idx].range)
                };
                if let Some(m) = median {
                    if tablets.split_at(idx, m, now) {
                        splits += 1;
                    }
                }
            }
            // Merge tablets that have gone cold (splits reverse under
            // sustained low load, §IV-D1).
            merges += tablets.merge_cold(now) as u64;
            data.store.write().gc(gc_before);
        }
        if let Some(o) = &obs {
            if splits > 0 {
                o.metrics.incr("spanner.tablet.splits", &[], splits);
            }
            if merges > 0 {
                o.metrics.incr("spanner.tablet.merges", &[], merges);
            }
            if splits > 0 || merges > 0 {
                let s = o.tracer.span("spanner.maintain");
                s.attr("splits", splits);
                s.attr("merges", merges);
            }
        }
    }

    /// Pre-split a table at explicit boundaries (for experiments that need
    /// multi-tablet commits from the start, §V-B2).
    pub fn pre_split(&self, table: TableName, boundaries: Vec<Key>) -> SpannerResult<()> {
        let (_, data) = self.table(table)?;
        let now = self.inner.truetime.clock().now();
        data.tablets.lock().pre_split(boundaries, now);
        Ok(())
    }

    /// Number of tablets currently backing `table`.
    pub fn tablet_count(&self, table: TableName) -> SpannerResult<usize> {
        let (_, data) = self.table(table)?;
        let n = data.tablets.lock().len();
        Ok(n)
    }

    /// How many distinct tablets the given keys of `table` span — the
    /// participant count a commit over those keys would pay.
    pub fn participants_for(&self, table: TableName, keys: &[Key]) -> SpannerResult<usize> {
        let (_, data) = self.table(table)?;
        let n = data.tablets.lock().participants(keys.iter());
        Ok(n)
    }

    /// Live key count of a table.
    pub fn live_keys(&self, table: TableName) -> SpannerResult<usize> {
        let (_, data) = self.table(table)?;
        let n = data.store.read().live_keys();
        Ok(n)
    }

    /// Approximate live bytes of a table.
    pub fn live_bytes(&self, table: TableName) -> SpannerResult<usize> {
        let (_, data) = self.table(table)?;
        let n = data.store.read().live_bytes();
        Ok(n)
    }

    /// Total committed transactions.
    pub fn commit_count(&self) -> u64 {
        self.inner.commits.load(Ordering::Relaxed)
    }

    /// Total aborted transactions.
    pub fn abort_count(&self) -> u64 {
        self.inner.aborts.load(Ordering::Relaxed)
    }

    /// Inject a failure for the next commit (testing hook; also used by the
    /// failure-injection integration tests).
    pub fn inject_commit_failure(&self, err: SpannerError) {
        self.inner.failures.fail_commits.lock().push(err);
    }
}

impl std::fmt::Debug for SpannerDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SpannerDatabase(tables={}, commits={})",
            self.inner.tables.read().len(),
            self.commit_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Duration;

    const T: TableName = "Entities";

    fn db() -> SpannerDatabase {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        let db = SpannerDatabase::new(clock);
        db.create_table(T);
        db
    }

    fn bytes(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn basic_commit_and_snapshot_read() {
        let db = db();
        let mut txn = db.begin();
        db.txn_put(&mut txn, T, Key::from("k"), bytes("v")).unwrap();
        let info = db.commit(txn, Timestamp::ZERO, Timestamp::MAX).unwrap();
        assert_eq!(info.participants, 1);
        assert_eq!(info.mutation_count, 1);
        let ts = db.strong_read_ts();
        assert!(ts >= info.commit_ts);
        assert_eq!(
            db.snapshot_read(T, &Key::from("k"), ts).unwrap(),
            Some(bytes("v"))
        );
    }

    #[test]
    fn read_your_writes_within_txn() {
        let db = db();
        let mut txn = db.begin();
        db.txn_put(&mut txn, T, Key::from("k"), bytes("v")).unwrap();
        assert_eq!(
            db.txn_read(&mut txn, T, &Key::from("k")).unwrap(),
            Some(bytes("v"))
        );
        db.txn_delete(&mut txn, T, Key::from("k")).unwrap();
        assert_eq!(db.txn_read(&mut txn, T, &Key::from("k")).unwrap(), None);
        db.abort(&mut txn);
    }

    #[test]
    fn write_write_conflict_fails_fast() {
        let db = db();
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        db.txn_read_for_update(&mut t1, T, &Key::from("k")).unwrap();
        let err = db
            .txn_read_for_update(&mut t2, T, &Key::from("k"))
            .unwrap_err();
        assert!(matches!(err, SpannerError::LockConflict { .. }));
        // t2 was auto-aborted; t1 can still commit.
        db.txn_put(&mut t1, T, Key::from("k"), bytes("v")).unwrap();
        db.commit(t1, Timestamp::ZERO, Timestamp::MAX).unwrap();
        assert_eq!(db.abort_count(), 1);
        assert_eq!(db.commit_count(), 1);
    }

    #[test]
    fn readers_do_not_block_snapshot_reads() {
        let db = db();
        let mut t1 = db.begin();
        db.txn_put(&mut t1, T, Key::from("k"), bytes("v1")).unwrap();
        db.commit(t1, Timestamp::ZERO, Timestamp::MAX).unwrap();
        let ts = db.strong_read_ts();

        // A transaction holds an exclusive lock...
        let mut t2 = db.begin();
        db.txn_read_for_update(&mut t2, T, &Key::from("k")).unwrap();
        // ...but timestamp reads sail through without blocking.
        assert_eq!(
            db.snapshot_read(T, &Key::from("k"), ts).unwrap(),
            Some(bytes("v1"))
        );
        db.abort(&mut t2);
    }

    #[test]
    fn snapshot_scan_is_consistent_at_timestamp() {
        let db = db();
        for (k, v) in [("a", "1"), ("b", "2")] {
            let mut t = db.begin();
            db.txn_put(&mut t, T, Key::from(k), bytes(v)).unwrap();
            db.commit(t, Timestamp::ZERO, Timestamp::MAX).unwrap();
        }
        let ts = db.strong_read_ts();
        let mut t = db.begin();
        db.txn_put(&mut t, T, Key::from("c"), bytes("3")).unwrap();
        db.commit(t, Timestamp::ZERO, Timestamp::MAX).unwrap();
        let rows = db.snapshot_scan(T, &KeyRange::all(), ts, 100).unwrap();
        assert_eq!(
            rows.len(),
            2,
            "the later commit is invisible at the snapshot"
        );
    }

    #[test]
    fn commit_window_expired() {
        let db = db();
        let mut txn = db.begin();
        db.txn_put(&mut txn, T, Key::from("k"), bytes("v")).unwrap();
        // A max timestamp in the past cannot be honored.
        let err = db
            .commit(txn, Timestamp::ZERO, Timestamp::from_nanos(1))
            .unwrap_err();
        assert_eq!(err, SpannerError::CommitWindowExpired);
    }

    #[test]
    fn commit_respects_min_timestamp() {
        let db = db();
        let mut txn = db.begin();
        db.txn_put(&mut txn, T, Key::from("k"), bytes("v")).unwrap();
        let min = db.truetime().clock().now() + Duration::from_secs(5);
        let info = db.commit(txn, min, Timestamp::MAX).unwrap();
        assert!(info.commit_ts >= min);
    }

    #[test]
    fn injected_failure_aborts() {
        let db = db();
        db.inject_commit_failure(SpannerError::UnknownOutcome);
        let mut txn = db.begin();
        db.txn_put(&mut txn, T, Key::from("k"), bytes("v")).unwrap();
        assert_eq!(
            db.commit(txn, Timestamp::ZERO, Timestamp::MAX).unwrap_err(),
            SpannerError::UnknownOutcome
        );
        // The write is not visible.
        assert_eq!(
            db.snapshot_read(T, &Key::from("k"), db.strong_read_ts())
                .unwrap(),
            None
        );
    }

    #[test]
    fn multi_table_commit_is_atomic() {
        let db = db();
        db.create_table("IndexEntries");
        let mut txn = db.begin();
        db.txn_put(&mut txn, T, Key::from("doc"), bytes("d"))
            .unwrap();
        db.txn_put(&mut txn, "IndexEntries", Key::from("idx"), bytes(""))
            .unwrap();
        let info = db.commit(txn, Timestamp::ZERO, Timestamp::MAX).unwrap();
        let ts = db.strong_read_ts();
        assert_eq!(
            db.snapshot_read(T, &Key::from("doc"), ts).unwrap(),
            Some(bytes("d"))
        );
        assert_eq!(
            db.snapshot_read("IndexEntries", &Key::from("idx"), ts)
                .unwrap(),
            Some(bytes(""))
        );
        // Both rows currently live in single tablets of separate tables.
        assert_eq!(info.participants, 2);
    }

    #[test]
    fn pre_split_raises_participant_count() {
        let db = db();
        db.pre_split(T, vec![Key::from("m")]).unwrap();
        assert_eq!(db.tablet_count(T).unwrap(), 2);
        let keys = vec![Key::from("a"), Key::from("z")];
        assert_eq!(db.participants_for(T, &keys).unwrap(), 2);
        let mut txn = db.begin();
        db.txn_put(&mut txn, T, Key::from("a"), bytes("1")).unwrap();
        db.txn_put(&mut txn, T, Key::from("z"), bytes("2")).unwrap();
        let info = db.commit(txn, Timestamp::ZERO, Timestamp::MAX).unwrap();
        assert_eq!(info.participants, 2);
    }

    #[test]
    fn maintenance_splits_hot_tablet() {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        let db = SpannerDatabase::with_options(
            clock,
            SpannerOptions {
                split_policy: SplitPolicy {
                    split_write_threshold: 50,
                    ..SplitPolicy::default()
                },
            },
        );
        db.create_table(T);
        for i in 0..100 {
            let mut t = db.begin();
            db.txn_put(
                &mut t,
                T,
                Key::from(format!("key{i:04}").as_str()),
                bytes("v"),
            )
            .unwrap();
            db.commit(t, Timestamp::ZERO, Timestamp::MAX).unwrap();
        }
        assert_eq!(db.tablet_count(T).unwrap(), 1);
        db.maintain(Timestamp::ZERO);
        assert!(db.tablet_count(T).unwrap() >= 2, "hot tablet should split");
    }

    #[test]
    fn commit_after_close_fails() {
        let db = db();
        let mut txn = db.begin();
        db.txn_put(&mut txn, T, Key::from("k"), bytes("v")).unwrap();
        db.abort(&mut txn);
        let id = txn.id();
        assert_eq!(
            db.commit(txn, Timestamp::ZERO, Timestamp::MAX).unwrap_err(),
            SpannerError::TxnClosed(id)
        );
    }

    #[test]
    fn directories_are_disjoint_prefixes() {
        let db = db();
        let d1 = db.allocate_directory();
        let d2 = db.allocate_directory();
        assert_ne!(d1, d2);
        let k1 = d1.key(b"doc");
        assert!(d1.range().contains(&k1));
        assert!(!d2.range().contains(&k1));
        assert!(!d1.range().intersects(&d2.range()));
    }

    #[test]
    fn last_write_wins_within_one_txn() {
        let db = db();
        let mut txn = db.begin();
        db.txn_put(&mut txn, T, Key::from("k"), bytes("v1"))
            .unwrap();
        db.txn_put(&mut txn, T, Key::from("k"), bytes("v2"))
            .unwrap();
        db.commit(txn, Timestamp::ZERO, Timestamp::MAX).unwrap();
        assert_eq!(
            db.snapshot_read(T, &Key::from("k"), db.strong_read_ts())
                .unwrap(),
            Some(bytes("v2"))
        );
    }

    #[test]
    fn txn_scan_locks_scanned_rows() {
        let db = db();
        let mut t0 = db.begin();
        db.txn_put(&mut t0, T, Key::from("a"), bytes("1")).unwrap();
        db.commit(t0, Timestamp::ZERO, Timestamp::MAX).unwrap();

        let mut reader = db.begin();
        let rows = db.txn_scan(&mut reader, T, &KeyRange::all(), 100).unwrap();
        assert_eq!(rows.len(), 1);
        // A writer now conflicts on the scanned row.
        let mut writer = db.begin();
        assert!(db
            .txn_read_for_update(&mut writer, T, &Key::from("a"))
            .is_err());
        db.abort(&mut reader);
    }

    #[test]
    fn acked_commits_survive_crash_and_recover() {
        let db = db();
        let disk = SimDisk::new();
        db.attach_durability(disk.clone());
        for (k, v) in [("a", "1"), ("b", "2")] {
            let mut t = db.begin();
            db.txn_put(&mut t, T, Key::from(k), bytes(v)).unwrap();
            db.commit(t, Timestamp::ZERO, Timestamp::MAX).unwrap();
        }
        db.crash();
        assert!(db.crashed());
        assert!(matches!(
            db.snapshot_read(T, &Key::from("a"), Timestamp::MAX),
            Err(SpannerError::Unavailable(_))
        ));
        let report = db.recover();
        assert_eq!(report.replayed_txns, 2);
        assert_eq!(report.replayed_mutations, 2);
        let ts = db.strong_read_ts();
        assert_eq!(
            db.snapshot_read(T, &Key::from("a"), ts).unwrap(),
            Some(bytes("1"))
        );
        assert_eq!(
            db.snapshot_read(T, &Key::from("b"), ts).unwrap(),
            Some(bytes("2"))
        );
    }

    #[test]
    fn crash_without_disk_loses_everything() {
        let db = db();
        let mut t = db.begin();
        db.txn_put(&mut t, T, Key::from("k"), bytes("v")).unwrap();
        db.commit(t, Timestamp::ZERO, Timestamp::MAX).unwrap();
        db.crash();
        let report = db.recover();
        assert_eq!(report.replayed_txns, 0);
        assert_eq!(
            db.snapshot_read(T, &Key::from("k"), db.strong_read_ts())
                .unwrap(),
            None
        );
    }

    #[test]
    fn armed_crash_after_outcome_is_durable_but_unacked() {
        let db = db();
        let disk = SimDisk::new();
        db.attach_durability(disk.clone());
        let cp = CrashPoints::new();
        db.set_crash_points(Some(cp.clone()));
        cp.arm("commit-after-outcome", 0);
        let mut t = db.begin();
        db.txn_put(&mut t, T, Key::from("k"), bytes("v")).unwrap();
        assert_eq!(
            db.commit(t, Timestamp::ZERO, Timestamp::MAX).unwrap_err(),
            SpannerError::UnknownOutcome
        );
        assert_eq!(cp.fired(), Some("commit-after-outcome"));
        let report = db.recover();
        assert_eq!(report.replayed_txns, 1, "outcome was durable: replay wins");
        assert_eq!(
            db.snapshot_read(T, &Key::from("k"), db.strong_read_ts())
                .unwrap(),
            Some(bytes("v"))
        );
    }

    #[test]
    fn armed_crash_after_prepare_discards_undecided_txn() {
        let db = db();
        let disk = SimDisk::new();
        db.attach_durability(disk.clone());
        let cp = CrashPoints::new();
        db.set_crash_points(Some(cp.clone()));
        cp.arm("commit-after-prepare", 0);
        let mut t = db.begin();
        db.txn_put(&mut t, T, Key::from("k"), bytes("v")).unwrap();
        assert_eq!(
            db.commit(t, Timestamp::ZERO, Timestamp::MAX).unwrap_err(),
            SpannerError::UnknownOutcome
        );
        let report = db.recover();
        assert_eq!(report.replayed_txns, 0);
        assert_eq!(report.discarded_prepares, 1, "no outcome: prepare dropped");
        assert_eq!(
            db.snapshot_read(T, &Key::from("k"), db.strong_read_ts())
                .unwrap(),
            None
        );
    }

    #[test]
    fn multi_tablet_crash_between_prepares_stays_atomic() {
        let db = db();
        let disk = SimDisk::new();
        db.attach_durability(disk.clone());
        db.pre_split(T, vec![Key::from("m")]).unwrap();
        let cp = CrashPoints::new();
        db.set_crash_points(Some(cp.clone()));
        cp.arm("commit-partial-prepare", 0);
        let mut t = db.begin();
        db.txn_put(&mut t, T, Key::from("a"), bytes("1")).unwrap();
        db.txn_put(&mut t, T, Key::from("z"), bytes("2")).unwrap();
        assert_eq!(
            db.commit(t, Timestamp::ZERO, Timestamp::MAX).unwrap_err(),
            SpannerError::UnknownOutcome
        );
        let report = db.recover();
        assert_eq!(report.replayed_txns, 0, "undecided 2PC resolves to abort");
        let ts = db.strong_read_ts();
        assert_eq!(db.snapshot_read(T, &Key::from("a"), ts).unwrap(), None);
        assert_eq!(db.snapshot_read(T, &Key::from("z"), ts).unwrap(), None);
    }

    #[test]
    fn stale_txn_is_fenced_after_recovery() {
        let db = db();
        db.attach_durability(SimDisk::new());
        let mut t = db.begin();
        db.txn_put(&mut t, T, Key::from("k"), bytes("v")).unwrap();
        db.crash();
        db.recover();
        assert_eq!(
            db.commit(t, Timestamp::ZERO, Timestamp::MAX).unwrap_err(),
            SpannerError::TxnClosed(TxnId(1))
        );
        // Fresh transactions proceed normally.
        let mut t2 = db.begin();
        db.txn_put(&mut t2, T, Key::from("k"), bytes("v2")).unwrap();
        db.commit(t2, Timestamp::ZERO, Timestamp::MAX).unwrap();
    }

    #[test]
    fn fsync_failure_aborts_commit_cleanly() {
        use simkit::fault::{FaultPlan, FaultRule};

        let db = db();
        let disk = SimDisk::new();
        let plan = FaultPlan::new(3).rule(FaultRule::probabilistic(FaultKind::FsyncFail, 1.0));
        disk.set_fault_injector(Some(FaultInjector::new(
            db.truetime().clock().clone(),
            plan,
        )));
        db.attach_durability(disk.clone());
        let mut t = db.begin();
        db.txn_put(&mut t, T, Key::from("k"), bytes("v")).unwrap();
        assert_eq!(
            db.commit(t, Timestamp::ZERO, Timestamp::MAX).unwrap_err(),
            SpannerError::Unavailable("redo-log fsync failed")
        );
        // Nothing applied, no lock left behind, and a retry with a fresh
        // injector-free disk state succeeds.
        assert_eq!(
            db.snapshot_read(T, &Key::from("k"), db.strong_read_ts())
                .unwrap(),
            None
        );
        disk.set_fault_injector(None);
        let mut t = db.begin();
        db.txn_put(&mut t, T, Key::from("k"), bytes("v")).unwrap();
        db.commit(t, Timestamp::ZERO, Timestamp::MAX).unwrap();
    }

    #[test]
    fn failed_outcome_fsync_cannot_resurrect_aborted_txn() {
        use simkit::fault::{FaultPlan, FaultRule};
        use simkit::SimRng;

        let db = db();
        let disk = SimDisk::new();
        // A single-participant commit consults FsyncFail twice: the prepare
        // fsync, then the outcome fsync. Find a seed whose first draw lets
        // the prepare through and whose second fails the outcome, so the
        // prepare is durable but the outcome append is left unsynced.
        let p = 0.5;
        let seed = (0u64..)
            .find(|&s| {
                let mut r = SimRng::new(s);
                r.next_f64() >= p && r.next_f64() < p
            })
            .unwrap();
        let plan = FaultPlan::new(seed).rule(FaultRule::probabilistic(FaultKind::FsyncFail, p));
        disk.set_fault_injector(Some(FaultInjector::new(
            db.truetime().clock().clone(),
            plan,
        )));
        db.attach_durability(disk.clone());

        let mut t = db.begin();
        db.txn_put(&mut t, T, Key::from("poison"), bytes("v1")).unwrap();
        assert_eq!(
            db.commit(t, Timestamp::ZERO, Timestamp::MAX).unwrap_err(),
            SpannerError::Unavailable("redo-log fsync failed")
        );

        // A later commit fsyncs the shared outcomes log successfully. It
        // must not flush the aborted transaction's stale outcome record.
        disk.set_fault_injector(None);
        let mut t = db.begin();
        db.txn_put(&mut t, T, Key::from("other"), bytes("v2")).unwrap();
        db.commit(t, Timestamp::ZERO, Timestamp::MAX).unwrap();

        db.crash();
        db.recover();
        let ts = db.strong_read_ts();
        assert_eq!(
            db.snapshot_read(T, &Key::from("poison"), ts).unwrap(),
            None,
            "aborted txn must not become durable via a later commit's fsync"
        );
        assert_eq!(
            db.snapshot_read(T, &Key::from("other"), ts).unwrap(),
            Some(bytes("v2"))
        );
    }

    #[test]
    fn chaos_injector_fails_commits_and_locks() {
        use simkit::fault::{FaultPlan, FaultRule};

        let db = db();
        let clock = db.truetime().clock().clone();
        let plan = FaultPlan::new(5)
            .rule(FaultRule::probabilistic(FaultKind::TabletUnavailable, 1.0))
            .rule(FaultRule::probabilistic(FaultKind::LockTimeout, 1.0));
        db.set_fault_injector(Some(FaultInjector::new(clock, plan)));

        let mut txn = db.begin();
        assert_eq!(
            db.txn_read(&mut txn, T, &Key::from("k")).unwrap_err(),
            SpannerError::Unavailable("txn-read: tablet unreachable")
        );
        let mut txn = db.begin();
        db.txn_put(&mut txn, T, Key::from("k"), bytes("v")).unwrap();
        assert_eq!(
            db.commit(txn, Timestamp::ZERO, Timestamp::MAX).unwrap_err(),
            SpannerError::Unavailable("commit: tablet unreachable")
        );
        assert!(db
            .snapshot_read(T, &Key::from("k"), db.strong_read_ts())
            .is_err());

        // Clearing the injector restores normal behaviour.
        db.set_fault_injector(None);
        let mut txn = db.begin();
        db.txn_put(&mut txn, T, Key::from("k"), bytes("v")).unwrap();
        db.commit(txn, Timestamp::ZERO, Timestamp::MAX).unwrap();
    }
}
