//! Tablets: key-range shards with load-based splitting.
//!
//! Spanner automatically splits and merges rows into tablets holding
//! consecutive key ranges, which is what lets Firestore "scale to arbitrary
//! read and write loads" (paper §IV-D1). We track tablets as metadata over
//! the shared MVCC store: splitting moves a boundary, it does not move data.
//! What tablets *do* affect:
//!
//! * the participant count of a commit (multi-tablet commits pay 2PC
//!   coordination — the Fig 10 field-count experiment),
//! * hotspot detection: a monotonically increasing key (e.g. an indexed
//!   timestamp field, §III-B) keeps hammering the last tablet, which is
//!   "inherently difficult to split" (§IV-D2),
//! * load statistics driving split decisions.

use crate::key::{Key, KeyRange};
use simkit::{Duration, Timestamp};

/// Configuration for the load-based split policy.
#[derive(Clone, Copy, Debug)]
pub struct SplitPolicy {
    /// Writes within the decay window that trigger a split attempt.
    pub split_write_threshold: u64,
    /// Live bytes in one tablet that trigger a split attempt.
    pub split_size_threshold: usize,
    /// Sliding window over which write load is measured.
    pub window: Duration,
    /// Upper bound on tablets per table (a laptop stand-in for "thousands of
    /// servers").
    pub max_tablets: usize,
}

impl Default for SplitPolicy {
    fn default() -> Self {
        SplitPolicy {
            split_write_threshold: 500,
            split_size_threshold: 64 << 20, // 64 MiB
            window: Duration::from_secs(10),
            max_tablets: 4096,
        }
    }
}

/// Metadata for one tablet.
#[derive(Clone, Debug)]
pub struct Tablet {
    /// The key range this tablet owns.
    pub range: KeyRange,
    /// Writes observed in the current window.
    pub window_writes: u64,
    /// Start of the current measurement window.
    pub window_start: Timestamp,
    /// Approximate live bytes in the tablet.
    pub approx_bytes: usize,
}

impl Tablet {
    fn new(range: KeyRange, now: Timestamp) -> Self {
        Tablet {
            range,
            window_writes: 0,
            window_start: now,
            approx_bytes: 0,
        }
    }
}

/// The tablet map of one table: an ordered partition of the key space.
#[derive(Debug)]
pub struct TabletMap {
    tablets: Vec<Tablet>,
    policy: SplitPolicy,
    splits_performed: u64,
}

impl TabletMap {
    /// A single tablet covering everything.
    pub fn new(policy: SplitPolicy) -> Self {
        TabletMap {
            tablets: vec![Tablet::new(KeyRange::all(), Timestamp::ZERO)],
            policy,
            splits_performed: 0,
        }
    }

    /// Number of tablets.
    pub fn len(&self) -> usize {
        self.tablets.len()
    }

    /// Whether the map is in its initial single-tablet state.
    pub fn is_empty(&self) -> bool {
        false // a tablet map always covers the key space
    }

    /// Total splits performed since creation.
    pub fn splits_performed(&self) -> u64 {
        self.splits_performed
    }

    /// Index of the tablet owning `key`.
    pub fn tablet_index(&self, key: &Key) -> usize {
        // Tablets are sorted by range start; find the last tablet whose
        // start is <= key.
        match self.tablets.binary_search_by(|t| t.range.start.cmp(key)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// The distinct tablets touched by `keys` — the participant groups of a
    /// commit.
    pub fn participants<'a>(&self, keys: impl Iterator<Item = &'a Key>) -> usize {
        let mut idxs: Vec<usize> = keys.map(|k| self.tablet_index(k)).collect();
        idxs.sort_unstable();
        idxs.dedup();
        idxs.len().max(1)
    }

    /// Record a write of `bytes` to `key` at time `now`; returns the tablet
    /// index written.
    pub fn record_write(&mut self, key: &Key, bytes: usize, now: Timestamp) -> usize {
        let policy_window = self.policy.window;
        let i = self.tablet_index(key);
        let t = &mut self.tablets[i];
        if now.saturating_sub(t.window_start) > policy_window {
            t.window_writes = 0;
            t.window_start = now;
        }
        t.window_writes += 1;
        t.approx_bytes += bytes;
        i
    }

    /// Tablets exceeding a load or size threshold that want splitting.
    /// Returns their indexes, hottest first.
    pub fn overloaded(&self) -> Vec<usize> {
        if self.tablets.len() >= self.policy.max_tablets {
            return Vec::new();
        }
        let mut hot: Vec<usize> = (0..self.tablets.len())
            .filter(|&i| {
                let t = &self.tablets[i];
                t.window_writes >= self.policy.split_write_threshold
                    || t.approx_bytes >= self.policy.split_size_threshold
            })
            .collect();
        hot.sort_by_key(|&i| std::cmp::Reverse(self.tablets[i].window_writes));
        hot
    }

    /// Split tablet `index` at `split_key` (typically the median live key,
    /// supplied by the storage layer). Returns `false` when the split key
    /// does not fall strictly inside the tablet.
    pub fn split_at(&mut self, index: usize, split_key: Key, now: Timestamp) -> bool {
        let t = &self.tablets[index];
        if split_key <= t.range.start || !t.range.contains(&split_key) {
            return false;
        }
        let right_range = KeyRange::new(split_key.clone(), t.range.end.clone());
        let mut right = Tablet::new(right_range, now);
        right.approx_bytes = t.approx_bytes / 2;
        let left = &mut self.tablets[index];
        left.range.end = Some(split_key);
        left.approx_bytes /= 2;
        left.window_writes = 0;
        left.window_start = now;
        self.tablets.insert(index + 1, right);
        self.splits_performed += 1;
        true
    }

    /// Pre-split the key space into `n` tablets at the given boundary keys
    /// (sorted, distinct). Used by experiments that start from a loaded
    /// database "to ensure that commits spanned multiple tablets" (§V-B2).
    pub fn pre_split(&mut self, boundaries: Vec<Key>, now: Timestamp) {
        for b in boundaries {
            let i = self.tablet_index(&b);
            self.split_at(i, b, now);
        }
    }

    /// All tablet metadata, in key order.
    pub fn tablets(&self) -> &[Tablet] {
        &self.tablets
    }

    /// Merge cold adjacent tablets ("automatic load-based splitting and
    /// merging", §IV-D1): two neighbours merge when both are idle in the
    /// current window and small. Returns the number of merges performed.
    pub fn merge_cold(&mut self, now: Timestamp) -> usize {
        let mut merges = 0;
        let mut i = 0;
        while i + 1 < self.tablets.len() {
            let window = self.policy.window;
            // Cold = no write activity for a full window AND small: a
            // freshly split tablet (window_start = now) is never merged
            // right back.
            let cold = |t: &Tablet| {
                now.saturating_sub(t.window_start) > window
                    && t.approx_bytes < self.policy.split_size_threshold / 8
            };
            if cold(&self.tablets[i]) && cold(&self.tablets[i + 1]) {
                let right = self.tablets.remove(i + 1);
                let left = &mut self.tablets[i];
                left.range.end = right.range.end;
                left.approx_bytes += right.approx_bytes;
                left.window_writes += right.window_writes;
                merges += 1;
                // Do not merge the same survivor again this pass: keep the
                // fleet from collapsing to one tablet in a single sweep.
                i += 1;
            } else {
                i += 1;
            }
        }
        merges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> TabletMap {
        TabletMap::new(SplitPolicy::default())
    }

    #[test]
    fn single_tablet_owns_everything() {
        let m = map();
        assert_eq!(m.len(), 1);
        assert_eq!(m.tablet_index(&Key::from("anything")), 0);
        assert_eq!(m.participants([Key::from("a"), Key::from("z")].iter()), 1);
    }

    #[test]
    fn split_partitions_ownership() {
        let mut m = map();
        assert!(m.split_at(0, Key::from("m"), Timestamp::ZERO));
        assert_eq!(m.len(), 2);
        assert_eq!(m.tablet_index(&Key::from("a")), 0);
        assert_eq!(m.tablet_index(&Key::from("m")), 1);
        assert_eq!(m.tablet_index(&Key::from("z")), 1);
        assert_eq!(m.participants([Key::from("a"), Key::from("z")].iter()), 2);
        assert_eq!(m.splits_performed(), 1);
    }

    #[test]
    fn split_rejects_out_of_range_key() {
        let mut m = map();
        m.split_at(0, Key::from("m"), Timestamp::ZERO);
        // Splitting the left tablet at a key it doesn't own fails.
        assert!(!m.split_at(0, Key::from("z"), Timestamp::ZERO));
        // Splitting at the range start fails (would create an empty tablet).
        assert!(!m.split_at(1, Key::from("m"), Timestamp::ZERO));
    }

    #[test]
    fn pre_split_creates_sorted_partition() {
        let mut m = map();
        m.pre_split(
            vec![Key::from("g"), Key::from("p"), Key::from("w")],
            Timestamp::ZERO,
        );
        assert_eq!(m.len(), 4);
        assert_eq!(m.tablet_index(&Key::from("a")), 0);
        assert_eq!(m.tablet_index(&Key::from("h")), 1);
        assert_eq!(m.tablet_index(&Key::from("q")), 2);
        assert_eq!(m.tablet_index(&Key::from("x")), 3);
    }

    #[test]
    fn load_tracking_flags_hot_tablets() {
        let mut m = TabletMap::new(SplitPolicy {
            split_write_threshold: 10,
            ..SplitPolicy::default()
        });
        for i in 0..12 {
            m.record_write(
                &Key::from(format!("k{i}").as_str()),
                100,
                Timestamp::from_secs(1),
            );
        }
        assert_eq!(m.overloaded(), vec![0]);
    }

    #[test]
    fn window_decay_resets_load() {
        let mut m = TabletMap::new(SplitPolicy {
            split_write_threshold: 10,
            window: Duration::from_secs(1),
            ..SplitPolicy::default()
        });
        for _ in 0..12 {
            m.record_write(&Key::from("k"), 1, Timestamp::from_secs(1));
        }
        assert!(!m.overloaded().is_empty());
        // One write far in the future resets the window.
        m.record_write(&Key::from("k"), 1, Timestamp::from_secs(100));
        assert!(m.overloaded().is_empty());
    }

    #[test]
    fn max_tablets_stops_splitting() {
        let mut m = TabletMap::new(SplitPolicy {
            split_write_threshold: 1,
            max_tablets: 2,
            ..SplitPolicy::default()
        });
        m.split_at(0, Key::from("m"), Timestamp::ZERO);
        for _ in 0..10 {
            m.record_write(&Key::from("a"), 1, Timestamp::from_secs(1));
        }
        assert!(
            m.overloaded().is_empty(),
            "at max_tablets no split candidates are offered"
        );
    }

    #[test]
    fn cold_neighbours_merge() {
        let mut m = map();
        m.pre_split(
            vec![Key::from("g"), Key::from("p"), Key::from("w")],
            Timestamp::ZERO,
        );
        assert_eq!(m.len(), 4);
        // Everything idle: one pass merges disjoint pairs.
        let merges = m.merge_cold(Timestamp::from_secs(100));
        assert_eq!(merges, 2);
        assert_eq!(m.len(), 2);
        // Ownership is still a full partition.
        assert_eq!(m.tablet_index(&Key::from("a")), 0);
        assert_eq!(m.tablet_index(&Key::from("z")), 1);
    }

    #[test]
    fn hot_tablets_do_not_merge() {
        let mut m = TabletMap::new(SplitPolicy {
            split_write_threshold: 8,
            ..SplitPolicy::default()
        });
        m.pre_split(vec![Key::from("m")], Timestamp::ZERO);
        let now = Timestamp::from_secs(1);
        for _ in 0..10 {
            m.record_write(&Key::from("a"), 100, now);
            m.record_write(&Key::from("z"), 100, now);
        }
        assert_eq!(m.merge_cold(now), 0, "busy tablets stay split");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn sequential_keys_keep_hitting_last_tablet() {
        // The paper's hotspot: an ever-increasing key (e.g. creation
        // timestamp index) always lands in the final tablet.
        let mut m = map();
        m.pre_split(vec![Key::from("5")], Timestamp::ZERO);
        for i in 0..100 {
            let k = Key::from(format!("9-{i:04}").as_str());
            let idx = m.record_write(&k, 10, Timestamp::from_secs(1));
            assert_eq!(idx, m.len() - 1);
        }
    }
}
