//! Randomized history-generator workload for the consistency oracle.
//!
//! Drives the full stack — Spanner with durable redo logs, the Firestore
//! API, the Real-time Cache with several listeners, and an offline-capable
//! client — through a seeded mix of commits, snapshot and transactional
//! reads, listens, chaos windows, and crash–recover cycles, with a
//! [`HistoryRecorder`] attached to every layer. The recorded history feeds
//! `firestore_core::checker::check_history`, which replays it against a
//! model store and verifies strict serializability, listener-snapshot
//! consistency, and exactly-once application of acked client mutations.
//!
//! The world is built separately from the run so tests can flip oracle
//! mutation toggles (serve stale reads, drop changelog entries, reorder
//! delivery, ignore the dedup ledger) before generating a history, then
//! assert the checker *rejects* it.

use client::{ClientOptions, FirestoreClient};
use firestore_core::database::doc;
use firestore_core::{
    Caller, Consistency, Direction, FilterOp, FirestoreDatabase, FirestoreError, Query, Value,
    Write,
};
use realtime::{Connection, ListenEvent, QueryId, RealtimeCache, RealtimeOptions};
use simkit::fault::{FaultInjector, FaultKind, FaultPlan, FaultRule};
use simkit::history::HistoryRecorder;
use simkit::{Duration, SimClock, SimDisk, SimRng, Timestamp};
use spanner::SpannerDatabase;
use std::collections::HashMap;
use std::sync::Arc;

const OPEN_RULES: &str = r#"
service cloud.firestore {
  match /databases/{db}/documents {
    match /{document=**} { allow read, write; }
  }
}
"#;

const C_IDS: [&str; 6] = ["a1", "b2", "k3", "n4", "p5", "z6"];
const D_IDS: [&str; 4] = ["d1", "d2", "d3", "d4"];

/// The assembled stack with a history recorder attached to every layer.
pub struct HistoryWorld {
    /// Simulated clock shared by every component.
    pub clock: SimClock,
    /// The storage substrate (durable redo logs attached).
    pub spanner: SpannerDatabase,
    /// The Firestore API layer.
    pub db: FirestoreDatabase,
    /// The Real-time Cache.
    pub cache: RealtimeCache,
    /// The recorder all layers append to.
    pub recorder: Arc<HistoryRecorder>,
}

impl HistoryWorld {
    /// Build the stack: Spanner + durability, Firestore database with open
    /// rules, Real-time Cache wired as the commit observer, and one
    /// recorder attached to Spanner and the cache (the client and API
    /// layers reach it through [`FirestoreDatabase::history`]).
    pub fn build() -> HistoryWorld {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        let spanner = SpannerDatabase::new(clock.clone());
        spanner.attach_durability(SimDisk::new());
        let db = FirestoreDatabase::create_default(spanner.clone());
        db.set_rules(OPEN_RULES).unwrap();
        let cache = RealtimeCache::new(spanner.truetime().clone(), RealtimeOptions::default());
        db.set_observer(cache.observer_for(db.directory()));
        let recorder = HistoryRecorder::new();
        spanner.set_history(Some(recorder.clone()));
        cache.set_history(Some(recorder.clone()));
        HistoryWorld {
            clock,
            spanner,
            db,
            cache,
            recorder,
        }
    }
}

/// Configuration for one generated history.
#[derive(Clone, Copy, Debug)]
pub struct HistoryConfig {
    /// Workload seed; every run with the same seed replays identically.
    pub seed: u64,
    /// Number of workload steps.
    pub steps: usize,
    /// Inject probabilistic faults (cache outages, lock timeouts, fsync
    /// failures, TrueTime spikes) during the run.
    pub chaos: bool,
    /// Maximum number of crash–recover cycles.
    pub max_crashes: usize,
}

impl HistoryConfig {
    /// Default shape: 120 steps, chaos on, up to 2 crash cycles.
    pub fn new(seed: u64) -> HistoryConfig {
        HistoryConfig {
            seed,
            steps: 120,
            chaos: true,
            max_crashes: 2,
        }
    }
}

/// What the run produced, ready to hand to the checker.
pub struct HistoryOutcome {
    /// Registered listener queries by raw query id (the checker resolves
    /// `ListenerSnapshot.query` through this).
    pub queries: HashMap<u64, Query>,
    /// Quiesced end-of-run timestamp for the convergence check.
    pub final_ts: Timestamp,
    /// Crash–recover cycles performed.
    pub crashes: usize,
    /// Successfully acknowledged commits (service + client + txn).
    pub commits: usize,
}

struct Listener {
    conn: Connection,
    qid: QueryId,
    query: Query,
    reset: bool,
}

impl Listener {
    fn open(
        world: &HistoryWorld,
        query: Query,
        queries: &mut HashMap<u64, Query>,
    ) -> Listener {
        let conn = world.cache.connect();
        let mut l = Listener {
            conn,
            qid: QueryId(0),
            query,
            reset: false,
        };
        l.register(world, queries);
        l
    }

    /// (Re-)register the query on the connection from a fresh snapshot.
    fn register(&mut self, world: &HistoryWorld, queries: &mut HashMap<u64, Query>) {
        let ts = world.db.strong_read_ts();
        let res = world
            .db
            .run_query(
                &self.query.without_window(),
                Consistency::AtTimestamp(ts),
                &Caller::Service,
            )
            .unwrap();
        self.qid = self
            .conn
            .listen(world.db.directory(), self.query.clone(), res.documents, ts);
        queries.insert(self.qid.0, self.query.clone());
        self.reset = false;
        self.drain();
    }

    fn drain(&mut self) {
        for event in self.conn.poll() {
            if let ListenEvent::Reset { query, .. } = event {
                if query == self.qid {
                    self.reset = true;
                }
            }
        }
    }
}

fn chaos_injector(world: &HistoryWorld, seed: u64) -> Arc<FaultInjector> {
    let plan = FaultPlan::new(seed)
        .rule(FaultRule::probabilistic(FaultKind::CacheUnavailable, 0.05))
        .rule(FaultRule::probabilistic(FaultKind::LockTimeout, 0.03))
        .rule(FaultRule::probabilistic(FaultKind::FsyncFail, 0.02))
        .rule(FaultRule::probabilistic(FaultKind::TtUncertaintySpike, 0.05))
        .with_tt_spike(Duration::from_millis(20));
    FaultInjector::new(world.clock.clone(), plan)
}

fn crash_recover(
    world: &HistoryWorld,
    listeners: &mut [Listener],
    queries: &mut HashMap<u64, Query>,
) {
    world.spanner.crash();
    let _report = world.spanner.recover();
    let ts = world.db.strong_read_ts();
    world.cache.restart(
        |q| {
            world
                .db
                .run_query(
                    &q.without_window(),
                    Consistency::AtTimestamp(ts),
                    &Caller::Service,
                )
                .map(|r| r.documents)
        },
        ts,
    );
    for l in listeners.iter_mut() {
        l.drain();
        if l.reset {
            l.register(world, queries);
        }
    }
}

/// Run the seeded workload against a built world and return everything the
/// checker needs. The recorder fills as a side effect
/// (`world.recorder`).
pub fn run_history_workload(world: &HistoryWorld, cfg: &HistoryConfig) -> HistoryOutcome {
    let mut rng = SimRng::new(cfg.seed);
    if cfg.chaos {
        let injector = chaos_injector(world, cfg.seed ^ 0x51D);
        world.spanner.set_fault_injector(Some(injector.clone()));
        world.cache.set_fault_injector(Some(injector));
    }

    let mut queries: HashMap<u64, Query> = HashMap::new();
    let mut listeners = vec![
        Listener::open(world, Query::parse("/c").unwrap(), &mut queries),
        Listener::open(
            world,
            Query::parse("/c")
                .unwrap()
                .order_by("v", Direction::Desc)
                .limit(3),
            &mut queries,
        ),
        Listener::open(
            world,
            Query::parse("/d")
                .unwrap()
                .filter("flag", FilterOp::Eq, Value::Int(1)),
            &mut queries,
        ),
    ];

    let client = FirestoreClient::connect(
        world.db.clone(),
        world.cache.clone(),
        ClientOptions::default(),
    );

    let mut counter = 0i64;
    let mut commits = 0usize;
    let mut crashes = 0usize;

    for _step in 0..cfg.steps {
        world
            .clock
            .advance(Duration::from_millis(1 + rng.gen_range(20)));
        match rng.gen_range(100) {
            // Service commit of 1–3 writes (sets and the odd delete).
            0..=29 => {
                let k = 1 + rng.gen_range(3) as usize;
                let mut writes = Vec::new();
                for _ in 0..k {
                    let id = C_IDS[rng.gen_range(C_IDS.len() as u64) as usize];
                    if rng.gen_bool(0.15) {
                        writes.push(Write::delete(doc(&format!("/c/{id}"))));
                    } else {
                        counter += 1;
                        writes.push(Write::set(
                            doc(&format!("/c/{id}")),
                            [
                                ("v", Value::Int(counter)),
                                ("grp", Value::Int(counter % 5)),
                            ],
                        ));
                    }
                }
                let mut seen = std::collections::BTreeSet::new();
                writes.retain(|w| seen.insert(w.op.name().to_string()));
                match world.db.commit_writes(writes, &Caller::Service) {
                    Ok(_) => {
                        commits += 1;
                        world.cache.tick();
                    }
                    Err(FirestoreError::Unknown(_)) if world.spanner.crashed() => {
                        crashes += 1;
                        crash_recover(world, &mut listeners, &mut queries);
                    }
                    Err(_) => {} // chaos: unavailable / aborted / deadline
                }
            }
            // Client blind writes (acked through the dedup ledger).
            30..=44 => {
                let id = D_IDS[rng.gen_range(D_IDS.len() as u64) as usize];
                counter += 1;
                let res = if rng.gen_bool(0.1) {
                    client.delete(&format!("/d/{id}"))
                } else {
                    client.set(
                        &format!("/d/{id}"),
                        [
                            ("v", Value::Int(counter)),
                            ("flag", Value::Int(counter % 2)),
                        ],
                    )
                };
                if res.is_ok() {
                    commits += 1;
                }
            }
            // Client sync: flush stalled writes, drain listen events.
            45..=51 => {
                let _ = client.sync();
            }
            // Point read, strong or at a recent past timestamp.
            52..=64 => {
                let coll = if rng.gen_bool(0.5) { "c" } else { "d" };
                let ids: &[&str] = if coll == "c" { &C_IDS } else { &D_IDS };
                let id = ids[rng.gen_range(ids.len() as u64) as usize];
                let consistency = if rng.gen_bool(0.5) {
                    Consistency::Strong
                } else {
                    let strong = world.db.strong_read_ts();
                    let back = rng.gen_range(50_000_000); // ≤50ms into the past
                    Consistency::AtTimestamp(Timestamp(strong.0.saturating_sub(back).max(1)))
                };
                let _ = world.db.get_document(
                    &doc(&format!("/{coll}/{id}")),
                    consistency,
                    &Caller::Service,
                );
            }
            // Query, strong or at a recent past timestamp.
            65..=74 => {
                let q = match rng.gen_range(3) {
                    0 => Query::parse("/c").unwrap(),
                    1 => Query::parse("/c")
                        .unwrap()
                        .order_by("v", Direction::Desc)
                        .limit(4),
                    _ => Query::parse("/d").unwrap(),
                };
                let consistency = if rng.gen_bool(0.5) {
                    Consistency::Strong
                } else {
                    let strong = world.db.strong_read_ts();
                    let back = rng.gen_range(50_000_000);
                    Consistency::AtTimestamp(Timestamp(strong.0.saturating_sub(back).max(1)))
                };
                let _ = world.db.run_query(&q, consistency, &Caller::Service);
            }
            // Read-modify-write transaction (locking reads recorded).
            75..=81 => {
                let id = C_IDS[rng.gen_range(C_IDS.len() as u64) as usize];
                let name = doc(&format!("/c/{id}"));
                let res = world.db.run_transaction(3, |txn| {
                    let cur = txn.get(&name)?;
                    let v = cur
                        .and_then(|d| match d.fields.get("v") {
                            Some(Value::Int(v)) => Some(*v),
                            _ => None,
                        })
                        .unwrap_or(0);
                    txn.set(
                        name.clone(),
                        [("v", Value::Int(v + 1)), ("grp", Value::Int(v % 5))],
                    );
                    Ok(())
                });
                match res {
                    Ok(()) => {
                        commits += 1;
                        world.cache.tick();
                    }
                    Err(FirestoreError::Unknown(_)) if world.spanner.crashed() => {
                        crashes += 1;
                        crash_recover(world, &mut listeners, &mut queries);
                    }
                    Err(_) => {}
                }
            }
            // Pump the cache and the listeners.
            82..=89 => {
                world.cache.tick();
                for l in listeners.iter_mut() {
                    l.drain();
                    if l.reset {
                        l.register(world, &mut queries);
                    }
                }
            }
            // Maintenance: collect old dedup-ledger rows (the horizon is
            // far beyond any in-run retry window).
            90..=93 => {
                let horizon = Duration::from_secs(600);
                let now = world.clock.now();
                if now.0 > horizon.0 {
                    let _ = world.db.gc_write_ledger(Timestamp(now.0 - horizon.0));
                }
            }
            // Crash–recover cycle between operations.
            _ => {
                if crashes < cfg.max_crashes {
                    crashes += 1;
                    crash_recover(world, &mut listeners, &mut queries);
                }
            }
        }
    }

    // Quiesce: end the chaos windows, flush the client dry, and pump
    // everything until listeners are current.
    world.spanner.set_fault_injector(None);
    world.cache.set_fault_injector(None);
    for _ in 0..32 {
        world.clock.advance(Duration::from_secs(2));
        let _ = client.sync();
        world.cache.tick();
        for l in listeners.iter_mut() {
            l.drain();
            if l.reset {
                l.register(world, &mut queries);
            }
        }
        if client.pending_writes() == 0 {
            break;
        }
    }
    world.cache.tick();
    for l in listeners.iter_mut() {
        l.drain();
    }
    let final_ts = world.db.strong_read_ts();

    HistoryOutcome {
        queries,
        final_ts,
        crashes,
        commits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_per_seed() {
        let run = |seed| {
            let world = HistoryWorld::build();
            let out = run_history_workload(&world, &HistoryConfig::new(seed));
            (world.recorder.len(), out.commits, out.crashes)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, 0);
    }

    #[test]
    fn workload_reaches_every_event_kind() {
        use simkit::history::HistoryEvent;
        let world = HistoryWorld::build();
        let out = run_history_workload(&world, &HistoryConfig::new(11));
        assert!(out.commits > 0);
        let events = world.recorder.events();
        let has = |f: &dyn Fn(&HistoryEvent) -> bool| events.iter().any(|r| f(&r.event));
        assert!(has(&|e| matches!(e, HistoryEvent::Commit { .. })));
        assert!(has(&|e| matches!(e, HistoryEvent::SnapshotRead { .. })));
        assert!(has(&|e| matches!(e, HistoryEvent::DocRead { .. })));
        assert!(has(&|e| matches!(e, HistoryEvent::ClientAck { .. })));
        assert!(has(&|e| matches!(e, HistoryEvent::ListenerSnapshot { .. })));
    }
}
