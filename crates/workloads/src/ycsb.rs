//! The YCSB benchmark over Firestore (paper §V-B1).
//!
//! "We ran the YCSB benchmark: workload A with 50% reads and 50% updates
//! and workload B with 95% reads and 5% updates. We used a uniform key
//! distribution with 900-byte sized documents, each composed of a single
//! field of that size."

use firestore_core::database::doc;
use firestore_core::{
    Caller, Document, DocumentName, FirestoreDatabase, FirestoreResult, Value, Write,
};
use simkit::SimRng;

/// Which YCSB core workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum YcsbWorkload {
    /// 50% reads / 50% updates.
    A,
    /// 95% reads / 5% updates.
    B,
}

impl YcsbWorkload {
    /// The read proportion.
    pub fn read_proportion(&self) -> f64 {
        match self {
            YcsbWorkload::A => 0.5,
            YcsbWorkload::B => 0.95,
        }
    }

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            YcsbWorkload::A => "A",
            YcsbWorkload::B => "B",
        }
    }
}

/// Benchmark configuration.
#[derive(Clone, Debug)]
pub struct YcsbConfig {
    /// Which workload mix.
    pub workload: YcsbWorkload,
    /// Number of records in `usertable`.
    pub records: usize,
    /// Document payload size (900 bytes in the paper).
    pub field_size: usize,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            workload: YcsbWorkload::A,
            records: 10_000,
            field_size: 900,
        }
    }
}

/// One benchmark operation.
#[derive(Clone, Debug, PartialEq)]
pub enum YcsbOp {
    /// Read a record.
    Read(DocumentName),
    /// Update (replace) a record.
    Update(DocumentName),
}

impl YcsbOp {
    /// Whether this is a read.
    pub fn is_read(&self) -> bool {
        matches!(self, YcsbOp::Read(_))
    }
}

/// The generator.
pub struct YcsbGenerator {
    config: YcsbConfig,
}

impl YcsbGenerator {
    /// Create a generator.
    pub fn new(config: YcsbConfig) -> YcsbGenerator {
        YcsbGenerator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &YcsbConfig {
        &self.config
    }

    /// The document name of record `i`.
    pub fn record_name(&self, i: usize) -> DocumentName {
        doc(&format!("/usertable/user{i:010}"))
    }

    /// A record's payload.
    pub fn record_fields(&self, rng: &mut SimRng) -> Vec<(&'static str, Value)> {
        let mut s = String::with_capacity(self.config.field_size);
        for _ in 0..self.config.field_size {
            // Printable ASCII payload.
            s.push((b'a' + rng.gen_range(26) as u8) as char);
        }
        vec![("field0", Value::Str(s))]
    }

    /// Load the table into `db` (the YCSB load phase).
    pub fn load(&self, db: &FirestoreDatabase, rng: &mut SimRng) -> FirestoreResult<()> {
        for i in 0..self.config.records {
            let w = Write::set(self.record_name(i), self.record_fields(rng));
            db.commit_writes(vec![w], &Caller::Service)?;
        }
        Ok(())
    }

    /// Draw the next operation (uniform key chooser).
    pub fn next_op(&self, rng: &mut SimRng) -> YcsbOp {
        let key = rng.gen_range(self.config.records as u64) as usize;
        let name = self.record_name(key);
        if rng.gen_bool(self.config.workload.read_proportion()) {
            YcsbOp::Read(name)
        } else {
            YcsbOp::Update(name)
        }
    }

    /// Execute one operation against a database; returns the document read
    /// or written.
    pub fn execute(
        &self,
        db: &FirestoreDatabase,
        op: &YcsbOp,
        rng: &mut SimRng,
    ) -> FirestoreResult<Option<Document>> {
        match op {
            YcsbOp::Read(name) => {
                db.get_document(name, firestore_core::Consistency::Strong, &Caller::Service)
            }
            YcsbOp::Update(name) => {
                let w = Write::set(name.clone(), self.record_fields(rng));
                db.commit_writes(vec![w], &Caller::Service)?;
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{Duration, SimClock};
    use spanner::SpannerDatabase;

    fn db() -> FirestoreDatabase {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        FirestoreDatabase::create_default(SpannerDatabase::new(clock))
    }

    #[test]
    fn op_mix_matches_workload() {
        let mut rng = SimRng::new(1);
        for (workload, expect) in [(YcsbWorkload::A, 0.5), (YcsbWorkload::B, 0.95)] {
            let g = YcsbGenerator::new(YcsbConfig {
                workload,
                records: 100,
                field_size: 10,
            });
            let n = 20_000;
            let reads = (0..n).filter(|_| g.next_op(&mut rng).is_read()).count() as f64 / n as f64;
            assert!(
                (reads - expect).abs() < 0.02,
                "workload {workload:?}: {reads}"
            );
        }
    }

    #[test]
    fn keys_are_uniform_over_records() {
        let g = YcsbGenerator::new(YcsbConfig {
            records: 10,
            field_size: 10,
            ..YcsbConfig::default()
        });
        let mut rng = SimRng::new(2);
        let mut seen = [0u32; 10];
        for _ in 0..10_000 {
            match g.next_op(&mut rng) {
                YcsbOp::Read(n) | YcsbOp::Update(n) => {
                    let idx: usize = n.id().trim_start_matches("user").parse().unwrap();
                    seen[idx] += 1;
                }
            }
        }
        for (i, &count) in seen.iter().enumerate() {
            assert!((800..1200).contains(&count), "key {i} hit {count} times");
        }
    }

    #[test]
    fn record_payload_is_900_bytes() {
        let g = YcsbGenerator::new(YcsbConfig {
            field_size: 900,
            ..YcsbConfig::default()
        });
        let mut rng = SimRng::new(3);
        let fields = g.record_fields(&mut rng);
        match &fields[0].1 {
            Value::Str(s) => assert_eq!(s.len(), 900),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn load_and_execute_round_trip() {
        let database = db();
        let g = YcsbGenerator::new(YcsbConfig {
            records: 20,
            field_size: 50,
            workload: YcsbWorkload::A,
        });
        let mut rng = SimRng::new(4);
        g.load(&database, &mut rng).unwrap();
        assert_eq!(database.storage_stats().unwrap().0, 20);
        let mut reads = 0;
        for _ in 0..50 {
            let op = g.next_op(&mut rng);
            let out = g.execute(&database, &op, &mut rng).unwrap();
            if op.is_read() {
                assert!(out.is_some(), "loaded records must exist");
                reads += 1;
            }
        }
        assert!(reads > 0);
    }
}
