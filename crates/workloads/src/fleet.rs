//! The tenant-fleet chaos workload: Fig 11's isolation promise at fleet
//! scale.
//!
//! Provisions hundreds of databases on one region, keeps a quiet
//! conforming majority humming, and unleashes a handful of adversaries —
//! a hotspot-key hammer, an unbounded-fanout batch scanner, a free-tier
//! tenant riding its daily quota edge, and a tenant whose offered load
//! ramps far faster than the 500/50/5 rule allows — all through the tenant
//! control plane (`server::tenants`) and the fair-share Backend. A
//! [`HistoryRecorder`] is attached to every layer so the consistency
//! oracle can audit the run, seeded chaos (cache outages, fsync failures,
//! TrueTime spikes) and a crash–recover cycle run mid-flight, and
//! offline-capable clients exercise throttle `retry_after` hints end to
//! end.
//!
//! The paper's §IV-C property under test: "a tenant's traffic cannot
//! affect the latency of other tenants." The adversaries' own latency and
//! admission rate are allowed to collapse; the conforming majority's p99
//! must stay within a fixed band of a quiet-fleet baseline run.

use client::{ClientOptions, FirestoreClient};
use firestore_core::database::doc;
use firestore_core::{Caller, FirestoreDatabase, Query, RequestClass, Value, Write};
use realtime::{Connection, ListenEvent, QueryId};
use server::{FirestoreService, ServiceOptions, TenantLimits};
use simkit::fault::{FaultInjector, FaultKind, FaultPlan, FaultRule};
use simkit::history::HistoryRecorder;
use simkit::stats::Histogram;
use simkit::{Duration, SimClock, SimDisk, SimRng, Timestamp};
use std::collections::HashMap;
use std::sync::Arc;

use crate::driver::LoadDriver;

/// Database id of the hotspot-key hammer adversary.
pub const HAMMER_DB: &str = "abuser-hammer";
/// Database id of the unbounded-fanout batch-scan adversary.
pub const SCAN_DB: &str = "abuser-scan";
/// Database id of the free-tier quota-edge adversary.
pub const FREE_DB: &str = "abuser-free";
/// Database id of the 500/50/5-violating ramp adversary.
pub const RAMP_DB: &str = "abuser-ramp";

/// Whether a database id belongs to one of the fleet's adversaries.
pub fn is_adversary(database: &str) -> bool {
    database.starts_with("abuser-")
}

/// Security rules for databases that host client traffic: the clients in
/// this workload authenticate as plain users, so their flushes are subject
/// to rules evaluation.
const OPEN_RULES: &str = r#"
service cloud.firestore {
  match /databases/{db}/documents {
    match /{document=**} { allow read, write; }
  }
}
"#;

/// Fleet shape and schedule.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Quiet conforming databases (the bystander majority).
    pub quiet_databases: usize,
    /// Tracked conforming databases: real engine ops, listeners, and an
    /// offline-capable client, all feeding the consistency oracle.
    pub tracked: usize,
    /// Include the four adversaries. Disabled for the quiet-fleet baseline.
    pub adversaries: bool,
    /// Run length.
    pub duration: Duration,
    /// Leading time excluded from latency measurement.
    pub warmup: Duration,
    /// Backend scheduler quantum.
    pub quantum: Duration,
    /// Workload seed: the whole run replays identically per seed.
    pub seed: u64,
    /// Offered QPS per quiet database.
    pub quiet_qps: f64,
    /// Offered QPS per tracked database.
    pub tracked_qps: f64,
    /// The hammer's offered QPS against one hot document.
    pub hammer_qps: f64,
    /// The batch scanner's offered QPS.
    pub scan_qps: f64,
    /// CPU cost of one unbounded-fanout scan.
    pub scan_cpu: Duration,
    /// The ramp adversary's peak offered QPS (reached linearly by the end
    /// of the run — wildly violating the +50%-per-5-minutes rule).
    pub ramp_peak_qps: f64,
    /// The free-tier adversary's offered QPS (all writes, against an
    /// almost-exhausted daily quota).
    pub free_qps: f64,
    /// Probabilistic fault injection on Spanner and the Real-time Cache.
    pub chaos: bool,
    /// Crash–recover cycles performed mid-run.
    pub max_crashes: usize,
    /// Fixed Backend pool size (auto-scaling is off: the isolation
    /// property must hold at constant capacity, as in Fig 11).
    pub backend_tasks: usize,
    /// Backlog watermark beyond which the control plane sheds.
    pub shed_watermark: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            quiet_databases: 500,
            tracked: 3,
            adversaries: true,
            duration: Duration::from_secs(30),
            warmup: Duration::from_secs(8),
            quantum: Duration::from_micros(500),
            seed: 0xF1EE7,
            quiet_qps: 0.3,
            tracked_qps: 2.0,
            hammer_qps: 1200.0,
            scan_qps: 100.0,
            scan_cpu: Duration::from_millis(30),
            ramp_peak_qps: 1200.0,
            free_qps: 40.0,
            chaos: true,
            max_crashes: 1,
            backend_tasks: 2,
            shed_watermark: 192,
        }
    }
}

/// The assembled region hosting the fleet, with the oracle's recorder
/// attached to every layer.
pub struct FleetWorld {
    /// The multi-tenant service.
    pub svc: FirestoreService,
    /// The history recorder the consistency oracle replays.
    pub recorder: Arc<HistoryRecorder>,
    quiet_names: Vec<String>,
    tracked_names: Vec<String>,
}

impl FleetWorld {
    /// Bring up the region and provision the whole fleet: quiet majority,
    /// tracked tenants, and (per config) the adversaries — the free-tier
    /// one registered with `free_tier` limits and a billing meter already
    /// sitting a few writes short of its daily quota.
    pub fn build(cfg: &FleetConfig) -> FleetWorld {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        let svc = FirestoreService::new(
            clock,
            ServiceOptions {
                backend_tasks: cfg.backend_tasks,
                autoscaling: false,
                shed_watermark: cfg.shed_watermark,
                gc_interval: Duration::from_secs(10),
                ..ServiceOptions::default()
            },
        );
        svc.spanner().attach_durability(SimDisk::new());
        let recorder = HistoryRecorder::new();
        svc.spanner().set_history(Some(recorder.clone()));
        svc.realtime().set_history(Some(recorder.clone()));

        let quiet_names: Vec<String> = (0..cfg.quiet_databases)
            .map(|i| format!("quiet-{i}"))
            .collect();
        for name in &quiet_names {
            svc.create_database(name);
        }
        let tracked_names: Vec<String> =
            (0..cfg.tracked).map(|i| format!("tracked-{i}")).collect();
        for name in &tracked_names {
            let db = svc.create_database(name);
            db.set_rules(OPEN_RULES).expect("open rules parse");
        }
        if cfg.adversaries {
            for name in [HAMMER_DB, SCAN_DB, FREE_DB, RAMP_DB] {
                let db = svc.create_database(name);
                db.set_rules(OPEN_RULES).expect("open rules parse");
            }
            svc.tenants.set_limits(
                FREE_DB,
                TenantLimits {
                    free_tier: true,
                    ..TenantLimits::default()
                },
            );
            // Park the free-tier tenant a few writes short of its daily
            // quota: it exhausts within the first second of the run.
            let quota = svc.billing.quota();
            svc.billing
                .record_writes(FREE_DB, quota.writes_per_day.saturating_sub(30));
        }
        FleetWorld {
            svc,
            recorder,
            quiet_names,
            tracked_names,
        }
    }
}

/// What one fleet run produced.
pub struct FleetReport {
    /// Latency of conforming tenants' admitted work (post-warmup, ms).
    pub conforming_latency: Histogram,
    /// Latency of the adversaries' admitted work (post-warmup, ms).
    pub adversary_latency: Histogram,
    /// Operations offered across the fleet.
    pub operations: u64,
    /// Offers the control plane admitted.
    pub admitted: u64,
    /// Offers the control plane refused.
    pub rejected: u64,
    /// Refused offers belonging to conforming (non-adversary) tenants —
    /// the isolation property wants this at zero.
    pub rejected_conforming: u64,
    /// Throttle-ledger tallies by reason label at end of run.
    pub throttle_counts: HashMap<&'static str, u64>,
    /// Real engine executions woven into the synthetic load.
    pub real_ops: u64,
    /// Crash–recover cycles performed.
    pub crashes: usize,
    /// Writes enqueued on the tracked tenant's offline-capable client.
    pub tracked_client_writes: u64,
    /// Writes enqueued on the hammer adversary's client (the ones that
    /// must retry through `retry_after` throttles to eventual success).
    pub hammer_client_writes: u64,
    /// Client writes still unflushed after the quiesce phase (must be 0).
    pub pending_after_quiesce: usize,
    /// Registered listener queries by raw query id, for the checker.
    pub queries: HashMap<u64, Query>,
    /// Quiesced end-of-run timestamp for the oracle's convergence check.
    pub final_ts: Timestamp,
}

/// Which stream an arrival belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Who {
    Quiet,
    Tracked,
    Hammer,
    Scan,
    Free,
    Ramp,
}

struct TrackedListener {
    index: usize,
    conn: Connection,
    qid: QueryId,
    query: Query,
    reset: bool,
}

impl TrackedListener {
    fn drain(&mut self) {
        for event in self.conn.poll() {
            if let ListenEvent::Reset { query, .. } = event {
                if query == self.qid {
                    self.reset = true;
                }
            }
        }
    }
}

fn chaos_injector(clock: &SimClock, seed: u64) -> Arc<FaultInjector> {
    let plan = FaultPlan::new(seed)
        .rule(FaultRule::probabilistic(FaultKind::CacheUnavailable, 0.02))
        .rule(FaultRule::probabilistic(FaultKind::LockTimeout, 0.01))
        .rule(FaultRule::probabilistic(FaultKind::FsyncFail, 0.01))
        .rule(FaultRule::probabilistic(FaultKind::TtUncertaintySpike, 0.02))
        .with_tt_spike(Duration::from_millis(10));
    FaultInjector::new(clock.clone(), plan)
}

/// Crash Spanner and bring the whole region back: redo-log recovery, a
/// Real-time Cache restart re-querying every registered listener from a
/// fresh snapshot, and listener re-registration where the cache signalled
/// a reset.
fn crash_recover(
    world: &FleetWorld,
    tracked_dbs: &[FirestoreDatabase],
    listeners: &mut [TrackedListener],
    queries: &mut HashMap<u64, Query>,
) {
    world.svc.spanner().crash();
    let _report = world.svc.spanner().recover();
    let ts = tracked_dbs[0].strong_read_ts();
    // Tracked db i listens on collection `u{i}`; dispatch each requery to
    // the owning database.
    let colls: Vec<_> = (0..tracked_dbs.len())
        .map(|i| Query::parse(&format!("/u{i}")).unwrap().collection)
        .collect();
    world.svc.realtime().restart(
        |q| {
            let db = colls
                .iter()
                .position(|c| *c == q.collection)
                .map(|i| &tracked_dbs[i])
                .unwrap_or(&tracked_dbs[0]);
            db.run_query(
                &q.without_window(),
                firestore_core::Consistency::AtTimestamp(ts),
                &Caller::Service,
            )
            .map(|r| r.documents)
        },
        ts,
    );
    for l in listeners.iter_mut() {
        l.drain();
        if l.reset {
            reregister(world, l, queries);
        }
    }
}

/// Re-open a reset listener through the service path (gated, billed, and
/// counted against the tenant's listener cap).
fn reregister(world: &FleetWorld, l: &mut TrackedListener, queries: &mut HashMap<u64, Query>) {
    let name = format!("tracked-{}", l.index);
    if let Ok(qid) = world
        .svc
        .listen(&name, &l.conn, l.query.clone(), &Caller::Service)
    {
        l.qid = qid;
        l.reset = false;
        queries.insert(qid.0, l.query.clone());
        l.drain();
    }
}

/// Run the fleet workload. Deterministic per seed: two runs with the same
/// `FleetConfig` produce identical reports.
pub fn run_fleet(world: &FleetWorld, cfg: &FleetConfig) -> FleetReport {
    let svc = &world.svc;
    let mut rng = SimRng::new(cfg.seed);

    let tracked_dbs: Vec<FirestoreDatabase> = world
        .tracked_names
        .iter()
        .map(|n| svc.database(n).expect("tracked db"))
        .collect();

    // Seed each tracked database with a handful of documents in its own
    // collection (`/u{i}`), so queries and listeners have data to watch.
    let mut counter = 0i64;
    for (i, db) in tracked_dbs.iter().enumerate() {
        for k in 0..6 {
            counter += 1;
            db.commit_writes(
                vec![Write::set(
                    doc(&format!("/u{i}/k{k}")),
                    [("v", Value::Int(counter)), ("grp", Value::Int(k % 3))],
                )],
                &Caller::Service,
            )
            .expect("seed tracked data");
        }
    }

    // One listener per tracked database, registered through the service.
    let mut queries: HashMap<u64, Query> = HashMap::new();
    let mut listeners: Vec<TrackedListener> = Vec::new();
    for (i, name) in world.tracked_names.iter().enumerate() {
        let conn = svc.connect();
        let query = Query::parse(&format!("/u{i}")).unwrap();
        let qid = svc
            .listen(name, &conn, query.clone(), &Caller::Service)
            .expect("tracked listener registers");
        queries.insert(qid.0, query.clone());
        let mut l = TrackedListener {
            index: i,
            conn,
            qid,
            query,
            reset: false,
        };
        l.drain();
        listeners.push(l);
    }

    // Offline-capable clients: one on a conforming tracked tenant, one on
    // the hammer adversary (its flushes must ride `retry_after` hints
    // through throttles to eventual, exactly-once success).
    let tracked_client = FirestoreClient::connect(
        tracked_dbs[0].clone(),
        svc.realtime().clone(),
        ClientOptions::default(),
    );
    let hammer_client = if cfg.adversaries {
        Some(FirestoreClient::connect(
            svc.database(HAMMER_DB).expect("hammer db"),
            svc.realtime().clone(),
            ClientOptions::default(),
        ))
    } else {
        None
    };

    // Chaos starts only once the fleet is seeded and listening; the run
    // itself (not the setup) is what gets the faults.
    if cfg.chaos {
        let injector = chaos_injector(svc.clock(), cfg.seed ^ 0xF1EE);
        svc.spanner().set_fault_injector(Some(injector.clone()));
        svc.realtime().set_fault_injector(Some(injector));
    }

    let mut report = FleetReport {
        conforming_latency: Histogram::log_millis(),
        adversary_latency: Histogram::log_millis(),
        operations: 0,
        admitted: 0,
        rejected: 0,
        rejected_conforming: 0,
        throttle_counts: HashMap::new(),
        real_ops: 0,
        crashes: 0,
        tracked_client_writes: 0,
        hammer_client_writes: 0,
        pending_after_quiesce: 0,
        queries: HashMap::new(),
        final_ts: Timestamp::ZERO,
    };

    let mut driver = LoadDriver::new(svc);
    let start = svc.clock().now();
    let end = start + cfg.duration;
    let measure_from = start + cfg.warmup;
    let block = Duration::from_secs(1);
    let total_blocks = (cfg.duration.as_secs_f64()).ceil() as usize;
    let crash_block = total_blocks / 2;
    let mut block_start = start;
    let mut block_index = 0usize;
    let mut tracked_arrivals = 0u64;
    let latency_model = svc.latency_model();

    while block_start < end {
        let block_end = (block_start + block).min(end);
        let block_secs = (block_end - block_start).as_secs_f64();
        let elapsed_frac =
            (block_start - start).as_secs_f64() / cfg.duration.as_secs_f64().max(1e-9);

        // Poisson arrival streams for this block. Quiet and tracked
        // tenants are drawn as aggregates (identical statistics, far fewer
        // RNG streams); the owning database is picked per arrival.
        let mut arrivals: Vec<(Timestamp, Who)> = Vec::new();
        let stream = |rate: f64, who: Who, arrivals: &mut Vec<(Timestamp, Who)>,
                          rng: &mut SimRng| {
            if rate <= 0.0 {
                return;
            }
            let mut t = 0.0f64;
            loop {
                t += rng.exponential(1.0 / rate);
                if t >= block_secs {
                    break;
                }
                arrivals.push((block_start + Duration::from_millis_f64(t * 1000.0), who));
            }
        };
        stream(
            cfg.quiet_qps * cfg.quiet_databases as f64,
            Who::Quiet,
            &mut arrivals,
            &mut rng,
        );
        stream(
            cfg.tracked_qps * cfg.tracked as f64,
            Who::Tracked,
            &mut arrivals,
            &mut rng,
        );
        if cfg.adversaries {
            stream(cfg.hammer_qps, Who::Hammer, &mut arrivals, &mut rng);
            stream(cfg.scan_qps, Who::Scan, &mut arrivals, &mut rng);
            stream(cfg.free_qps, Who::Free, &mut arrivals, &mut rng);
            stream(
                cfg.ramp_peak_qps * elapsed_frac,
                Who::Ramp,
                &mut arrivals,
                &mut rng,
            );
        }
        arrivals.sort_unstable_by_key(|(at, _)| *at);

        let mut cursor = block_start;
        for (at, who) in arrivals {
            if at > cursor {
                driver.advance(cursor, at, cfg.quantum);
                cursor = at;
            }
            report.operations += 1;
            // A slice of tracked traffic executes for real against the
            // engine — through the gated service entry points — keeping
            // the dataset live and the oracle's history rich.
            if who == Who::Tracked {
                tracked_arrivals += 1;
                if tracked_arrivals.is_multiple_of(4) {
                    let i = rng.gen_range(cfg.tracked as u64) as usize;
                    let served = run_real_op(
                        world,
                        &tracked_dbs,
                        i,
                        &mut counter,
                        &mut listeners,
                        &mut queries,
                        &mut report,
                        &mut rng,
                    );
                    if let Some((is_read, cpu, storage)) = served {
                        report.admitted += 1;
                        report.real_ops += 1;
                        driver.submit(&world.tracked_names[i], is_read, cpu, storage, at);
                    }
                    continue;
                }
            }
            let (name, class, is_read, cpu, storage): (&str, _, _, _, _) = match who {
                Who::Quiet | Who::Tracked => {
                    let name = if who == Who::Quiet {
                        let i = rng.gen_range(cfg.quiet_databases as u64) as usize;
                        world.quiet_names[i].as_str()
                    } else {
                        let i = rng.gen_range(cfg.tracked as u64) as usize;
                        world.tracked_names[i].as_str()
                    };
                    let is_read = rng.gen_bool(0.8);
                    let (cpu, storage) = if is_read {
                        (
                            Duration::from_micros(80).mul_f64(rng.lognormal(0.0, 0.15)),
                            latency_model.spanner_read(1, &mut rng),
                        )
                    } else {
                        (
                            Duration::from_micros(130).mul_f64(rng.lognormal(0.0, 0.15)),
                            latency_model.spanner_commit(1, 900, &mut rng),
                        )
                    };
                    (name, RequestClass::Interactive, is_read, cpu, storage)
                }
                Who::Hammer => (
                    HAMMER_DB,
                    RequestClass::Interactive,
                    false,
                    Duration::from_micros(150).mul_f64(rng.lognormal(0.0, 0.1)),
                    latency_model.spanner_commit(1, 200, &mut rng),
                ),
                Who::Scan => (
                    SCAN_DB,
                    RequestClass::Batch,
                    true,
                    cfg.scan_cpu.mul_f64(rng.lognormal(0.0, 0.3)),
                    latency_model.spanner_read(500, &mut rng),
                ),
                Who::Free => (
                    FREE_DB,
                    RequestClass::Interactive,
                    false,
                    Duration::from_micros(120).mul_f64(rng.lognormal(0.0, 0.1)),
                    latency_model.spanner_commit(1, 400, &mut rng),
                ),
                Who::Ramp => (
                    RAMP_DB,
                    RequestClass::Interactive,
                    rng.gen_bool(0.5),
                    Duration::from_micros(110).mul_f64(rng.lognormal(0.0, 0.15)),
                    latency_model.spanner_read(1, &mut rng),
                ),
            };
            match driver.try_submit(name, class, is_read, cpu, storage, at) {
                Ok(()) => {
                    report.admitted += 1;
                    // The free-tier tenant's admitted writes burn quota;
                    // that is what pushes it over the edge.
                    if who == Who::Free {
                        svc.billing.record_writes(FREE_DB, 1);
                    }
                }
                Err(_) => {
                    report.rejected += 1;
                    if !is_adversary(name) {
                        report.rejected_conforming += 1;
                    }
                }
            }
        }
        driver.advance(cursor, block_end, cfg.quantum);

        // Per-block housekeeping: a couple of client writes on the tracked
        // tenant, one crash cycle mid-run, service maintenance, listener
        // pumping, and latency harvest.
        counter += 1;
        let path = format!("/u0/c{}", counter % 4);
        if tracked_client
            .set(&path, [("v", Value::Int(counter)), ("grp", Value::Int(0))])
            .is_ok()
        {
            report.tracked_client_writes += 1;
        } else {
            report.tracked_client_writes += 1; // enqueued even when flush stalls
        }
        if let Some(hc) = &hammer_client {
            // In the thick of the abuse, enqueue writes on the hammer's
            // own client: flushes hit ResourceExhausted throttles and must
            // back off by the server's `retry_after` hint.
            if block_index == total_blocks.saturating_sub(2) {
                for j in 0..3 {
                    counter += 1;
                    let _ = hc.set(&format!("/hot/doc{j}"), [("v", Value::Int(counter))]);
                    report.hammer_client_writes += 1;
                }
            }
        }
        if block_index == crash_block && report.crashes < cfg.max_crashes {
            report.crashes += 1;
            crash_recover(world, &tracked_dbs, &mut listeners, &mut queries);
        }
        svc.tick();
        for l in listeners.iter_mut() {
            l.drain();
            if l.reset {
                reregister(world, l, &mut queries);
            }
        }
        for (db, _is_read, submitted, latency) in driver.outcomes.drain(..) {
            if submitted >= measure_from {
                if is_adversary(&db) {
                    report.adversary_latency.record_duration(latency);
                } else {
                    report.conforming_latency.record_duration(latency);
                }
            }
        }
        block_start = block_end;
        block_index += 1;
    }

    // Quiesce: stop the chaos, drain the Backend, and flush every client
    // dry — the hammer client's stalled writes retry to success here as
    // the overload clears.
    svc.spanner().set_fault_injector(None);
    svc.realtime().set_fault_injector(None);
    for _ in 0..64 {
        let now = svc.clock().now();
        driver.advance(now, now + Duration::from_secs(1), cfg.quantum);
        svc.tick();
        let _ = tracked_client.sync();
        if let Some(hc) = &hammer_client {
            let _ = hc.sync();
        }
        for l in listeners.iter_mut() {
            l.drain();
            if l.reset {
                reregister(world, l, &mut queries);
            }
        }
        let pending = tracked_client.pending_writes()
            + hammer_client.as_ref().map_or(0, |c| c.pending_writes());
        if pending == 0 && driver.inflight() == 0 && svc.backend.lock().backlog() == 0 {
            break;
        }
    }
    driver.outcomes.clear();
    for l in listeners.iter_mut() {
        l.drain();
    }
    report.pending_after_quiesce = tracked_client.pending_writes()
        + hammer_client.as_ref().map_or(0, |c| c.pending_writes());
    report.final_ts = tracked_dbs[0].strong_read_ts();
    report.queries = queries;
    report.throttle_counts = svc.tenants.throttle_counts();
    report
}

/// One real engine operation on tracked database `i`, through the metered
/// service entry points. Returns the served cost so the caller can feed an
/// equivalent job to the Backend scheduler, or `None` when the op failed
/// (chaos) or triggered crash recovery.
#[allow(clippy::too_many_arguments)]
fn run_real_op(
    world: &FleetWorld,
    tracked_dbs: &[FirestoreDatabase],
    i: usize,
    counter: &mut i64,
    listeners: &mut [TrackedListener],
    queries: &mut HashMap<u64, Query>,
    report: &mut FleetReport,
    rng: &mut SimRng,
) -> Option<(bool, Duration, Duration)> {
    let svc = &world.svc;
    let name = &world.tracked_names[i];
    let outcome = match rng.gen_range(3) {
        0 => {
            *counter += 1;
            let k = rng.gen_range(6);
            svc.commit(
                name,
                vec![Write::set(
                    doc(&format!("/u{i}/k{k}")),
                    [
                        ("v", Value::Int(*counter)),
                        ("grp", Value::Int(*counter % 3)),
                    ],
                )],
                &Caller::Service,
                rng,
            )
            .map(|(_, served)| (false, served))
        }
        1 => {
            let k = rng.gen_range(6);
            svc.get_document(name, &doc(&format!("/u{i}/k{k}")), &Caller::Service, rng)
                .map(|(_, served)| (true, served))
        }
        _ => svc
            .run_query(
                name,
                &Query::parse(&format!("/u{i}")).unwrap(),
                &Caller::Service,
                rng,
            )
            .map(|(_, served)| (true, served)),
    };
    match outcome {
        Ok((is_read, served)) => Some((is_read, served.cpu_cost, served.storage_latency)),
        Err(_) if svc.spanner().crashed() => {
            report.crashes += 1;
            crash_recover(world, tracked_dbs, listeners, queries);
            None
        }
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(adversaries: bool) -> FleetConfig {
        FleetConfig {
            quiet_databases: 25,
            tracked: 2,
            adversaries,
            duration: Duration::from_secs(6),
            warmup: Duration::from_secs(2),
            seed: 0xABCD,
            hammer_qps: 400.0,
            scan_qps: 40.0,
            ramp_peak_qps: 400.0,
            free_qps: 20.0,
            backend_tasks: 1,
            shed_watermark: 64,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_run_is_deterministic_per_seed() {
        let run = || {
            let cfg = small_config(true);
            let world = FleetWorld::build(&cfg);
            let report = run_fleet(&world, &cfg);
            (
                report.operations,
                report.admitted,
                report.rejected,
                report.real_ops,
                world.recorder.len(),
            )
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.0 > 0 && a.1 > 0);
    }

    #[test]
    fn adversaries_draw_throttles_but_conforming_tenants_do_not() {
        let cfg = small_config(true);
        let world = FleetWorld::build(&cfg);
        let report = run_fleet(&world, &cfg);
        assert!(report.rejected > 0, "adversaries should be throttled");
        assert_eq!(
            report.rejected_conforming, 0,
            "no conforming offer may be refused"
        );
        // The free-tier quota edge must trip.
        assert!(
            report.throttle_counts.get("quota_exhausted").copied() > Some(0),
            "free-tier quota throttles expected: {:?}",
            report.throttle_counts
        );
        assert_eq!(report.pending_after_quiesce, 0);
    }

    #[test]
    fn quiet_baseline_run_admits_everything() {
        let cfg = small_config(false);
        let world = FleetWorld::build(&cfg);
        let report = run_fleet(&world, &cfg);
        assert_eq!(report.rejected, 0);
        assert!(report.conforming_latency.total() > 0);
        assert_eq!(report.adversary_latency.total(), 0);
    }
}
