//! The Fig 9 broadcast workload.
//!
//! "We set up a workload that writes to a single document once every
//! second, while an increasing number of Firestore clients open a real-time
//! query that includes that document in its result set. Thus, each write to
//! the document triggers a small update that is sent to each client."

use firestore_core::checker::{check_history, OracleReport};
use firestore_core::database::doc;
use firestore_core::{
    Caller, Consistency, FirestoreDatabase, FirestoreResult, Query, Value, Write,
};
use realtime::{Connection, QueryId, RealtimeCache, RealtimeOptions, ResilientListener};
use server::FirestoreService;
use simkit::fault::{FaultInjector, FaultKind, FaultPlan, FaultRule};
use simkit::history::HistoryRecorder;
use simkit::{Duration, SimClock, SimDisk, SimRng, Timestamp};
use spanner::SpannerDatabase;
use std::collections::{BTreeSet, HashMap};

/// The broadcast fixture: one scoreboard document, N listening clients.
pub struct FanoutFixture {
    /// Service under test.
    pub database: String,
    /// Listening connections with their query ids.
    pub listeners: Vec<(Connection, QueryId)>,
    seq: i64,
}

impl FanoutFixture {
    /// Create the scoreboard and register `n` listeners (e.g. sports-score
    /// viewers).
    pub fn new(svc: &FirestoreService, database: &str, n: usize) -> FirestoreResult<FanoutFixture> {
        let db = svc.database(database).expect("database exists");
        db.commit_writes(
            vec![Write::set(
                doc("/scores/game1"),
                [("home", Value::Int(0)), ("away", Value::Int(0))],
            )],
            &Caller::Service,
        )?;
        let mut listeners = Vec::with_capacity(n);
        for _ in 0..n {
            let conn = svc.connect();
            let q = Query::parse("/scores").unwrap();
            let qid = svc.listen(database, &conn, q, &Caller::Service)?;
            conn.poll(); // drain the initial snapshot
            listeners.push((conn, qid));
        }
        Ok(FanoutFixture {
            database: database.to_string(),
            listeners,
            seq: 0,
        })
    }

    /// Perform one scoreboard write (a team scores).
    pub fn write_once(&mut self, svc: &FirestoreService) -> FirestoreResult<()> {
        self.seq += 1;
        let db = svc.database(&self.database).expect("database exists");
        db.commit_writes(
            vec![Write::set(
                doc("/scores/game1"),
                [("home", Value::Int(self.seq)), ("away", Value::Int(0))],
            )],
            &Caller::Service,
        )?;
        Ok(())
    }

    /// Poll all listeners; returns how many received a (non-initial)
    /// snapshot.
    pub fn poll_all(&self) -> usize {
        self.listeners
            .iter()
            .filter(|(conn, _)| {
                conn.poll()
                    .iter()
                    .any(|e| matches!(e, realtime::ListenEvent::Snapshot { .. }))
            })
            .count()
    }
}

// --- Scaled fanout workload -------------------------------------------------
//
// The Fig 9 shape taken to overload territory: 10³–10⁵ resilient listeners
// on one hot collection, a seeded subset of *slow consumers* whose clients
// stop draining mid-run (a scheduled [`FaultKind::StalledConsumer`] window).
// The pipeline must keep conforming listeners on cadence, shed the stalled
// ones with a voluntary `overload` reset, and let the degrade/catch-up
// machinery converge everyone by the end.

/// Configuration for one scaled fanout run.
#[derive(Clone, Copy, Debug)]
pub struct FanoutConfig {
    /// Workload seed; same seed replays identically.
    pub seed: u64,
    /// Total listeners on the hot collection.
    pub listeners: usize,
    /// Hot-document write cycles (one write + tick + poll sweep each).
    pub cycles: usize,
    /// Listeners whose client stalls during the scheduled window.
    pub slow: usize,
    /// Distinct hot documents written round-robin.
    pub hot_docs: usize,
    /// Attach the consistency recorder and run the oracle at the end
    /// (keep off at 10⁴+ listeners; the history itself becomes the cost).
    pub oracle: bool,
}

impl FanoutConfig {
    /// Default shape: 200 listeners, 4 slow, oracle on.
    pub fn new(seed: u64) -> FanoutConfig {
        FanoutConfig {
            seed,
            listeners: 200,
            cycles: 60,
            slow: 4,
            hot_docs: 2,
            oracle: true,
        }
    }
}

/// What one scaled run produced.
pub struct FanoutReport {
    /// Listeners registered.
    pub listeners: usize,
    /// Non-initial notification events delivered to conforming listeners.
    pub notifications: u64,
    /// Sim-time delivery latency (commit → poll) for conforming listeners.
    pub conforming_p50: Duration,
    /// p99 of the same; a pipeline that lets one slow consumer stall the
    /// flush shows up here as multiples of the write cadence.
    pub conforming_p99: Duration,
    /// Voluntary (overload) resets the cache fired.
    pub overload_resets: u64,
    /// Involuntary (fault) resets.
    pub fault_resets: u64,
    /// Per-listener deltas absorbed by coalescing.
    pub coalesced: u64,
    /// Events dropped with shed queues.
    pub dropped_events: u64,
    /// Peak resident outbound-queue bytes across the run.
    pub peak_queue_bytes: u64,
    /// Every listener's delivered state equals the query result at the end.
    pub all_converged: bool,
    /// Every slow listener was overload-reset and still converged.
    pub slow_recovered: bool,
    /// Oracle verdict over the recorded history (when enabled).
    pub oracle: Option<OracleReport>,
}

/// Run the scaled fanout workload.
pub fn run_fanout(cfg: &FanoutConfig) -> FanoutReport {
    assert!(cfg.slow <= cfg.listeners);
    let clock = SimClock::new();
    clock.advance(Duration::from_secs(1));
    let spanner = SpannerDatabase::new(clock.clone());
    spanner.attach_durability(SimDisk::new());
    let db = FirestoreDatabase::create_default(spanner.clone());
    let mut opts = RealtimeOptions::default();
    // Exercise the batched changelog path and a tight shed deadline so a
    // stalled consumer is detected within the run.
    opts.fanout.flush_interval = Duration::from_millis(50);
    opts.fanout.stall_deadline = Duration::from_millis(500);
    let cache = RealtimeCache::new(spanner.truetime().clone(), opts);
    db.set_observer(cache.observer_for(db.directory()));
    let recorder = cfg.oracle.then(HistoryRecorder::new);
    if let Some(rec) = &recorder {
        spanner.set_history(Some(rec.clone()));
        cache.set_history(Some(rec.clone()));
    }

    let mut rng = SimRng::new(cfg.seed);
    let query = Query::parse("/scores").unwrap();
    let mut queries: HashMap<u64, Query> = HashMap::new();
    let mut listeners: Vec<ResilientListener> = (0..cfg.listeners)
        .map(|_| {
            let conn = cache.connect();
            let l = ResilientListener::listen(&db, &conn, query.clone(), Caller::Service).unwrap();
            if let Some(qid) = l.query_id() {
                queries.insert(qid.0, query.clone());
            }
            l
        })
        .collect();
    for l in listeners.iter_mut() {
        l.poll().unwrap(); // initial snapshot; stamps the drain clock
    }

    // The stall window: slow consumers stop draining for long enough that
    // the shed deadline must fire well before the window ends.
    let cadence = Duration::from_millis(100);
    let window_start = clock.now() + Duration::from_nanos(cadence.as_nanos() * (cfg.cycles as u64 / 4));
    let window_end = window_start + Duration::from_millis(1500);
    let stall = FaultInjector::new(
        clock.clone(),
        FaultPlan::new(cfg.seed ^ 0xFA0).rule(FaultRule::scheduled(
            FaultKind::StalledConsumer,
            window_start,
            window_end,
        )),
    );

    let mut counter = 0i64;
    let mut notifications = 0u64;
    let mut conforming_lat: Vec<u64> = Vec::new();
    let mut peak_queue_bytes = 0u64;

    for cycle in 0..cfg.cycles {
        clock.advance(Duration::from_millis(10 + rng.gen_range(10)));
        counter += 1;
        let d = cycle % cfg.hot_docs.max(1);
        db.commit_writes(
            vec![Write::set(
                doc(&format!("/scores/hot{d}")),
                [("v", Value::Int(counter)), ("w", Value::Int(cycle as i64))],
            )],
            &Caller::Service,
        )
        .unwrap();
        clock.advance(Duration::from_millis(40));
        cache.tick();
        clock.advance(Duration::from_millis(50));
        let now = clock.now();
        for (i, l) in listeners.iter_mut().enumerate() {
            let stalled = i < cfg.slow && stall.should_inject(FaultKind::StalledConsumer, "poll");
            if stalled {
                continue; // the client has gone dark: nothing drains
            }
            for ev in l.poll().unwrap() {
                if ev.changes.is_empty() {
                    continue;
                }
                if i >= cfg.slow {
                    notifications += 1;
                    conforming_lat.push(now.saturating_sub(ev.at).as_nanos());
                }
            }
            if let Some(qid) = l.query_id() {
                queries.entry(qid.0).or_insert_with(|| query.clone());
            }
        }
        let s = cache.stats();
        peak_queue_bytes = peak_queue_bytes.max(s.queued_bytes as u64);
    }

    // Quiesce: run past the stall window and let everyone catch up.
    for _ in 0..24 {
        clock.advance(cadence);
        cache.tick();
        for l in listeners.iter_mut() {
            l.poll().unwrap();
            if let Some(qid) = l.query_id() {
                queries.entry(qid.0).or_insert_with(|| query.clone());
            }
        }
    }

    let final_ts = db.strong_read_ts();
    let expect: BTreeSet<(String, Timestamp)> = db
        .run_query(&query, Consistency::AtTimestamp(final_ts), &Caller::Service)
        .unwrap()
        .documents
        .into_iter()
        .map(|d| (d.name.to_string(), d.update_time))
        .collect();
    let delivered_set = |l: &ResilientListener| -> BTreeSet<(String, Timestamp)> {
        l.delivered_docs()
            .into_iter()
            .map(|d| (d.name.to_string(), d.update_time))
            .collect()
    };
    let all_converged = listeners.iter().all(|l| delivered_set(l) == expect);
    let slow_recovered = listeners[..cfg.slow]
        .iter()
        .all(|l| l.stats().overload_resets_seen >= 1 && !l.is_degraded());

    let s = cache.stats();
    let oracle = recorder
        .as_ref()
        .map(|rec| check_history(&rec.events(), db.directory(), &queries, final_ts));

    FanoutReport {
        listeners: cfg.listeners,
        notifications,
        conforming_p50: Duration::from_nanos(percentile(&mut conforming_lat, 50.0)),
        conforming_p99: Duration::from_nanos(percentile(&mut conforming_lat, 99.0)),
        overload_resets: s.resets_overload,
        fault_resets: s.resets_fault,
        coalesced: s.coalesced,
        dropped_events: s.dropped_events,
        peak_queue_bytes,
        all_converged,
        slow_recovered,
        oracle,
    }
}

/// Nearest-rank percentile over raw nanosecond samples (sorts in place).
fn percentile(samples: &mut [u64], pct: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((pct / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use server::ServiceOptions;

    #[test]
    fn every_listener_hears_every_write() {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        let svc = FirestoreService::new(clock, ServiceOptions::default());
        svc.create_database("scores");
        let mut fixture = FanoutFixture::new(&svc, "scores", 25).unwrap();
        for _ in 0..3 {
            fixture.write_once(&svc).unwrap();
            svc.realtime().tick();
            assert_eq!(fixture.poll_all(), 25, "all listeners notified");
        }
        // Realtime stats counted the deliveries: 25 listeners × 3 writes.
        assert_eq!(svc.realtime().stats().notifications, 75);
    }

    #[test]
    fn scaled_run_sheds_slow_consumers_and_converges() {
        let cfg = FanoutConfig {
            listeners: 64,
            slow: 3,
            ..FanoutConfig::new(0xFA9)
        };
        let report = run_fanout(&cfg);
        assert!(report.notifications > 0);
        assert!(
            report.overload_resets >= cfg.slow as u64,
            "each stalled consumer must be shed voluntarily (got {})",
            report.overload_resets
        );
        assert!(report.slow_recovered, "shed listeners must catch back up");
        assert!(report.all_converged, "every listener converges at the end");
        let oracle = report.oracle.as_ref().unwrap();
        assert!(
            oracle.passed(),
            "oracle violations under overload:\n{}",
            oracle.report
        );
    }

    #[test]
    fn scaled_run_is_deterministic_per_seed() {
        let run = |seed| {
            let cfg = FanoutConfig {
                listeners: 32,
                cycles: 30,
                slow: 2,
                oracle: false,
                ..FanoutConfig::new(seed)
            };
            let r = run_fanout(&cfg);
            (r.notifications, r.overload_resets, r.coalesced)
        };
        assert_eq!(run(42), run(42));
    }
}
