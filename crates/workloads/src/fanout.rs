//! The Fig 9 broadcast workload.
//!
//! "We set up a workload that writes to a single document once every
//! second, while an increasing number of Firestore clients open a real-time
//! query that includes that document in its result set. Thus, each write to
//! the document triggers a small update that is sent to each client."

use firestore_core::database::doc;
use firestore_core::{Caller, FirestoreResult, Query, Value, Write};
use realtime::{Connection, QueryId};
use server::FirestoreService;

/// The broadcast fixture: one scoreboard document, N listening clients.
pub struct FanoutFixture {
    /// Service under test.
    pub database: String,
    /// Listening connections with their query ids.
    pub listeners: Vec<(Connection, QueryId)>,
    seq: i64,
}

impl FanoutFixture {
    /// Create the scoreboard and register `n` listeners (e.g. sports-score
    /// viewers).
    pub fn new(svc: &FirestoreService, database: &str, n: usize) -> FirestoreResult<FanoutFixture> {
        let db = svc.database(database).expect("database exists");
        db.commit_writes(
            vec![Write::set(
                doc("/scores/game1"),
                [("home", Value::Int(0)), ("away", Value::Int(0))],
            )],
            &Caller::Service,
        )?;
        let mut listeners = Vec::with_capacity(n);
        for _ in 0..n {
            let conn = svc.connect();
            let q = Query::parse("/scores").unwrap();
            let qid = svc.listen(database, &conn, q, &Caller::Service)?;
            conn.poll(); // drain the initial snapshot
            listeners.push((conn, qid));
        }
        Ok(FanoutFixture {
            database: database.to_string(),
            listeners,
            seq: 0,
        })
    }

    /// Perform one scoreboard write (a team scores).
    pub fn write_once(&mut self, svc: &FirestoreService) -> FirestoreResult<()> {
        self.seq += 1;
        let db = svc.database(&self.database).expect("database exists");
        db.commit_writes(
            vec![Write::set(
                doc("/scores/game1"),
                [("home", Value::Int(self.seq)), ("away", Value::Int(0))],
            )],
            &Caller::Service,
        )?;
        Ok(())
    }

    /// Poll all listeners; returns how many received a (non-initial)
    /// snapshot.
    pub fn poll_all(&self) -> usize {
        self.listeners
            .iter()
            .filter(|(conn, _)| {
                conn.poll()
                    .iter()
                    .any(|e| matches!(e, realtime::ListenEvent::Snapshot { .. }))
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use server::ServiceOptions;
    use simkit::{Duration, SimClock};

    #[test]
    fn every_listener_hears_every_write() {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        let svc = FirestoreService::new(clock, ServiceOptions::default());
        svc.create_database("scores");
        let mut fixture = FanoutFixture::new(&svc, "scores", 25).unwrap();
        for _ in 0..3 {
            fixture.write_once(&svc).unwrap();
            svc.realtime().tick();
            assert_eq!(fixture.poll_all(), 25, "all listeners notified");
        }
        // Realtime stats counted the deliveries: 25 listeners × 3 writes.
        assert_eq!(svc.realtime().stats().notifications, 75);
    }
}
