//! Synthesis of the Fig 6 production statistics.
//!
//! The paper reports boxplots over all active Firestore databases: storage
//! size, QPS, and active real-time queries each span roughly nine orders of
//! magnitude around the median, with the real-time query count also showing
//! daily twenty-fold spikes. We cannot observe Google's fleet, so this
//! module synthesizes a fleet of per-database activity profiles from
//! heavy-tailed distributions calibrated to the spreads the paper reports:
//! a log-normal body (most databases are tiny) with a Pareto tail (a few
//! are enormous). The experiment then *measures* the boxplot statistics
//! from the synthesized fleet exactly as the paper's figure does.

use simkit::stats::{Boxplot, Samples};
use simkit::SimRng;

/// One database's activity profile.
#[derive(Clone, Debug)]
pub struct DatabaseProfile {
    /// Stored bytes.
    pub storage_bytes: f64,
    /// Steady queries per second.
    pub qps: f64,
    /// Active real-time queries.
    pub active_queries: f64,
}

/// Fleet-synthesis parameters.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of databases.
    pub databases: usize,
    /// σ of the log-normal body (larger = wider spread).
    pub sigma: f64,
    /// Fraction of databases drawn from the Pareto tail.
    pub tail_fraction: f64,
    /// Pareto shape (smaller = heavier tail).
    pub tail_alpha: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            databases: 10_000,
            sigma: 2.8,
            tail_fraction: 0.02,
            tail_alpha: 0.55,
        }
    }
}

/// Draw one heavy-tailed metric around `median`.
fn heavy_tailed(median: f64, cfg: &FleetConfig, rng: &mut SimRng) -> f64 {
    if rng.gen_bool(cfg.tail_fraction) {
        // Tail draw: Pareto starting at the body's upper range.
        median * rng.pareto(50.0, cfg.tail_alpha)
    } else {
        median * rng.lognormal(0.0, cfg.sigma)
    }
}

/// Synthesize a fleet of database profiles.
pub fn synthesize_fleet(cfg: &FleetConfig, rng: &mut SimRng) -> Vec<DatabaseProfile> {
    (0..cfg.databases)
        .map(|_| DatabaseProfile {
            // Medians loosely calibrated: a median database stores ~1 MB,
            // serves ~0.1 QPS, and has ~1 active real-time query.
            storage_bytes: heavy_tailed(1e6, cfg, rng).max(1.0),
            qps: heavy_tailed(0.1, cfg, rng).max(1e-6),
            active_queries: heavy_tailed(1.0, cfg, rng).max(0.0),
        })
        .collect()
}

/// The three Fig 6 boxplots (median-normalized like the paper's
/// presentation).
#[derive(Clone, Debug)]
pub struct FleetBoxplots {
    /// Storage-size distribution.
    pub storage: Boxplot,
    /// QPS distribution.
    pub qps: Boxplot,
    /// Active real-time query distribution.
    pub active_queries: Boxplot,
}

/// Compute the boxplots from a fleet.
pub fn fleet_boxplots(fleet: &[DatabaseProfile]) -> FleetBoxplots {
    let mut storage = Samples::new();
    let mut qps = Samples::new();
    let mut active = Samples::new();
    for p in fleet {
        storage.push(p.storage_bytes);
        qps.push(p.qps);
        active.push(p.active_queries);
    }
    FleetBoxplots {
        storage: storage.boxplot().expect("non-empty fleet"),
        qps: qps.boxplot().expect("non-empty fleet"),
        active_queries: active.boxplot().expect("non-empty fleet"),
    }
}

/// A daily spike factor for active real-time queries: the paper reports
/// "many instances daily where the active query count for a given database
/// grows twenty-fold within minutes".
pub fn spike_factor(rng: &mut SimRng) -> f64 {
    if rng.gen_bool(0.01) {
        rng.gen_range_f64(15.0, 30.0)
    } else {
        rng.gen_range_f64(0.8, 1.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_spans_many_orders_of_magnitude() {
        let cfg = FleetConfig::default();
        let mut rng = SimRng::new(42);
        let fleet = synthesize_fleet(&cfg, &mut rng);
        assert_eq!(fleet.len(), cfg.databases);
        let plots = fleet_boxplots(&fleet);
        // The paper: storage and QPS spread ≥ 9 orders of magnitude from
        // median to max.
        assert!(
            plots.storage.orders_of_magnitude() >= 6.0,
            "storage spread {} OoM",
            plots.storage.orders_of_magnitude()
        );
        assert!(
            plots.qps.orders_of_magnitude() >= 6.0,
            "qps spread {} OoM",
            plots.qps.orders_of_magnitude()
        );
    }

    #[test]
    fn normalized_median_is_one() {
        let mut rng = SimRng::new(7);
        let fleet = synthesize_fleet(&FleetConfig::default(), &mut rng);
        let plots = fleet_boxplots(&fleet);
        let n = plots.storage.normalized();
        assert_eq!(n.median, 1.0);
        assert!(n.max > n.q3 && n.q3 > 1.0);
        assert!(n.min < n.q1 && n.q1 < 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = FleetConfig {
            databases: 100,
            ..FleetConfig::default()
        };
        let f1 = synthesize_fleet(&cfg, &mut SimRng::new(5));
        let f2 = synthesize_fleet(&cfg, &mut SimRng::new(5));
        assert_eq!(f1.len(), f2.len());
        for (a, b) in f1.iter().zip(&f2) {
            assert_eq!(a.storage_bytes, b.storage_bytes);
        }
    }

    #[test]
    fn spikes_are_rare_but_large() {
        let mut rng = SimRng::new(11);
        let draws: Vec<f64> = (0..10_000).map(|_| spike_factor(&mut rng)).collect();
        let spikes = draws.iter().filter(|&&f| f > 10.0).count();
        assert!(spikes > 20 && spikes < 300, "spike count {spikes}");
        assert!(draws.iter().cloned().fold(0.0, f64::max) >= 15.0);
    }
}
