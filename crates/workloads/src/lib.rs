#![warn(missing_docs)]

//! Workload generators and load drivers for the paper's evaluation (§V).
//!
//! * [`ycsb`] — the YCSB benchmark (§V-B1): workload A (50% reads / 50%
//!   updates) and workload B (95/5), uniform key distribution, 900-byte
//!   single-field documents.
//! * [`datashape`] — the Fig 10 sweeps: documents of growing size and
//!   documents with a growing number of indexed fields.
//! * [`fanout`] — the Fig 9 broadcast scenario: one document written once a
//!   second while N clients hold a real-time query over it.
//! * [`isolation`] — the Fig 11 culprit/bystander pair: CPU-hungry
//!   inefficiently-indexed queries ramping up against steady single-
//!   document fetches.
//! * [`fleet`] — the tenant-fleet chaos workload: hundreds of databases, a
//!   conforming majority, and adversarial tenants (hotspot hammer, batch
//!   scanner, quota-edge free tier, 500/50/5-violating ramp) driven through
//!   the tenant control plane under seeded chaos and crash–recover cycles.
//! * [`production`] — the Fig 6 synthesis: heavy-tailed per-database
//!   storage / QPS / active-query distributions spanning many orders of
//!   magnitude.
//! * [`driver`] — the closed measurement loop: Poisson arrivals at a target
//!   QPS feeding the Backend CPU scheduler, with calibrated costs sampled
//!   from real engine executions, producing per-request latency samples.

pub mod datashape;
pub mod driver;
pub mod fanout;
pub mod fleet;
pub mod history;
pub mod isolation;
pub mod production;
pub mod ycsb;

pub use driver::{DriverConfig, DriverReport};
pub use fleet::{run_fleet, FleetConfig, FleetReport, FleetWorld};
pub use history::{run_history_workload, HistoryConfig, HistoryOutcome, HistoryWorld};
pub use ycsb::{YcsbConfig, YcsbOp, YcsbWorkload};
