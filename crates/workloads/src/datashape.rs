//! Data-shape workloads (paper §V-B2, Fig 10).
//!
//! "In the first experiment, each document comprises a single field with a
//! varying length of single-byte characters, from 10KB to almost 1MiB ...
//! In the second experiment, each document has a varying number of
//! numeric-value fields from 1 to 500, which results in a linear increase
//! in the number of index entries written per commit." The database is
//! pre-populated "to ensure that commits spanned multiple tablets".

use firestore_core::database::doc;
use firestore_core::{Caller, DocumentName, FirestoreDatabase, FirestoreResult, Value, Write};
use simkit::SimRng;

/// Build a commit inserting one document with a single string field of
/// `size` bytes.
pub fn single_large_field_write(name: DocumentName, size: usize) -> Write {
    Write::set(name, [("payload", Value::Str("x".repeat(size)))])
}

/// Build a commit inserting one document with `n` numeric fields (each gets
/// its own automatic index entry).
pub fn many_fields_write(name: DocumentName, n: usize, rng: &mut SimRng) -> Write {
    let fields: Vec<(String, Value)> = (0..n)
        .map(|i| {
            (
                format!("f{i:04}"),
                Value::Int(rng.gen_range(1_000_000) as i64),
            )
        })
        .collect();
    Write {
        op: firestore_core::WriteOp::Set {
            name,
            fields: fields.into_iter().collect(),
        },
        precondition: firestore_core::Precondition::None,
    }
}

/// Pre-populate `db` with `count` filler documents and pre-split its
/// Entities/IndexEntries tablets so subsequent single-document commits are
/// distributed Spanner commits (multi-tablet 2PC), as in the paper's setup.
pub fn prepopulate(db: &FirestoreDatabase, count: usize, rng: &mut SimRng) -> FirestoreResult<()> {
    for i in 0..count {
        let w = many_fields_write(doc(&format!("/shapes/seed{i:05}")), 8, rng);
        db.commit_writes(vec![w], &Caller::Service)?;
    }
    // Force load-based splits to materialize.
    db.spanner().maintain(simkit::Timestamp::ZERO);
    Ok(())
}

/// The document-size sweep of Fig 10a (10 KB → ~1 MiB).
pub fn size_sweep() -> Vec<usize> {
    vec![
        10 << 10,
        50 << 10,
        100 << 10,
        250 << 10,
        500 << 10,
        (1 << 20) - 4096,
    ]
}

/// The field-count sweep of Fig 10b (1 → 500 fields).
pub fn field_sweep() -> Vec<usize> {
    vec![1, 10, 50, 100, 250, 500]
}

#[cfg(test)]
mod tests {
    use super::*;
    use firestore_core::Consistency;
    use simkit::{Duration, SimClock};
    use spanner::SpannerDatabase;

    fn db() -> FirestoreDatabase {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        FirestoreDatabase::create_default(SpannerDatabase::new(clock))
    }

    #[test]
    fn large_field_write_has_requested_size() {
        let d = db();
        let w = single_large_field_write(doc("/shapes/big"), 10 << 10);
        let result = d.commit_writes(vec![w], &Caller::Service).unwrap();
        assert!(result.stats.payload_bytes >= 10 << 10);
        // One field → few index entries regardless of size.
        assert!(result.stats.index_entries_touched <= 2);
    }

    #[test]
    fn field_count_drives_index_entries() {
        let d = db();
        let mut rng = SimRng::new(1);
        let w1 = many_fields_write(doc("/shapes/one"), 1, &mut rng);
        let r1 = d.commit_writes(vec![w1], &Caller::Service).unwrap();
        let w500 = many_fields_write(doc("/shapes/many"), 500, &mut rng);
        let r500 = d.commit_writes(vec![w500], &Caller::Service).unwrap();
        assert_eq!(r1.stats.index_entries_touched, 1);
        assert_eq!(
            r500.stats.index_entries_touched, 500,
            "linear in field count"
        );
    }

    #[test]
    fn oversized_document_rejected() {
        let d = db();
        let w = single_large_field_write(doc("/shapes/toobig"), (1 << 20) + 1000);
        assert!(d.commit_writes(vec![w], &Caller::Service).is_err());
    }

    #[test]
    fn prepopulate_creates_documents() {
        let d = db();
        let mut rng = SimRng::new(2);
        prepopulate(&d, 30, &mut rng).unwrap();
        assert_eq!(d.storage_stats().unwrap().0, 30);
        let got = d
            .get_document(
                &doc("/shapes/seed00000"),
                Consistency::Strong,
                &Caller::Service,
            )
            .unwrap();
        assert!(got.is_some());
    }

    #[test]
    fn sweeps_are_monotone() {
        assert!(size_sweep().windows(2).all(|w| w[0] < w[1]));
        assert!(field_sweep().windows(2).all(|w| w[0] < w[1]));
        assert!(*size_sweep().last().unwrap() < 1 << 20);
        assert_eq!(*field_sweep().last().unwrap(), 500);
    }
}
