//! The Fig 11 isolation experiment workloads.
//!
//! "A 'culprit' database sends CPU-intensive (due to an inefficient
//! indexing setup) queries that linearly ramp up to 500 QPS to hit scaling
//! limits of the test environment, and a 'bystander' database sends 100 QPS
//! of single-document fetches."

use firestore_core::database::doc;
use firestore_core::{Caller, FilterOp, FirestoreDatabase, FirestoreResult, Query, Value, Write};
use simkit::SimRng;

/// Names of the two databases.
pub const CULPRIT: &str = "culprit";
/// The well-behaved database.
pub const BYSTANDER: &str = "bystander";

/// Populate the culprit with data whose only serving plan is an expensive
/// zig-zag join over low-selectivity automatic indexes — the "inefficient
/// indexing setup". Each equality matches ~half the documents while the
/// conjunction matches almost nothing, so each query scans many entries.
pub fn setup_culprit(db: &FirestoreDatabase, docs: usize, rng: &mut SimRng) -> FirestoreResult<()> {
    for i in 0..docs {
        let a = rng.gen_range(2) as i64;
        let b = rng.gen_range(2) as i64;
        let w = Write::set(
            doc(&format!("/events/e{i:06}")),
            [
                ("a", Value::Int(a)),
                ("b", Value::Int(b)),
                ("payload", Value::Str("x".repeat(200))),
            ],
        );
        db.commit_writes(vec![w], &Caller::Service)?;
    }
    Ok(())
}

/// One culprit query: a conjunction with no composite index, forcing a
/// zig-zag join that scans a large fraction of both posting lists.
pub fn culprit_query(rng: &mut SimRng) -> Query {
    Query::parse("/events")
        .unwrap()
        .filter("a", FilterOp::Eq, rng.gen_range(2) as i64)
        .filter("b", FilterOp::Eq, rng.gen_range(2) as i64)
}

/// Populate the bystander with point-lookup targets.
pub fn setup_bystander(db: &FirestoreDatabase, docs: usize) -> FirestoreResult<()> {
    for i in 0..docs {
        let w = Write::set(
            doc(&format!("/profiles/p{i:04}")),
            [
                ("name", Value::Str(format!("user {i}"))),
                ("score", Value::Int(i as i64)),
            ],
        );
        db.commit_writes(vec![w], &Caller::Service)?;
    }
    Ok(())
}

/// One bystander operation: a single-document fetch.
pub fn bystander_doc(docs: usize, rng: &mut SimRng) -> firestore_core::DocumentName {
    doc(&format!("/profiles/p{:04}", rng.gen_range(docs as u64)))
}

/// The culprit's linear QPS ramp: from 0 to `peak` over `duration_s`,
/// evaluated at second `t`.
pub fn culprit_qps_at(t: f64, duration_s: f64, peak: f64) -> f64 {
    (peak * (t / duration_s)).clamp(0.0, peak)
}

#[cfg(test)]
mod tests {
    use super::*;
    use firestore_core::Consistency;
    use simkit::{Duration, SimClock};
    use spanner::SpannerDatabase;

    fn db() -> FirestoreDatabase {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        FirestoreDatabase::create_default(SpannerDatabase::new(clock))
    }

    #[test]
    fn culprit_queries_are_expensive() {
        let d = db();
        let mut rng = SimRng::new(1);
        setup_culprit(&d, 400, &mut rng).unwrap();
        let q = culprit_query(&mut rng);
        let result = d
            .run_query(&q, Consistency::Strong, &Caller::Service)
            .unwrap();
        // Zig-zag join scans a large share of both ~200-entry posting
        // lists even though it returns ~100 docs.
        assert!(result.stats.entries_examined > 150, "{:?}", result.stats);
        assert!(!result.documents.is_empty());
    }

    #[test]
    fn bystander_fetches_are_cheap() {
        let d = db();
        let mut rng = SimRng::new(2);
        setup_bystander(&d, 50).unwrap();
        let name = bystander_doc(50, &mut rng);
        let got = d
            .get_document(&name, Consistency::Strong, &Caller::Service)
            .unwrap();
        assert!(got.is_some());
    }

    #[test]
    fn ramp_is_linear_and_clamped() {
        assert_eq!(culprit_qps_at(0.0, 100.0, 500.0), 0.0);
        assert_eq!(culprit_qps_at(50.0, 100.0, 500.0), 250.0);
        assert_eq!(culprit_qps_at(100.0, 100.0, 500.0), 500.0);
        assert_eq!(culprit_qps_at(150.0, 100.0, 500.0), 500.0);
    }
}
