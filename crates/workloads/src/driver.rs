//! The measurement load driver.
//!
//! Drives a [`server::FirestoreService`] with Poisson arrivals at a target
//! QPS and measures per-request latency = Backend CPU queueing (from the
//! fair-share scheduler) + modeled storage/replication latency. A
//! configurable fraction of arrivals executes *for real* against the engine
//! — keeping the dataset live and continuously calibrating the CPU cost and
//! storage latency of each operation class — while the remainder are
//! cost-equivalent synthetic jobs, letting a laptop sustain the paper's
//! thousands of QPS for ten simulated minutes.

use crate::ycsb::{YcsbGenerator, YcsbOp};
use firestore_core::{FirestoreResult, RequestClass};
use server::fairshare::Job;
use server::FirestoreService;
use simkit::stats::Histogram;
use simkit::{Duration, SimRng, Timestamp};
use std::collections::HashMap;

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Offered load.
    pub target_qps: f64,
    /// Total run length (the paper uses 10 minutes).
    pub duration: Duration,
    /// Leading time excluded from the report (the paper measures the last
    /// 5 of 10 minutes).
    pub warmup: Duration,
    /// Execute one real engine operation per this many arrivals.
    pub sample_every: usize,
    /// Scheduler quantum.
    pub quantum: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            target_qps: 500.0,
            duration: Duration::from_secs(600),
            warmup: Duration::from_secs(300),
            sample_every: 50,
            quantum: Duration::from_micros(250),
            seed: 0xF1DE,
        }
    }
}

/// Models Spanner's load-based splitting lag during a rapid ramp: a write
/// rate beyond the currently split capacity concentrates commits on hot
/// tablets until splits catch up ("scale-up instead relies on ... dynamic
/// load splitting in Spanner, and this particularly affects writes",
/// §V-B1). Capacity starts at the conforming-traffic base (500 QPS) and
/// doubles roughly every three minutes of sustained load.
pub fn split_pressure(write_qps: f64, elapsed: Duration) -> f64 {
    let capacity = 500.0 * 2f64.powf(elapsed.as_secs_f64() / 180.0);
    (write_qps / capacity).max(1.0)
}

/// Measured output of one run. Latencies accumulate into memory-bounded
/// log-bucketed histograms (a ten-minute 30k-QPS run stays a few hundred
/// bytes instead of an unbounded `Vec<f64>`).
#[derive(Debug)]
pub struct DriverReport {
    /// Read latencies (ms), post-warmup.
    pub read_latency: Histogram,
    /// Update latencies (ms), post-warmup.
    pub update_latency: Histogram,
    /// Total operations offered.
    pub operations: u64,
    /// Real engine executions among them.
    pub real_executions: u64,
}

impl Default for DriverReport {
    fn default() -> Self {
        DriverReport {
            read_latency: Histogram::log_millis(),
            update_latency: Histogram::log_millis(),
            operations: 0,
            real_executions: 0,
        }
    }
}

/// Exponentially-weighted estimator of an operation class's cost.
#[derive(Clone, Copy, Debug)]
struct CostEstimate {
    cpu: Duration,
    storage: Duration,
}

impl CostEstimate {
    fn update(&mut self, cpu: Duration, storage: Duration) {
        let blend = |old: Duration, new: Duration| {
            Duration::from_nanos(
                ((old.as_nanos() as f64) * 0.9 + (new.as_nanos() as f64) * 0.1) as u64,
            )
        };
        self.cpu = blend(self.cpu, cpu);
        self.storage = blend(self.storage, storage);
    }
}

struct Inflight {
    is_read: bool,
    cpu: Duration,
    storage_latency: Duration,
}

/// The generic driver: submit per-database work, advance simulated time,
/// collect per-op latencies. Used directly by the isolation experiment and
/// via [`run_ycsb`] by the YCSB experiments.
pub struct LoadDriver<'a> {
    svc: &'a FirestoreService,
    next_job: u64,
    inflight: HashMap<u64, Inflight>,
    /// Completed `(database, is_read, submitted, latency)` tuples.
    pub outcomes: Vec<(String, bool, Timestamp, Duration)>,
}

impl<'a> LoadDriver<'a> {
    /// Create a driver over a service.
    pub fn new(svc: &'a FirestoreService) -> LoadDriver<'a> {
        LoadDriver {
            svc,
            next_job: 1,
            inflight: HashMap::new(),
            outcomes: Vec::new(),
        }
    }

    /// Submit one operation's backend work.
    pub fn submit(
        &mut self,
        database: &str,
        is_read: bool,
        cpu: Duration,
        storage_latency: Duration,
        at: Timestamp,
    ) {
        let id = self.next_job;
        self.next_job += 1;
        self.inflight.insert(
            id,
            Inflight {
                is_read,
                cpu,
                storage_latency,
            },
        );
        self.svc
            .backend
            .lock()
            .submit(Job::new(id, database, cpu, at));
    }

    /// Submit one operation's backend work *through the tenant control
    /// plane*. The gate may refuse it — throttle, quota, overload shed — in
    /// which case the work never reaches the scheduler and the rejection
    /// (carrying any `retry_after` hint) is returned for the caller's retry
    /// policy. Batch-class work is enqueued at batch priority, so the
    /// fair-share scheduler serves it only after the same database's
    /// latency-sensitive jobs.
    pub fn try_submit(
        &mut self,
        database: &str,
        class: RequestClass,
        is_read: bool,
        cpu: Duration,
        storage_latency: Duration,
        at: Timestamp,
    ) -> FirestoreResult<()> {
        self.svc.admit_work(database, class)?;
        let id = self.next_job;
        self.next_job += 1;
        self.inflight.insert(
            id,
            Inflight {
                is_read,
                cpu,
                storage_latency,
            },
        );
        let mut job = Job::new(id, database, cpu, at);
        if class == RequestClass::Batch {
            job = job.batch();
        }
        self.svc.backend.lock().submit(job);
        Ok(())
    }

    /// Advance the backend pool from `from` to `until`, collecting
    /// completions into [`LoadDriver::outcomes`].
    pub fn advance(&mut self, from: Timestamp, until: Timestamp, quantum: Duration) {
        let done = self.svc.backend.lock().advance(from, until, quantum);
        for job in done {
            if let Some(info) = self.inflight.remove(&job.id) {
                // Fair-share queueing delay = scheduler latency minus the
                // job's own CPU service time.
                let queue = job.latency().saturating_sub(info.cpu);
                self.svc.obs().metrics.observe_duration(
                    "phase_ms",
                    &[("db", &job.database), ("phase", "queue")],
                    queue,
                );
                let latency = job.latency() + info.storage_latency;
                self.outcomes
                    .push((job.database, info.is_read, job.submitted, latency));
            }
        }
        self.svc.clock().advance_to(until);
    }

    /// Jobs not yet completed.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }
}

/// Run the YCSB workload (Figs 7–8) against `database` on `svc`.
pub fn run_ycsb(
    svc: &FirestoreService,
    database: &str,
    generator: &YcsbGenerator,
    config: &DriverConfig,
) -> DriverReport {
    let mut rng = SimRng::new(config.seed);
    let db = svc.database(database).expect("database exists");
    let mut driver = LoadDriver::new(svc);
    let mut report = DriverReport::default();

    // Bootstrap cost estimates with one real op of each class.
    let mut read_cost = CostEstimate {
        cpu: Duration::from_micros(80),
        storage: Duration::from_millis(4),
    };
    let mut update_cost = CostEstimate {
        cpu: Duration::from_micros(120),
        storage: Duration::from_millis(14),
    };

    let start = svc.clock().now();
    let end = start + config.duration;
    let measure_from = start + config.warmup;
    let block = Duration::from_secs(1);
    let mut block_start = start;
    let mut arrivals_seen: u64 = 0;

    while block_start < end {
        let block_end = (block_start + block).min(end);
        // Poisson arrivals in this block, in time order.
        let mut arrivals: Vec<(Timestamp, YcsbOp)> = Vec::new();
        let mut t = 0.0f64;
        let block_secs = (block_end - block_start).as_secs_f64();
        loop {
            t += rng.exponential(1.0 / config.target_qps.max(1e-9));
            if t >= block_secs {
                break;
            }
            let at = block_start + Duration::from_millis_f64(t * 1000.0);
            arrivals.push((at, generator.next_op(&mut rng)));
        }
        // Interleave: the scheduler only sees a job once it has arrived.
        let mut cursor = block_start;
        for (at, op) in arrivals {
            if at > cursor {
                driver.advance(cursor, at, config.quantum);
                cursor = at;
            }
            arrivals_seen += 1;
            report.operations += 1;
            let is_read = op.is_read();
            let (cpu, storage) = if arrivals_seen.is_multiple_of(config.sample_every as u64) {
                // Real execution: refresh the estimators.
                report.real_executions += 1;
                let served = match &op {
                    YcsbOp::Read(name) => svc
                        .get_document(database, name, &firestore_core::Caller::Service, &mut rng)
                        .map(|(_, s)| s),
                    YcsbOp::Update(_) => generator.execute(&db, &op, &mut rng).map(|_| {
                        server::service::ServedRequest {
                            cpu_cost: svc
                                .cost_model()
                                .write_cost(2, generator.config().field_size),
                            storage_latency: svc.latency_model().spanner_commit(
                                2,
                                generator.config().field_size,
                                &mut rng,
                            ),
                            ..server::service::ServedRequest::default()
                        }
                    }),
                };
                match served {
                    Ok(s) => {
                        let est = if is_read {
                            &mut read_cost
                        } else {
                            &mut update_cost
                        };
                        est.update(s.cpu_cost, s.storage_latency);
                        (s.cpu_cost, s.storage_latency)
                    }
                    Err(_) => {
                        let est = if is_read { read_cost } else { update_cost };
                        (est.cpu, est.storage)
                    }
                }
            } else {
                // Synthetic: calibrated cost with model noise, plus the
                // split-pressure penalty of the current ramp state.
                let est = if is_read { read_cost } else { update_cost };
                let write_qps =
                    config.target_qps * (1.0 - generator.config().workload.read_proportion());
                let pressure = split_pressure(write_qps, block_start - start);
                let storage = if is_read {
                    svc.latency_model()
                        .spanner_read(1, &mut rng)
                        .mul_f64(pressure.powf(0.3))
                } else {
                    svc.latency_model()
                        .spanner_commit(2, generator.config().field_size, &mut rng)
                        .mul_f64(pressure.powf(0.7))
                };
                (est.cpu.mul_f64(rng.lognormal(0.0, 0.15)), storage)
            };
            driver.submit(database, is_read, cpu, storage, at);
        }
        driver.advance(cursor, block_end, config.quantum);
        // Auto-scaling observes the pool every block.
        svc.autoscale_backend(block_end);
        // Harvest outcomes.
        for (_db, is_read, submitted, latency) in driver.outcomes.drain(..) {
            if submitted >= measure_from {
                if is_read {
                    report.read_latency.record_duration(latency);
                } else {
                    report.update_latency.record_duration(latency);
                }
            }
        }
        block_start = block_end;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ycsb::{YcsbConfig, YcsbWorkload};
    use server::ServiceOptions;
    use simkit::SimClock;

    fn quick_config(qps: f64) -> DriverConfig {
        DriverConfig {
            target_qps: qps,
            duration: Duration::from_secs(20),
            warmup: Duration::from_secs(5),
            sample_every: 25,
            ..DriverConfig::default()
        }
    }

    fn setup(tasks: usize, autoscaling: bool) -> FirestoreService {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        let svc = FirestoreService::new(
            clock,
            ServiceOptions {
                backend_tasks: tasks,
                autoscaling,
                ..ServiceOptions::default()
            },
        );
        svc.create_database("ycsb");
        svc
    }

    #[test]
    fn driver_produces_latency_samples() {
        let svc = setup(4, true);
        let g = YcsbGenerator::new(YcsbConfig {
            records: 200,
            field_size: 100,
            workload: YcsbWorkload::A,
        });
        let mut rng = SimRng::new(1);
        g.load(&svc.database("ycsb").unwrap(), &mut rng).unwrap();
        let report = run_ycsb(&svc, "ycsb", &g, &quick_config(100.0));
        assert!(report.operations > 1000, "{} ops", report.operations);
        assert!(report.real_executions > 10);
        assert!(report.read_latency.total() > 100);
        assert!(report.update_latency.total() > 100);
        let p50 = report.read_latency.quantile(0.5).unwrap();
        assert!(p50 > 0.0 && p50 < 1000.0, "read p50 {p50}ms");
    }

    #[test]
    fn overload_inflates_latency() {
        // One core at high offered CPU load: queueing delay dominates.
        let run = |qps: f64| {
            let svc = setup(1, false);
            let g = YcsbGenerator::new(YcsbConfig {
                records: 100,
                field_size: 100,
                workload: YcsbWorkload::B,
            });
            let mut rng = SimRng::new(2);
            g.load(&svc.database("ycsb").unwrap(), &mut rng).unwrap();
            // Freeze autoscaling by using a tiny run before it reacts.
            let report = run_ycsb(
                &svc,
                "ycsb",
                &g,
                &DriverConfig {
                    target_qps: qps,
                    duration: Duration::from_secs(10),
                    warmup: Duration::from_secs(2),
                    ..DriverConfig::default()
                },
            );
            report.read_latency.quantile(0.99).unwrap_or(0.0)
        };
        let light = run(1000.0);
        let heavy = run(30_000.0);
        assert!(
            heavy > 2.0 * light,
            "p99 under heavy load ({heavy}ms) should dwarf light load ({light}ms)"
        );
    }
}
