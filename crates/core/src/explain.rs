//! EXPLAIN / EXPLAIN ANALYZE: render the planner's chosen access path as a
//! deterministic text tree, optionally joined with the executor's live
//! [`QueryStats`].
//!
//! The paper's planner compiles every query to index scans (§III-C, §IV-D3);
//! this module makes the compilation inspectable: which indexes were chosen,
//! how many zig-zag participants and `in`-union arms each has, what suffix
//! bounds the inequality contributed, and what result window was pushed down
//! into the executor. The ANALYZE variant appends the observed work counters
//! so billed cost ("entries examined") can be audited against the plan.
//!
//! Rendering is byte-deterministic: plans print in structural order, sizes
//! in bytes, no floats, no addresses — a fixed seed produces identical
//! EXPLAIN output across runs, so goldens can pin exact strings.

use crate::executor::QueryStats;
use crate::index::IndexCatalog;
use crate::matchtree::{DescentStep, DescentTrace};
use crate::planner::{Plan, PlanNode, ScanSpec, SuffixBound};
use crate::query::{FilterOp, Query};

fn op_str(op: FilterOp) -> &'static str {
    match op {
        FilterOp::Eq => "==",
        FilterOp::Lt => "<",
        FilterOp::Le => "<=",
        FilterOp::Gt => ">",
        FilterOp::Ge => ">=",
        FilterOp::ArrayContains => "array-contains",
        FilterOp::In => "in",
    }
}

fn bound_str(prefix: &str, open: &str, closed: &str, b: &SuffixBound) -> String {
    let op = if b.inclusive { closed } else { open };
    format!("{prefix}{op}({}B)", b.value_bytes.len())
}

fn scan_line(catalog: &IndexCatalog, spec: &ScanSpec) -> String {
    let desc = catalog
        .describe(spec.index)
        .unwrap_or_else(|| "unknown index".to_string());
    let mut line = format!("index #{} [{desc}] prefix={}B", spec.index.0, spec.prefix.len());
    if let Some(lower) = &spec.lower {
        line.push(' ');
        line.push_str(&bound_str("lower", ">", ">=", lower));
    }
    if let Some(upper) = &spec.upper {
        line.push(' ');
        line.push_str(&bound_str("upper", "<", "<=", upper));
    }
    line
}

/// Render the query header: collection, filters, orders, window inputs.
fn render_query(out: &mut String, query: &Query) {
    out.push_str(&format!("query: {}\n", query.collection));
    for f in &query.filters {
        out.push_str(&format!("  filter: {} {} {}\n", f.field, op_str(f.op), f.value));
    }
    for (field, dir) in &query.order_by {
        out.push_str(&format!("  order:  {field} {dir:?}\n"));
    }
    if query.offset > 0 {
        out.push_str(&format!("  offset: {}\n", query.offset));
    }
    if let Some(limit) = query.limit {
        out.push_str(&format!("  limit:  {limit}\n"));
    }
    if let Some(cursor) = &query.start_after {
        out.push_str(&format!("  start_after: {cursor}\n"));
    }
}

/// Render a [`Plan`] as a deterministic text tree (the EXPLAIN body).
pub fn render_plan(catalog: &IndexCatalog, query: &Query, plan: &Plan) -> String {
    let mut out = String::new();
    render_query(&mut out, query);
    out.push_str("plan:\n");
    match &plan.node {
        PlanNode::PrimaryScan { reverse } => {
            let dir = if *reverse { "reverse" } else { "forward" };
            out.push_str(&format!("  primary scan ({dir}) over Entities\n"));
        }
        PlanNode::IndexScans { scans, reverse } => {
            let dir = if *reverse { "reverse" } else { "forward" };
            if scans.len() > 1 {
                out.push_str(&format!("  zig-zag join ({} scans, {dir})\n", scans.len()));
            } else {
                out.push_str(&format!("  index scan ({dir})\n"));
            }
            for scan in scans {
                if scan.arms.len() > 1 {
                    out.push_str(&format!("    union ({} arms)\n", scan.arms.len()));
                    for arm in &scan.arms {
                        out.push_str(&format!("      {}\n", scan_line(catalog, arm)));
                    }
                } else {
                    out.push_str(&format!("    {}\n", scan_line(catalog, &scan.arms[0])));
                }
            }
        }
    }
    let w = &plan.window;
    let limit = w
        .limit
        .map(|l| l.to_string())
        .unwrap_or_else(|| "none".to_string());
    out.push_str(&format!("  window: offset={} limit={limit}", w.offset));
    if let Some(cursor) = &w.start_after {
        out.push_str(&format!(" start_after={cursor}"));
    }
    out.push('\n');
    out
}

/// Render EXPLAIN ANALYZE: the plan tree plus the observed executor work
/// counters from a real run of the query.
pub fn render_analyze(
    catalog: &IndexCatalog,
    query: &Query,
    plan: &Plan,
    stats: &QueryStats,
) -> String {
    let mut out = render_plan(catalog, query, plan);
    out.push_str("analyze:\n");
    out.push_str(&format!("  entries_examined: {}\n", stats.entries_examined));
    out.push_str(&format!("  entries_returned: {}\n", stats.entries_returned));
    out.push_str(&format!("  seeks:            {}\n", stats.seeks));
    out.push_str(&format!("  docs_fetched:     {}\n", stats.docs_fetched));
    out.push_str(&format!("  bytes_returned:   {}\n", stats.bytes_returned));
    out
}

/// Render a Query Matcher descent ([`DescentTrace`]) as a deterministic
/// text tree — EXPLAIN for the real-time matching path. Same rendering
/// rules as the plan tree: structural order, no floats, no addresses.
pub fn render_matcher_descent(trace: &DescentTrace) -> String {
    let mut out = String::new();
    out.push_str("matcher descent:\n");
    out.push_str(&format!("  shard: {}\n", trace.shard));
    out.push_str(&format!("  collection: {}\n", trace.collection));
    if !trace.bucket_found {
        out.push_str("  bucket: none (no registered query watches this collection)\n");
        out.push_str("  on_no_match: drop change\n");
        return out;
    }
    out.push_str(&format!("  bucket: {} shapes\n", trace.shapes_in_bucket));
    for step in &trace.steps {
        match step {
            DescentStep::Scan { shapes } => {
                out.push_str(&format!("    scan-list: {shapes} shapes\n"));
            }
            DescentStep::EqProbe { field, hits } => {
                out.push_str(&format!("    eq-probe {field}: {hits} hits\n"));
            }
            DescentStep::RangeProbe {
                field,
                examined,
                hits,
            } => {
                out.push_str(&format!(
                    "    range-probe {field}: {examined} examined, {hits} hits\n"
                ));
            }
        }
    }
    out.push_str(&format!(
        "  candidates: {} -> matched {} shapes, {} tokens\n",
        trace.candidates, trace.matched_shapes, trace.tokens
    ));
    if trace.matched_shapes == 0 {
        out.push_str("  on_no_match: drop change\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::encoding::Direction;
    use crate::query::{FilterOp, Query};

    use super::*;
    use crate::index::IndexCatalog;
    use crate::planner::plan_query;
    use spanner::database::DirectoryId;

    fn dir() -> DirectoryId {
        DirectoryId(7)
    }

    #[test]
    fn explain_primary_scan_renders_window() {
        let mut catalog = IndexCatalog::new();
        let query = Query::parse("rooms").unwrap().limit(3);
        let plan = plan_query(&mut catalog, dir(), &query).unwrap();
        let text = render_plan(&catalog, &query, &plan);
        assert!(text.contains("primary scan (forward) over Entities"), "{text}");
        assert!(text.contains("window: offset=0 limit=3"), "{text}");
    }

    #[test]
    fn explain_zigzag_names_both_indexes() {
        let mut catalog = IndexCatalog::new();
        let query = Query::parse("rooms")
            .unwrap()
            .filter("a", FilterOp::Eq, 1i64)
            .filter("b", FilterOp::Eq, 2i64);
        let plan = plan_query(&mut catalog, dir(), &query).unwrap();
        let text = render_plan(&catalog, &query, &plan);
        assert!(text.contains("zig-zag join (2 scans, forward)"), "{text}");
        assert!(text.contains("auto rooms.a"), "{text}");
        assert!(text.contains("auto rooms.b"), "{text}");
    }

    #[test]
    fn explain_in_filter_renders_union_arms() {
        let mut catalog = IndexCatalog::new();
        let query = Query::parse("rooms").unwrap().filter(
            "a",
            FilterOp::In,
            crate::document::Value::Array(vec![
                crate::document::Value::Int(1),
                crate::document::Value::Int(2),
                crate::document::Value::Int(3),
            ]),
        );
        let plan = plan_query(&mut catalog, dir(), &query).unwrap();
        let text = render_plan(&catalog, &query, &plan);
        assert!(text.contains("union (3 arms)"), "{text}");
    }

    #[test]
    fn explain_inequality_renders_bounds_and_direction() {
        let mut catalog = IndexCatalog::new();
        let query = Query::parse("rooms")
            .unwrap()
            .filter("a", FilterOp::Ge, 5i64)
            .order_by("a", Direction::Desc);
        let plan = plan_query(&mut catalog, dir(), &query).unwrap();
        let text = render_plan(&catalog, &query, &plan);
        assert!(text.contains("index scan (reverse)"), "{text}");
        assert!(text.contains("lower>=("), "{text}");
    }

    #[test]
    fn explain_matcher_descent_is_deterministic() {
        use crate::matchtree::MatcherTree;
        use crate::observer::DocumentChange;

        let mut tree: MatcherTree<u32> = MatcherTree::new(2);
        let q = Query::parse("rooms")
            .unwrap()
            .filter("a", FilterOp::Eq, 1i64);
        tree.register(1, &[0], dir(), &q);
        tree.register(2, &[0], dir(), &Query::parse("rooms").unwrap());
        let name = crate::database::doc("/rooms/r1");
        let change = DocumentChange {
            name: name.clone(),
            old: None,
            new: Some(crate::document::Document::new(
                name,
                vec![("a", crate::document::Value::Int(1))],
            )),
        };
        let t1 = render_matcher_descent(&tree.explain_change(0, dir(), &change));
        let t2 = render_matcher_descent(&tree.explain_change(0, dir(), &change));
        assert_eq!(t1, t2, "descent rendering must be deterministic");
        assert!(t1.contains("matcher descent:"), "{t1}");
        assert!(t1.contains("eq-probe a: 1 hits"), "{t1}");
        assert!(t1.contains("scan-list: 1 shapes"), "{t1}");
        assert!(t1.contains("matched 2 shapes, 2 tokens"), "{t1}");
        // A change nobody watches renders the no-match fallback.
        let other = crate::database::doc("/other/x");
        let miss = DocumentChange {
            name: other.clone(),
            old: None,
            new: Some(crate::document::Document::new(other, Vec::<(String, crate::document::Value)>::new())),
        };
        let t3 = render_matcher_descent(&tree.explain_change(0, dir(), &miss));
        assert!(t3.contains("on_no_match: drop change"), "{t3}");
    }

    #[test]
    fn analyze_appends_stats_block() {
        let mut catalog = IndexCatalog::new();
        let query = Query::parse("rooms").unwrap();
        let plan = plan_query(&mut catalog, dir(), &query).unwrap();
        let stats = QueryStats {
            entries_examined: 10,
            entries_returned: 4,
            seeks: 2,
            docs_fetched: 4,
            bytes_returned: 128,
        };
        let text = render_analyze(&catalog, &query, &plan, &stats);
        assert!(text.contains("entries_examined: 10"), "{text}");
        assert!(text.contains("bytes_returned:   128"), "{text}");
    }
}
