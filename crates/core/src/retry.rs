//! Retry policies, deterministic backoff, deadlines, and retry budgets.
//!
//! The paper's Server SDKs "automatically retry transient errors with
//! backoff" (§III-D), and §VI warns that naive retries amplify overload:
//! admission-control rejections must not turn into retry storms. This module
//! provides the shared machinery:
//!
//! * [`RetryPolicy`] / [`Backoff`] — exponential backoff with deterministic
//!   jitter drawn from a seeded [`SimRng`], so a retried run replays
//!   identically. Delays are *bounded*: jitter is applied downward from the
//!   exponential value, so `max_backoff` is a hard cap.
//! * [`Deadline`] — a per-request time budget on the simulated clock that
//!   propagates through the write pipeline (commit → Prepare → Accept) by
//!   capping the commit window's maximum timestamp.
//! * [`RetryBudget`] — a token bucket that only permits retries while the
//!   recent success rate keeps tokens above half the cap, preventing
//!   rejected traffic from multiplying itself.

use simkit::{Duration, SimClock, SimRng, Timestamp};

/// Parameters of an exponential-backoff retry loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub initial_backoff: Duration,
    /// Hard cap on any single delay.
    pub max_backoff: Duration,
    /// Exponential growth factor between attempts.
    pub multiplier: f64,
    /// Total attempts (first try included).
    pub max_attempts: u32,
    /// Fraction of each delay randomized away (0.0 = none, 1.0 = full
    /// jitter). Jitter is subtractive, so delays never exceed the
    /// un-jittered exponential value.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(5),
            multiplier: 2.0,
            max_attempts: 5,
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt).
    pub fn no_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Builder: set the attempt limit.
    pub fn with_max_attempts(mut self, n: u32) -> RetryPolicy {
        self.max_attempts = n;
        self
    }

    /// Builder: set the initial backoff.
    pub fn with_initial_backoff(mut self, d: Duration) -> RetryPolicy {
        self.initial_backoff = d;
        self
    }

    /// Builder: set the backoff cap.
    pub fn with_max_backoff(mut self, d: Duration) -> RetryPolicy {
        self.max_backoff = d;
        self
    }
}

/// The delay sequence of one retry loop. Deterministic given the seed.
#[derive(Debug)]
pub struct Backoff {
    policy: RetryPolicy,
    rng: SimRng,
    attempt: u32,
}

impl Backoff {
    /// Start a backoff sequence under `policy`, seeded for determinism.
    pub fn new(policy: RetryPolicy, seed: u64) -> Backoff {
        Backoff {
            policy,
            rng: SimRng::new(seed),
            attempt: 0,
        }
    }

    /// Attempts made so far (calls to [`Backoff::next_delay`]).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The delay before the next retry, or `None` when the attempt limit is
    /// exhausted. The `n`-th delay is
    /// `min(max_backoff, initial * multiplier^n)` scaled down by up to
    /// `jitter` of itself, so `max_backoff` bounds every delay.
    pub fn next_delay(&mut self) -> Option<Duration> {
        // attempt counts *tries*; the first try burns one slot and only the
        // remaining slots produce delays.
        if self.attempt + 1 >= self.policy.max_attempts {
            return None;
        }
        let exp = self.policy.initial_backoff.as_nanos() as f64
            * self.policy.multiplier.powi(self.attempt as i32);
        let capped = exp.min(self.policy.max_backoff.as_nanos() as f64);
        let scale = 1.0 - self.policy.jitter * self.rng.next_f64();
        self.attempt += 1;
        Some(Duration::from_nanos((capped * scale) as u64))
    }
}

/// A per-request time budget on the simulated clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadline {
    ts: Timestamp,
}

impl Deadline {
    /// A deadline `budget` from now on `clock`.
    pub fn after(clock: &SimClock, budget: Duration) -> Deadline {
        Deadline {
            ts: clock.now() + budget,
        }
    }

    /// A deadline at an absolute simulated timestamp.
    pub fn at(ts: Timestamp) -> Deadline {
        Deadline { ts }
    }

    /// The absolute expiry timestamp.
    pub fn ts(&self) -> Timestamp {
        self.ts
    }

    /// Whether the deadline has passed at `now`.
    pub fn expired(&self, now: Timestamp) -> bool {
        now >= self.ts
    }

    /// Budget left at `now` (zero once expired).
    pub fn remaining(&self, now: Timestamp) -> Duration {
        self.ts.saturating_sub(now)
    }
}

/// A gRPC-style client retry budget: a token bucket that earns back slowly
/// on success and spends on every failed attempt. Retries are allowed only
/// while the bucket stays above half its capacity, so a burst of failures
/// quickly silences retries instead of amplifying them into a storm.
#[derive(Debug)]
pub struct RetryBudget {
    capacity: f64,
    tokens: f64,
    refill_per_success: f64,
}

impl Default for RetryBudget {
    fn default() -> RetryBudget {
        RetryBudget::new(10.0, 0.1)
    }
}

impl RetryBudget {
    /// A budget of `capacity` tokens that earns `refill_per_success` tokens
    /// back per successful request.
    pub fn new(capacity: f64, refill_per_success: f64) -> RetryBudget {
        RetryBudget {
            capacity,
            tokens: capacity,
            refill_per_success,
        }
    }

    /// Whether a retry may be attempted now.
    pub fn can_retry(&self) -> bool {
        self.tokens > self.capacity / 2.0
    }

    /// Record a failed attempt (spends one token).
    pub fn record_failure(&mut self) {
        self.tokens = (self.tokens - 1.0).max(0.0);
    }

    /// Record a successful request (earns back a fraction of a token).
    pub fn record_success(&mut self) {
        self.tokens = (self.tokens + self.refill_per_success).min(self.capacity);
    }

    /// Remaining tokens (for tests and metrics).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut b = Backoff::new(RetryPolicy::default().with_max_attempts(8), seed);
            std::iter::from_fn(|| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(collect(1), collect(1));
        assert_ne!(collect(1), collect(2));
    }

    #[test]
    fn backoff_respects_attempt_limit_and_cap() {
        let policy = RetryPolicy {
            initial_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(400),
            multiplier: 2.0,
            max_attempts: 6,
            jitter: 0.5,
        };
        let mut b = Backoff::new(policy, 7);
        let delays: Vec<_> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(delays.len(), 5, "max_attempts-1 delays");
        for d in &delays {
            assert!(*d <= policy.max_backoff, "delay {d:?} exceeds cap");
        }
        // With 50% jitter the floor is half the exponential value.
        assert!(delays[0] >= Duration::from_millis(50));
    }

    #[test]
    fn no_retry_policy_yields_no_delays() {
        let mut b = Backoff::new(RetryPolicy::no_retry(), 1);
        assert_eq!(b.next_delay(), None);
    }

    #[test]
    fn deadline_expiry_and_remaining() {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        let d = Deadline::after(&clock, Duration::from_millis(100));
        assert!(!d.expired(clock.now()));
        assert_eq!(d.remaining(clock.now()), Duration::from_millis(100));
        clock.advance(Duration::from_millis(150));
        assert!(d.expired(clock.now()));
        assert_eq!(d.remaining(clock.now()), Duration::ZERO);
    }

    #[test]
    fn retry_budget_silences_storms() {
        let mut b = RetryBudget::new(10.0, 0.1);
        assert!(b.can_retry());
        for _ in 0..5 {
            b.record_failure();
        }
        assert!(!b.can_retry(), "half-drained bucket refuses retries");
        // Successes slowly earn the budget back.
        for _ in 0..20 {
            b.record_success();
        }
        assert!(b.can_retry());
    }
}
