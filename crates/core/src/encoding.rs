//! Order-preserving encoding of field values for `IndexEntries` keys.
//!
//! "The encoding of the n-tuple of values in *values* preserves the index's
//! desired sort order" (§IV-D1), so that "a linear scan of a range of
//! IndexEntries rows corresponds to a linear scan of a range of the logical
//! Firestore index". Firestore also allows "sorting on any value including
//! arrays and maps and sorting across fields with inconsistent types" — one
//! reason its queries cannot be pushed down to Spanner.
//!
//! The total order implemented here (matching production Firestore):
//!
//! ```text
//! null < bool(false < true) < numbers(NaN first, int and double together)
//!      < timestamp < string < bytes < reference < array < map
//! ```
//!
//! * Numbers are encoded as an order-preserving transform of their `f64`
//!   value, so `Int(3)` and `Double(3.0)` encode identically and sort
//!   numerically. Integers of magnitude above 2^53 round to the nearest
//!   representable double in the *index* (the stored document keeps the
//!   exact value) — a documented precision trade of this reproduction.
//! * `-0.0` is normalized to `0.0`; `NaN` sorts before every other number.
//! * Strings and bytes are escaped (`0x00 → 0x00 0xFF`) and terminated
//!   (`0x00 0x01`), making every encoding prefix-free: no value's encoding
//!   is a prefix of a different value's encoding, so tuple concatenation
//!   preserves lexicographic tuple order.
//! * A descending field is the bytewise complement of the ascending
//!   encoding (order-reversing and still prefix-free).

use crate::document::Value;

/// Type tags, in sort order.
const TAG_NULL: u8 = 0x10;
const TAG_FALSE: u8 = 0x18;
const TAG_TRUE: u8 = 0x19;
const TAG_NAN: u8 = 0x20;
const TAG_NUMBER: u8 = 0x21;
const TAG_TIMESTAMP: u8 = 0x28;
const TAG_STRING: u8 = 0x30;
const TAG_BYTES: u8 = 0x38;
const TAG_REFERENCE: u8 = 0x40;
const TAG_ARRAY: u8 = 0x48;
const TAG_MAP: u8 = 0x50;
/// Terminates arrays and maps; sorts before every element tag, so shorter
/// composites sort first (prefix order).
const TAG_END: u8 = 0x00;

/// Sort direction of an indexed field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

impl Direction {
    /// The opposite direction.
    pub fn reversed(self) -> Direction {
        match self {
            Direction::Asc => Direction::Desc,
            Direction::Desc => Direction::Asc,
        }
    }
}

/// Order-preserving byte transform of an `f64`.
fn sortable_f64(x: f64) -> [u8; 8] {
    let x = if x == 0.0 { 0.0 } else { x }; // normalize -0.0
    let bits = x.to_bits();
    let flipped = if bits & 0x8000_0000_0000_0000 != 0 {
        !bits // negative: complement everything
    } else {
        bits | 0x8000_0000_0000_0000 // positive: set sign bit
    };
    flipped.to_be_bytes()
}

fn encode_escaped(bytes: &[u8], out: &mut Vec<u8>) {
    for &b in bytes {
        if b == 0x00 {
            out.push(0x00);
            out.push(0xFF);
        } else {
            out.push(b);
        }
    }
    out.push(0x00);
    out.push(0x01);
}

/// Append the ascending order-preserving encoding of `v` to `out`.
pub fn encode_value_asc(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => encode_number(*i as f64, out),
        Value::Double(x) => encode_number(*x, out),
        Value::Timestamp(us) => {
            out.push(TAG_TIMESTAMP);
            // Biased so negative timestamps sort first.
            out.extend_from_slice(&((*us as u64) ^ 0x8000_0000_0000_0000).to_be_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STRING);
            encode_escaped(s.as_bytes(), out);
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            encode_escaped(b, out);
        }
        Value::Reference(r) => {
            out.push(TAG_REFERENCE);
            encode_escaped(&r.encode(), out);
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            for i in items {
                encode_value_asc(i, out);
            }
            out.push(TAG_END);
        }
        Value::Map(m) => {
            out.push(TAG_MAP);
            for (k, val) in m {
                out.push(TAG_STRING);
                encode_escaped(k.as_bytes(), out);
                encode_value_asc(val, out);
            }
            out.push(TAG_END);
        }
    }
}

fn encode_number(x: f64, out: &mut Vec<u8>) {
    if x.is_nan() {
        out.push(TAG_NAN);
    } else {
        out.push(TAG_NUMBER);
        out.extend_from_slice(&sortable_f64(x));
    }
}

/// Append the encoding of `v` in the given direction.
pub fn encode_value(v: &Value, dir: Direction, out: &mut Vec<u8>) {
    match dir {
        Direction::Asc => encode_value_asc(v, out),
        Direction::Desc => {
            let start = out.len();
            encode_value_asc(v, out);
            for b in &mut out[start..] {
                *b = !*b;
            }
        }
    }
}

/// The ascending encoding as a standalone vector.
pub fn encoded(v: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_value_asc(v, &mut out);
    out
}

/// The `(first_tag, last_tag)` of the *type region* `v` belongs to in the
/// ascending encoding: every value of the same type encodes with a leading
/// byte in `first_tag..=last_tag`, and no other type's encoding does.
///
/// Inequality predicates only match values of the same type (production
/// Firestore semantics: `n > 2` never returns strings even though strings
/// sort above numbers); the planner turns these tags into scan bounds.
pub fn class_tags(v: &Value) -> (u8, u8) {
    match v {
        Value::Null => (TAG_NULL, TAG_NULL),
        Value::Bool(_) => (TAG_FALSE, TAG_TRUE),
        Value::Int(_) | Value::Double(_) => (TAG_NAN, TAG_NUMBER),
        Value::Timestamp(_) => (TAG_TIMESTAMP, TAG_TIMESTAMP),
        Value::Str(_) => (TAG_STRING, TAG_STRING),
        Value::Bytes(_) => (TAG_BYTES, TAG_BYTES),
        Value::Reference(_) => (TAG_REFERENCE, TAG_REFERENCE),
        Value::Array(_) => (TAG_ARRAY, TAG_ARRAY),
        Value::Map(_) => (TAG_MAP, TAG_MAP),
    }
}

/// Whether two values belong to the same ordering type class.
pub fn same_class(a: &Value, b: &Value) -> bool {
    class_tags(a) == class_tags(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::DocumentName;
    use std::cmp::Ordering;

    fn enc(v: &Value) -> Vec<u8> {
        encoded(v)
    }

    fn assert_order(a: &Value, b: &Value) {
        assert_eq!(
            enc(a).cmp(&enc(b)),
            Ordering::Less,
            "expected {a:?} < {b:?}\n  {:02x?}\n  {:02x?}",
            enc(a),
            enc(b)
        );
    }

    #[test]
    fn cross_type_order_matches_firestore() {
        let reference = Value::Reference(DocumentName::parse("/a/b").unwrap());
        let ordered = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Double(f64::NAN),
            Value::Double(f64::NEG_INFINITY),
            Value::Int(-5),
            Value::Double(-0.5),
            Value::Int(0),
            Value::Double(0.5),
            Value::Int(1),
            Value::Double(f64::INFINITY),
            Value::Timestamp(-10),
            Value::Timestamp(10),
            Value::Str("".into()),
            Value::Str("a".into()),
            Value::Bytes(vec![]),
            Value::Bytes(vec![0]),
            reference,
            Value::Array(vec![]),
            Value::Array(vec![Value::Int(1)]),
            Value::Map(Default::default()),
            Value::map([("a", Value::Int(1))]),
        ];
        for w in ordered.windows(2) {
            assert_order(&w[0], &w[1]);
        }
    }

    #[test]
    fn int_and_double_sort_together() {
        assert_order(&Value::Int(2), &Value::Double(2.5));
        assert_order(&Value::Double(2.5), &Value::Int(3));
        assert_eq!(enc(&Value::Int(3)), enc(&Value::Double(3.0)));
    }

    #[test]
    fn negative_zero_equals_zero() {
        assert_eq!(enc(&Value::Double(-0.0)), enc(&Value::Double(0.0)));
        assert_eq!(enc(&Value::Double(0.0)), enc(&Value::Int(0)));
    }

    #[test]
    fn string_order_is_bytewise() {
        let strs = ["", "a", "a\0b", "ab", "b", "ba"];
        for w in strs.windows(2) {
            assert_order(&Value::Str(w[0].into()), &Value::Str(w[1].into()));
        }
    }

    #[test]
    fn string_with_nul_is_prefix_free() {
        // "a" must not be a byte-prefix of the encoding of "a\0x".
        let a = enc(&Value::Str("a".into()));
        let anul = enc(&Value::Str("a\0x".into()));
        assert!(!anul.starts_with(&a));
        assert_order(&Value::Str("a".into()), &Value::Str("a\0x".into()));
    }

    #[test]
    fn array_prefix_order() {
        let short = Value::Array(vec![Value::Int(1)]);
        let long = Value::Array(vec![Value::Int(1), Value::Int(0)]);
        let bigger = Value::Array(vec![Value::Int(2)]);
        assert_order(&short, &long);
        assert_order(&long, &bigger);
    }

    #[test]
    fn map_order_by_sorted_keys_then_values() {
        let a1 = Value::map([("a", Value::Int(1))]);
        let a2 = Value::map([("a", Value::Int(2))]);
        let b1 = Value::map([("b", Value::Int(1))]);
        let a1b = Value::map([("a", Value::Int(1)), ("b", Value::Int(0))]);
        assert_order(&a1, &a2);
        assert_order(&a2, &b1);
        assert_order(&a1, &a1b);
    }

    #[test]
    fn descending_reverses_order() {
        let pairs = [
            (Value::Int(1), Value::Int(2)),
            (Value::Str("a".into()), Value::Str("b".into())),
            (Value::Null, Value::Bool(false)),
        ];
        for (a, b) in pairs {
            let mut da = Vec::new();
            let mut db = Vec::new();
            encode_value(&a, Direction::Desc, &mut da);
            encode_value(&b, Direction::Desc, &mut db);
            assert_eq!(
                da.cmp(&db),
                Ordering::Greater,
                "{a:?} desc should sort after {b:?}"
            );
        }
    }

    #[test]
    fn encodings_are_deterministic() {
        let v = Value::map([("x", Value::Array(vec![Value::Int(1), Value::from("s")]))]);
        assert_eq!(enc(&v), enc(&v.clone()));
    }

    #[test]
    fn timestamps_biased_ordering() {
        let ts = [-1_000_000i64, -1, 0, 1, 1_000_000];
        for w in ts.windows(2) {
            assert_order(&Value::Timestamp(w[0]), &Value::Timestamp(w[1]));
        }
    }

    #[test]
    fn equal_values_encode_equal() {
        assert_eq!(enc(&Value::from("x")), enc(&Value::from("x")));
        assert_eq!(
            enc(&Value::map([("k", Value::Int(1))])),
            enc(&Value::map([("k", Value::Int(1))]))
        );
    }
}
