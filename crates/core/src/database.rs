//! `FirestoreDatabase`: the assembled engine.
//!
//! One `FirestoreDatabase` corresponds to one customer database: a directory
//! inside a shared Spanner database, an index catalog, optional security
//! rules, a commit observer (the Real-time Cache), write triggers, and the
//! read/write/query entry points the Frontend exposes.

use crate::document::{Document, Value};
use crate::error::{FirestoreError, FirestoreResult};
use crate::executor::{self, QueryResult, ReadAccess, ENTITIES};
use crate::gate::{GatedOp, RequestClass, TenantGate};
use crate::index::{IndexCatalog, IndexId, IndexState, IndexedField};
use crate::observer::{CommitObserver, CommitOutcome, DocumentChange, NullObserver};
use crate::path::{CollectionPath, DocumentName};
use crate::planner::plan_query;
use crate::query::Query;
use crate::retry::{Backoff, Deadline, RetryPolicy};
use crate::triggers::TriggerRegistry;
#[cfg(test)]
use crate::write::Precondition;
use crate::write::{self, Caller, Write, WriteResult, WriteStats};
use parking_lot::RwLock;
use rules::{Method, RequestContext, Ruleset};
use simkit::{Duration, Obs, Timestamp};
use spanner::database::DirectoryId;
use spanner::messaging::MessageQueue;
use spanner::{ReadWriteTransaction, SpannerDatabase};
use simkit::history::{HistoryEvent, HistoryRecorder};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Table holding idempotence-ledger rows: one row per client-supplied dedup
/// id, written in the same Spanner transaction as the writes it guards, so
/// "applied" and "recorded as applied" are atomic — even across a server
/// crash and redo-log recovery.
pub const WRITE_LEDGER: &str = "WriteLedger";

/// Read consistency of a non-transactional read or query (§III-C: "point-in-
/// time queries that are either strongly-consistent or from a recent
/// timestamp").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Consistency {
    /// Strongly consistent: sees every write acknowledged before the read.
    Strong,
    /// Read at an explicit (possibly slightly stale) timestamp.
    AtTimestamp(Timestamp),
}

/// Options for creating a database.
#[derive(Clone, Debug)]
pub struct DatabaseOptions {
    /// Human-readable database id (used by the multi-tenant scheduler).
    pub database_id: String,
    /// Window added to "now" for the max commit timestamp `M` handed to
    /// Prepare (§IV-D2 step 5).
    pub max_commit_window: Duration,
}

impl Default for DatabaseOptions {
    fn default() -> Self {
        DatabaseOptions {
            database_id: "(default)".to_string(),
            max_commit_window: Duration::from_secs(10),
        }
    }
}

/// The installed security rules: the parsed ruleset (retained as the
/// reference interpreter) plus its compiled first-match decision tree.
/// Serving decisions come from the compiled tree; under debug assertions
/// every decision is cross-checked against the interpreter, so the whole
/// debug test suite doubles as an equivalence harness.
struct RulesEngine {
    ruleset: Ruleset,
    compiled: rules::CompiledRules,
}

impl RulesEngine {
    fn new(ruleset: Ruleset) -> RulesEngine {
        let compiled = rules::compile(&ruleset);
        RulesEngine { ruleset, compiled }
    }

    fn allows(&self, req: &RequestContext, data: &dyn rules::DataSource, obs: Option<&Obs>) -> bool {
        let (decision, residual) = self.compiled.decide_traced(req, data);
        if cfg!(debug_assertions) {
            let reference = self.ruleset.decide(req, data);
            assert_eq!(
                decision, reference,
                "compiled rules diverged from the interpreter for {:?} /{}",
                req.method,
                req.path.join("/")
            );
        }
        if let Some(o) = obs {
            // Bounded cardinality: two unlabelled counters. Their ratio is
            // the fraction of authorization decisions that paid the
            // residual-expression interpreter fallback.
            o.metrics.incr("rules.decisions", &[], 1);
            if residual {
                o.metrics.incr("rules.residual_hits", &[], 1);
            }
        }
        decision.allowed
    }
}

struct Inner {
    spanner: SpannerDatabase,
    dir: DirectoryId,
    catalog: RwLock<IndexCatalog>,
    ruleset: RwLock<Option<RulesEngine>>,
    observer: RwLock<Arc<dyn CommitObserver>>,
    triggers: TriggerRegistry,
    queue: MessageQueue,
    options: DatabaseOptions,
    /// Control-plane hook: when installed, every entry point consults it
    /// before doing engine work. `None` (the default) means ungated.
    gate: RwLock<Option<Arc<dyn TenantGate>>>,
    /// Oracle mutation toggle: skip the dedup-ledger read in
    /// [`FirestoreDatabase::commit_writes_dedup`], re-applying retried
    /// mutations — a deliberate exactly-once bug the oracle must catch.
    oracle_ignore_dedup: AtomicBool,
}

/// A Firestore database handle. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct FirestoreDatabase {
    inner: Arc<Inner>,
}

impl FirestoreDatabase {
    /// Create (or attach) a Firestore database on `spanner`, allocating a
    /// fresh directory.
    pub fn create(spanner: SpannerDatabase, options: DatabaseOptions) -> FirestoreDatabase {
        spanner.create_table(ENTITIES);
        spanner.create_table(crate::executor::INDEX_ENTRIES);
        spanner.create_table(WRITE_LEDGER);
        let dir = spanner.allocate_directory();
        let queue = MessageQueue::new(spanner.clone());
        FirestoreDatabase {
            inner: Arc::new(Inner {
                spanner,
                dir,
                catalog: RwLock::new(IndexCatalog::new()),
                ruleset: RwLock::new(None),
                observer: RwLock::new(Arc::new(NullObserver)),
                triggers: TriggerRegistry::new(),
                queue,
                options,
                gate: RwLock::new(None),
                oracle_ignore_dedup: AtomicBool::new(false),
            }),
        }
    }

    /// Create with default options.
    pub fn create_default(spanner: SpannerDatabase) -> FirestoreDatabase {
        FirestoreDatabase::create(spanner, DatabaseOptions::default())
    }

    /// This database's id.
    pub fn id(&self) -> &str {
        &self.inner.options.database_id
    }

    /// The underlying Spanner handle.
    pub fn spanner(&self) -> &SpannerDatabase {
        &self.inner.spanner
    }

    /// The directory this database occupies.
    pub fn directory(&self) -> DirectoryId {
        self.inner.dir
    }

    /// The observability handle, if one was attached to the underlying
    /// Spanner database (the service attaches one handle for the whole
    /// stack, so spans from every layer share one trace).
    pub fn obs(&self) -> Option<Obs> {
        self.inner.spanner.obs()
    }

    /// The consistency-oracle history recorder attached to the underlying
    /// Spanner database, if any (one recorder serves the whole stack).
    pub fn history(&self) -> Option<Arc<HistoryRecorder>> {
        self.inner.spanner.history()
    }

    /// Oracle mutation toggle (test-only): when enabled,
    /// [`FirestoreDatabase::commit_writes_dedup`] skips the ledger lookup
    /// and re-applies retried mutations — a seeded exactly-once bug the
    /// consistency oracle must detect.
    pub fn oracle_ignore_dedup_ledger(&self, ignore: bool) {
        self.inner.oracle_ignore_dedup.store(ignore, Ordering::SeqCst);
    }

    /// Record the executor's work counters into the metrics registry and
    /// onto the enclosing span, labelled with this database's id.
    fn observe_query_stats(&self, obs: &Obs, kind: &str, stats: &crate::executor::QueryStats) {
        let labels = [("db", self.id()), ("kind", kind)];
        obs.metrics.incr("query.runs", &labels, 1);
        obs.metrics
            .incr("query.entries_examined", &labels, stats.entries_examined as u64);
        obs.metrics
            .incr("query.entries_returned", &labels, stats.entries_returned as u64);
        obs.metrics.incr("query.seeks", &labels, stats.seeks as u64);
        obs.metrics
            .incr("query.docs_fetched", &labels, stats.docs_fetched as u64);
        obs.metrics
            .incr("query.bytes_returned", &labels, stats.bytes_returned as u64);
    }

    /// The transactional message queue (used by triggers).
    pub fn queue(&self) -> &MessageQueue {
        &self.inner.queue
    }

    /// The trigger registry.
    pub fn triggers(&self) -> &TriggerRegistry {
        &self.inner.triggers
    }

    /// Install (or replace) the security rules. The ruleset is compiled to
    /// a first-match decision tree at install time; authorization decisions
    /// are served from the compiled tree.
    pub fn set_rules(&self, source: &str) -> FirestoreResult<()> {
        let ruleset = rules::parse_ruleset(source)
            .map_err(|e| FirestoreError::InvalidArgument(e.to_string()))?;
        *self.inner.ruleset.write() = Some(RulesEngine::new(ruleset));
        Ok(())
    }

    /// Render the compiled rules decision tree (EXPLAIN for the
    /// authorization path), or `None` if no rules are installed.
    pub fn explain_rules(&self) -> Option<String> {
        self.inner
            .ruleset
            .read()
            .as_ref()
            .map(|engine| engine.compiled.render())
    }

    /// Remove the security rules (all third-party access denied).
    pub fn clear_rules(&self) {
        *self.inner.ruleset.write() = None;
    }

    /// Attach the Real-time Cache (or other observer) to the write path.
    pub fn set_observer(&self, observer: Arc<dyn CommitObserver>) {
        *self.inner.observer.write() = observer;
    }

    /// Install (or remove) the tenant gate. The serving layer's control
    /// plane installs one at provisioning time so that every entry point —
    /// including client-SDK flushes that call
    /// [`FirestoreDatabase::commit_writes_dedup`] directly — is subject to
    /// admission and throttle policy. Ungated databases admit everything.
    pub fn set_gate(&self, gate: Option<Arc<dyn TenantGate>>) {
        *self.inner.gate.write() = gate;
    }

    /// Consult the tenant gate (if installed) for one operation. Requests
    /// entering through the engine directly are interactive; batch traffic
    /// is classified at the service layer.
    fn check_gate(&self, op: GatedOp) -> FirestoreResult<()> {
        let gate = self.inner.gate.read();
        match gate.as_ref() {
            Some(g) => g.check(op, RequestClass::Interactive),
            None => Ok(()),
        }
    }

    /// Run `f` with mutable access to the index catalog.
    pub fn with_catalog<R>(&self, f: impl FnOnce(&mut IndexCatalog) -> R) -> R {
        f(&mut self.inner.catalog.write())
    }

    /// Exempt a field from automatic indexing (§III-B).
    pub fn add_index_exemption(&self, collection_id: &str, field: &str) {
        self.inner
            .catalog
            .write()
            .add_exemption(collection_id, field);
    }

    /// The strong read timestamp.
    pub fn strong_read_ts(&self) -> Timestamp {
        self.inner.spanner.strong_read_ts()
    }

    fn read_ts(&self, c: Consistency) -> Timestamp {
        match c {
            Consistency::Strong => self.strong_read_ts(),
            Consistency::AtTimestamp(ts) => ts,
        }
    }

    // --- reads --------------------------------------------------------------

    /// Fetch one document.
    pub fn get_document(
        &self,
        name: &DocumentName,
        consistency: Consistency,
        caller: &Caller,
    ) -> FirestoreResult<Option<Document>> {
        self.check_gate(GatedOp::Get)?;
        let ts = self.read_ts(consistency);
        let key = self.inner.dir.key(&name.encode());
        let row = self
            .inner
            .spanner
            .snapshot_read_versioned(ENTITIES, &key, ts)?;
        let doc = match row {
            None => None,
            Some((bytes, version_ts)) => Some(
                write::decode_from_storage(name.clone(), &bytes, version_ts)
                    .ok_or_else(|| FirestoreError::Internal(format!("corrupt document {name}")))?,
            ),
        };
        if caller.is_third_party() {
            self.authorize_read(name, doc.as_ref(), Method::Get, caller, ts)?;
        }
        if let Some(h) = self.history() {
            h.record(HistoryEvent::DocRead {
                dir: self.inner.dir.prefix(),
                ts,
                name: name.to_string(),
                digest: doc.as_ref().map(crate::checker::doc_digest),
            });
        }
        Ok(doc)
    }

    fn authorize_read(
        &self,
        name: &DocumentName,
        doc: Option<&Document>,
        method: Method,
        caller: &Caller,
        ts: Timestamp,
    ) -> FirestoreResult<()> {
        let engine = self.inner.ruleset.read();
        let Some(engine) = engine.as_ref() else {
            return Err(FirestoreError::PermissionDenied(
                "no security rules installed; third-party access denied".into(),
            ));
        };
        let doc_path: Vec<&str> = name.segments().iter().map(String::as_str).collect();
        let req = RequestContext::for_document(
            method,
            &doc_path,
            caller.auth(),
            doc.map(|d| write::fields_to_rule(&d.fields)),
            None,
        );
        let source = write::SnapshotDataSource {
            spanner: &self.inner.spanner,
            dir: self.inner.dir,
            ts,
        };
        if engine.allows(&req, &source, self.obs().as_ref()) {
            Ok(())
        } else {
            Err(FirestoreError::PermissionDenied(format!(
                "{method:?} {name} denied by rules"
            )))
        }
    }

    /// Run a query outside any transaction (lock-free timestamp read).
    pub fn run_query(
        &self,
        query: &Query,
        consistency: Consistency,
        caller: &Caller,
    ) -> FirestoreResult<QueryResult> {
        self.check_gate(GatedOp::Query)?;
        let ts = self.read_ts(consistency);
        let obs = self.obs();
        let plan = {
            let span = obs.as_ref().map(|o| o.tracer.span("query.plan"));
            let plan = plan_query(&mut self.inner.catalog.write(), self.inner.dir, query)?;
            if let Some(s) = &span {
                s.attr("collection", &query.collection);
                s.attr("joined_indexes", plan.joined_indexes());
            }
            plan
        };
        let result = {
            let span = obs.as_ref().map(|o| o.tracer.span("query.execute"));
            let result = executor::execute(
                &self.inner.spanner,
                self.inner.dir,
                &plan,
                query,
                ReadAccess::Snapshot(ts),
            )?;
            if let Some(s) = &span {
                s.attr("entries_examined", result.stats.entries_examined);
                s.attr("entries_returned", result.stats.entries_returned);
                s.attr("seeks", result.stats.seeks);
                s.attr("docs_fetched", result.stats.docs_fetched);
            }
            result
        };
        if let Some(o) = &obs {
            self.observe_query_stats(o, "query", &result.stats);
        }
        if caller.is_third_party() {
            // Authorize each returned document as a `list` access. (The
            // production service proves the query's constraints satisfy the
            // rules instead; the per-document check is equivalent for the
            // rule shapes this reproduction supports.)
            for doc in &result.documents {
                self.authorize_read(&doc.name, Some(doc), Method::List, caller, ts)?;
            }
        }
        // Consistency oracle: record each served document (projections strip
        // fields, so their rows cannot be digest-checked against the model).
        if query.projection.is_none() {
            if let Some(h) = self.history() {
                for doc in &result.documents {
                    h.record(HistoryEvent::DocRead {
                        dir: self.inner.dir.prefix(),
                        ts,
                        name: doc.name.to_string(),
                        digest: Some(crate::checker::doc_digest(doc)),
                    });
                }
            }
        }
        Ok(result)
    }

    /// Run a query with a per-RPC work limit, returning partial results and
    /// a resume point when truncated (§IV-C). Continue with
    /// `query.clone().start_after(resume_after)`.
    pub fn run_query_partial(
        &self,
        query: &Query,
        consistency: Consistency,
        caller: &Caller,
        work_limit: usize,
    ) -> FirestoreResult<QueryResult> {
        self.check_gate(GatedOp::Query)?;
        let ts = self.read_ts(consistency);
        let obs = self.obs();
        let plan = {
            let span = obs.as_ref().map(|o| o.tracer.span("query.plan"));
            let plan = plan_query(&mut self.inner.catalog.write(), self.inner.dir, query)?;
            if let Some(s) = &span {
                s.attr("collection", &query.collection);
                s.attr("joined_indexes", plan.joined_indexes());
            }
            plan
        };
        let result = {
            let span = obs.as_ref().map(|o| o.tracer.span("query.execute"));
            let result = executor::execute_limited(
                &self.inner.spanner,
                self.inner.dir,
                &plan,
                query,
                ReadAccess::Snapshot(ts),
                work_limit,
            )?;
            if let Some(s) = &span {
                s.attr("entries_examined", result.stats.entries_examined);
                s.attr("truncated", result.resume_after.is_some());
            }
            result
        };
        if let Some(o) = &obs {
            self.observe_query_stats(o, "partial", &result.stats);
        }
        if caller.is_third_party() {
            for doc in &result.documents {
                self.authorize_read(&doc.name, Some(doc), Method::List, caller, ts)?;
            }
        }
        Ok(result)
    }

    /// A COUNT aggregation (paper §VIII): the number of documents the query
    /// matches, computed from index entries without fetching documents. The
    /// returned stats reflect the entries examined — the cost such a query
    /// must be billed by ("a COUNT query returns a single value but may
    /// count millions of documents").
    pub fn run_count(
        &self,
        query: &Query,
        consistency: Consistency,
        caller: &Caller,
    ) -> FirestoreResult<(usize, crate::executor::QueryStats)> {
        if caller.is_third_party() {
            // Counting reveals result-set size: require list permission on
            // the collection via a representative (empty-resource) check.
            let ts = self.read_ts(consistency);
            let probe = query.collection.doc("__count__");
            self.authorize_read(&probe, None, Method::List, caller, ts)?;
        }
        // Counting must ignore limit/offset windows per Firestore COUNT
        // semantics with no window... production COUNT respects the window;
        // we count the windowed result set to match it.
        let ts = self.read_ts(consistency);
        let obs = self.obs();
        let plan = plan_query(&mut self.inner.catalog.write(), self.inner.dir, query)?;
        let counted = executor::count(&self.inner.spanner, self.inner.dir, &plan, query, ts)?;
        if let Some(o) = &obs {
            self.observe_query_stats(o, "count", &counted.1);
        }
        Ok(counted)
    }

    // --- EXPLAIN ------------------------------------------------------------

    /// EXPLAIN: plan the query and render the chosen access path (indexes,
    /// zig-zag arms, pushed-down window) as a deterministic text tree,
    /// without executing it.
    pub fn explain(&self, query: &Query) -> FirestoreResult<String> {
        let plan = plan_query(&mut self.inner.catalog.write(), self.inner.dir, query)?;
        let catalog = self.inner.catalog.read();
        Ok(crate::explain::render_plan(&catalog, query, &plan))
    }

    /// EXPLAIN ANALYZE: plan, execute, and render the plan tree joined with
    /// the executor's observed work counters. Returns the rendering and the
    /// full query result.
    pub fn explain_analyze(
        &self,
        query: &Query,
        consistency: Consistency,
        caller: &Caller,
    ) -> FirestoreResult<(String, QueryResult)> {
        let ts = self.read_ts(consistency);
        let plan = plan_query(&mut self.inner.catalog.write(), self.inner.dir, query)?;
        let result = executor::execute(
            &self.inner.spanner,
            self.inner.dir,
            &plan,
            query,
            ReadAccess::Snapshot(ts),
        )?;
        if caller.is_third_party() {
            for doc in &result.documents {
                self.authorize_read(&doc.name, Some(doc), Method::List, caller, ts)?;
            }
        }
        let catalog = self.inner.catalog.read();
        let text = crate::explain::render_analyze(&catalog, query, &plan, &result.stats);
        Ok((text, result))
    }

    // --- writes -------------------------------------------------------------

    /// Commit a batch of writes atomically.
    pub fn commit_writes(
        &self,
        writes: Vec<Write>,
        caller: &Caller,
    ) -> FirestoreResult<WriteResult> {
        self.commit_writes_with_deadline(writes, caller, None)
    }

    /// Commit a batch of writes atomically under a per-request deadline
    /// budget. The deadline propagates through the whole pipeline: it caps
    /// the maximum commit timestamp `M` handed to Prepare and to the Spanner
    /// commit, so no stage can run past the caller's budget. A spent budget
    /// returns [`FirestoreError::DeadlineExceeded`], which is deliberately
    /// not retriable.
    pub fn commit_writes_with_deadline(
        &self,
        writes: Vec<Write>,
        caller: &Caller,
        deadline: Option<Deadline>,
    ) -> FirestoreResult<WriteResult> {
        self.check_gate(GatedOp::Commit)?;
        for w in &writes {
            write::validate_write(w)?;
        }
        let mut txn = self.inner.spanner.begin();
        let result = self.commit_pipeline(&mut txn, writes, caller, deadline);
        if result.is_err() {
            self.inner.spanner.abort(&mut txn);
        }
        result
    }

    /// Commit a batch of writes atomically and *idempotently*: a ledger row
    /// keyed by `dedup_id` is written in the same Spanner transaction as the
    /// writes, so a retry of the same `dedup_id` after an ambiguous outcome
    /// (a crash after the redo-log append but before the ack) observes the
    /// row and returns the original commit timestamp instead of applying the
    /// writes a second time.
    ///
    /// A dedup hit returns the original commit timestamp with empty
    /// [`WriteStats`] (no work was done on this attempt).
    pub fn commit_writes_dedup(
        &self,
        dedup_id: &str,
        writes: Vec<Write>,
        caller: &Caller,
    ) -> FirestoreResult<WriteResult> {
        self.check_gate(GatedOp::Commit)?;
        for w in &writes {
            write::validate_write(w)?;
        }
        let spanner = &self.inner.spanner;
        let key = self.inner.dir.key(dedup_id.as_bytes());
        let mut txn = spanner.begin();
        let ledger_row = if self.inner.oracle_ignore_dedup.load(Ordering::SeqCst) {
            Ok(None) // seeded bug: pretend the mutation was never applied
        } else {
            spanner.txn_read_for_update_versioned(&mut txn, WRITE_LEDGER, &key)
        };
        match ledger_row {
            // Already applied: the ledger row's MVCC version timestamp *is*
            // the original commit timestamp.
            Ok(Some((_, version_ts))) => {
                spanner.abort(&mut txn);
                return Ok(WriteResult {
                    commit_ts: version_ts,
                    stats: WriteStats::default(),
                });
            }
            Ok(None) => {}
            Err(e) => {
                spanner.abort(&mut txn);
                return Err(e.into());
            }
        }
        if let Err(e) = spanner.txn_put(
            &mut txn,
            WRITE_LEDGER,
            key,
            bytes::Bytes::from_static(b"1"),
        ) {
            spanner.abort(&mut txn);
            return Err(e.into());
        }
        let result = self.commit_pipeline(&mut txn, writes, caller, None);
        if result.is_err() {
            spanner.abort(&mut txn);
        }
        result
    }

    /// The shared §IV-D2 pipeline; `txn` may already contain reads (server
    /// SDK transactions).
    fn commit_pipeline(
        &self,
        txn: &mut ReadWriteTransaction,
        writes: Vec<Write>,
        caller: &Caller,
        deadline: Option<Deadline>,
    ) -> FirestoreResult<WriteResult> {
        let spanner = &self.inner.spanner;
        let dir = self.inner.dir;
        let obs = self.obs();
        let pipeline_span = obs.as_ref().map(|o| o.tracer.span("core.commit_pipeline"));
        if let Some(s) = &pipeline_span {
            s.attr("db", self.id());
            s.attr("writes", writes.len());
        }

        if let Some(dl) = deadline {
            if dl.expired(spanner.truetime().clock().now()) {
                return Err(FirestoreError::DeadlineExceeded(
                    "request budget spent before commit started".into(),
                ));
            }
        }

        // Step 2: read affected documents with exclusive locks; verify
        // preconditions.
        let mut olds: Vec<Option<Document>> = Vec::with_capacity(writes.len());
        for w in &writes {
            let name = w.op.name().clone();
            let key = dir.key(&name.encode());
            let old = match spanner.txn_read_for_update_versioned(txn, ENTITIES, &key)? {
                None => None,
                Some((bytes, version_ts)) => Some(
                    write::decode_from_storage(name.clone(), &bytes, version_ts).ok_or_else(
                        || FirestoreError::Internal(format!("corrupt document {name}")),
                    )?,
                ),
            };
            write::check_precondition(w, old.as_ref())?;
            olds.push(old);
        }

        // Step 3: security rules for third-party requests, resolved inside
        // this transaction.
        if caller.is_third_party() {
            let engine = self.inner.ruleset.read();
            let Some(engine) = engine.as_ref() else {
                return Err(FirestoreError::PermissionDenied(
                    "no security rules installed; third-party access denied".into(),
                ));
            };
            for (w, old) in writes.iter().zip(&olds) {
                let req = write::write_request_context(w, old.as_ref(), caller.auth());
                let allowed = {
                    let source = write::TxnDataSource {
                        spanner,
                        dir,
                        txn: RefCell::new(&mut *txn),
                    };
                    engine.allows(&req, &source, obs.as_ref())
                };
                if !allowed {
                    return Err(FirestoreError::PermissionDenied(format!(
                        "{:?} {} denied by rules",
                        write::write_method(w, old.as_ref()),
                        w.op.name()
                    )));
                }
            }
        }

        // Mutating writes become document changes; verify-only ops end here.
        let mut changes: Vec<DocumentChange> = Vec::with_capacity(writes.len());
        for (w, old) in writes.iter().zip(olds) {
            if !w.op.is_mutation() {
                continue;
            }
            let name = w.op.name().clone();
            let new = match &w.op {
                crate::write::WriteOp::Set { fields, .. } => {
                    let mut d = Document::new(name.clone(), fields.clone());
                    d.create_time = old
                        .as_ref()
                        .map(|o| o.create_time)
                        .unwrap_or(Timestamp::ZERO);
                    Some(d)
                }
                crate::write::WriteOp::Merge { fields, .. } => {
                    // Merge over the current contents: unlisted fields
                    // survive, listed ones are replaced.
                    let mut merged = old.as_ref().map(|o| o.fields.clone()).unwrap_or_default();
                    for (k, v) in fields {
                        merged.insert(k.clone(), v.clone());
                    }
                    let mut d = Document::new(name.clone(), merged.into_iter().collect::<Vec<_>>());
                    d.create_time = old
                        .as_ref()
                        .map(|o| o.create_time)
                        .unwrap_or(Timestamp::ZERO);
                    Some(d)
                }
                crate::write::WriteOp::Delete { .. } | crate::write::WriteOp::Verify { .. } => None,
            };
            changes.push(DocumentChange { name, old, new });
        }

        // Step 4: index-entry diffs + row mutations.
        let mut stats = WriteStats::default();
        {
            let mut catalog = self.inner.catalog.write();
            for change in &changes {
                let (touched, charged) = write::apply_change_to_txn(
                    spanner,
                    dir,
                    &mut catalog,
                    txn,
                    change,
                    obs.as_ref(),
                )?;
                stats.index_entries_touched += touched;
                stats.engine_cpu += charged;
                stats.documents += 1;
            }
        }

        // Step 4b: triggers — persist messages transactionally (§IV-D2).
        self.inner
            .triggers
            .enqueue_matches(&self.inner.queue, txn, &changes)?;

        stats.payload_bytes = txn.payload_bytes();

        // Step 5: Prepare the Real-time Cache with max timestamp M. The
        // caller's deadline caps M so the commit cannot outlive the budget.
        let now = spanner.truetime().clock().now();
        let mut max_ts = now + self.inner.options.max_commit_window;
        if let Some(dl) = deadline {
            max_ts = max_ts.min(dl.ts());
            if max_ts <= now {
                return Err(FirestoreError::DeadlineExceeded(
                    "no commit window remains within the request deadline".into(),
                ));
            }
        }
        let names: Vec<DocumentName> = changes.iter().map(|c| c.name.clone()).collect();
        let observer = self.inner.observer.read().clone();
        let (token, min_ts) = observer
            .prepare(&names, max_ts)
            .map_err(|_| FirestoreError::Unavailable("Real-time Cache Prepare failed".into()))?;

        // Step 6: Spanner commit within [m, M].
        let taken = std::mem::take(txn);
        match spanner.commit(taken, min_ts, max_ts) {
            Ok(info) => {
                stats.participants = info.participants;
                stats.lock_wait = info.lock_wait;
                stats.commit_wait = info.commit_wait;
                stats.engine_cpu += info.cpu_charged;
                if let Some(s) = &pipeline_span {
                    s.attr("commit_ts", info.commit_ts.as_nanos());
                    s.attr("documents", stats.documents);
                    s.attr("index_entries", stats.index_entries_touched);
                    s.attr("engine_cpu_ns", stats.engine_cpu.as_nanos());
                }
                // Step 7: Accept with full document copies at the commit
                // timestamp.
                let mut final_changes = changes;
                for c in &mut final_changes {
                    if let Some(new) = &mut c.new {
                        new.update_time = info.commit_ts;
                        if new.create_time == Timestamp::ZERO {
                            new.create_time = info.commit_ts;
                        }
                    }
                }
                observer.accept(
                    token,
                    CommitOutcome::Committed(info.commit_ts),
                    final_changes,
                );
                Ok(WriteResult {
                    commit_ts: info.commit_ts,
                    stats,
                })
            }
            Err(e) => {
                let (outcome, err) = write::classify_commit_error(e);
                observer.accept(token, outcome, vec![]);
                Err(err)
            }
        }
    }

    // --- interactive transactions (Server SDK, §III-D) ----------------------

    /// Begin an interactive lock-based transaction.
    pub fn begin_transaction(&self) -> FirestoreTransaction {
        FirestoreTransaction {
            db: self.clone(),
            txn: self.inner.spanner.begin(),
            writes: Vec::new(),
        }
    }

    /// Run `f` in a transaction, retrying on transient conflicts with the
    /// Server SDKs' automatic retry (§III-D), up to `max_attempts`.
    pub fn run_transaction<R>(
        &self,
        max_attempts: usize,
        f: impl FnMut(&mut FirestoreTransaction) -> FirestoreResult<R>,
    ) -> FirestoreResult<R> {
        let policy = RetryPolicy::default().with_max_attempts(max_attempts.max(1) as u32);
        self.run_transaction_with_policy(policy, f)
    }

    /// Run `f` in a transaction under an explicit [`RetryPolicy`]: transient
    /// failures are retried with exponential backoff whose jittered delays
    /// are drawn deterministically (seeded from the simulated clock) and
    /// spent by advancing that clock, so a chaos run replays identically.
    pub fn run_transaction_with_policy<R>(
        &self,
        policy: RetryPolicy,
        mut f: impl FnMut(&mut FirestoreTransaction) -> FirestoreResult<R>,
    ) -> FirestoreResult<R> {
        let clock = self.inner.spanner.truetime().clock().clone();
        let mut backoff = Backoff::new(policy, clock.now().as_nanos());
        loop {
            let mut txn = self.begin_transaction();
            match f(&mut txn).and_then(|r| txn.commit().map(|_| r)) {
                Ok(r) => return Ok(r),
                Err(e) if e.is_retryable() => match backoff.next_delay() {
                    Some(delay) => {
                        clock.advance(delay);
                    }
                    None => return Err(e),
                },
                Err(e) => return Err(e),
            }
        }
    }

    // --- maintenance ---------------------------------------------------------

    /// Storage statistics: `(live documents, approximate live bytes)` of
    /// this database's directory.
    pub fn storage_stats(&self) -> FirestoreResult<(usize, usize)> {
        let ts = self.strong_read_ts();
        let range = self.inner.dir.range();
        let docs = self.inner.spanner.snapshot_count(ENTITIES, &range, ts)?;
        let rows = self
            .inner
            .spanner
            .snapshot_scan(ENTITIES, &range, ts, usize::MAX)?;
        let bytes = rows.iter().map(|(k, v)| k.len() + v.len()).sum();
        Ok((docs, bytes))
    }

    /// Garbage-collect `WriteLedger` rows whose commit is older than
    /// `older_than`. Without this the ledger grows by one row per client
    /// mutation forever, inflating storage and recovery replay. A ledger row
    /// only needs to outlive the longest window in which its `dedup_id`
    /// could still be retried (the client retry-budget horizon); a retry
    /// arriving *after* its row was collected re-applies the write, so
    /// callers must pass a horizon no shorter than their retry policy's.
    /// Returns the number of rows dropped.
    pub fn gc_write_ledger(&self, older_than: Timestamp) -> FirestoreResult<usize> {
        let spanner = &self.inner.spanner;
        let ts = self.strong_read_ts();
        let range = self.inner.dir.range();
        let rows =
            spanner.snapshot_scan_versioned(WRITE_LEDGER, &range, ts, usize::MAX, false)?;
        let mut txn = spanner.begin();
        let mut dropped = 0usize;
        for (key, _, version_ts) in rows {
            if version_ts >= older_than {
                continue;
            }
            if let Err(e) = spanner.txn_delete(&mut txn, WRITE_LEDGER, key) {
                spanner.abort(&mut txn);
                return Err(e.into());
            }
            dropped += 1;
        }
        if dropped == 0 {
            spanner.abort(&mut txn);
            return Ok(0);
        }
        match spanner.commit(txn, Timestamp::ZERO, Timestamp::MAX) {
            Ok(_) => Ok(dropped),
            Err(e) => Err(e.into()),
        }
    }
}

impl std::fmt::Debug for FirestoreDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FirestoreDatabase({} @ {:?})", self.id(), self.inner.dir)
    }
}

/// An interactive transaction: locking reads followed by a commit of
/// buffered writes.
pub struct FirestoreTransaction {
    db: FirestoreDatabase,
    txn: ReadWriteTransaction,
    writes: Vec<Write>,
}

impl FirestoreTransaction {
    /// Read a document with a lock (exclusive, §IV-D2 step 2 — reads in
    /// Firestore transactions are reads-for-update).
    pub fn get(&mut self, name: &DocumentName) -> FirestoreResult<Option<Document>> {
        let key = self.db.inner.dir.key(&name.encode());
        match self
            .db
            .inner
            .spanner
            .txn_read_for_update_versioned(&mut self.txn, ENTITIES, &key)?
        {
            None => Ok(None),
            Some((bytes, version_ts)) => {
                write::decode_from_storage(name.clone(), &bytes, version_ts)
                    .map(Some)
                    .ok_or_else(|| FirestoreError::Internal(format!("corrupt document {name}")))
            }
        }
    }

    /// Run a query inside the transaction (reads acquire shared locks;
    /// "long-lived or large transactions may lead to lock contention and
    /// deadlocks that are resolved by failing and retrying", §IV-D3).
    pub fn query(&mut self, query: &Query) -> FirestoreResult<QueryResult> {
        let plan = plan_query(&mut self.db.inner.catalog.write(), self.db.inner.dir, query)?;
        executor::execute(
            &self.db.inner.spanner,
            self.db.inner.dir,
            &plan,
            query,
            ReadAccess::Transaction(&mut self.txn),
        )
    }

    /// Buffer a set.
    pub fn set(
        &mut self,
        name: DocumentName,
        fields: impl IntoIterator<Item = (impl Into<String>, Value)>,
    ) {
        self.writes.push(Write::set(name, fields));
    }

    /// Buffer a create.
    pub fn create(
        &mut self,
        name: DocumentName,
        fields: impl IntoIterator<Item = (impl Into<String>, Value)>,
    ) {
        self.writes.push(Write::create(name, fields));
    }

    /// Buffer a delete.
    pub fn delete(&mut self, name: DocumentName) {
        self.writes.push(Write::delete(name));
    }

    /// Buffer an arbitrary write.
    pub fn write(&mut self, w: Write) {
        self.writes.push(w);
    }

    /// Commit the transaction.
    pub fn commit(mut self) -> FirestoreResult<WriteResult> {
        self.db.check_gate(GatedOp::Commit)?;
        for w in &self.writes {
            write::validate_write(w)?;
        }
        let writes = std::mem::take(&mut self.writes);
        let result = self.db.clone().commit_pipeline_for(&mut self.txn, writes);
        if result.is_err() {
            self.db.inner.spanner.abort(&mut self.txn);
        }
        result
    }

    /// Abort the transaction, releasing locks.
    pub fn abort(mut self) {
        self.db.inner.spanner.abort(&mut self.txn);
    }
}

impl FirestoreDatabase {
    fn commit_pipeline_for(
        &self,
        txn: &mut ReadWriteTransaction,
        writes: Vec<Write>,
    ) -> FirestoreResult<WriteResult> {
        // Interactive transactions come from Server SDKs: privileged.
        self.commit_pipeline(txn, writes, &Caller::Service, None)
    }
}

impl Drop for FirestoreTransaction {
    fn drop(&mut self) {
        self.db.inner.spanner.abort(&mut self.txn);
    }
}

/// Convenience: build a collection path (panics on invalid path; for
/// examples and tests).
pub fn collection(path: &str) -> CollectionPath {
    CollectionPath::parse(path).expect("valid collection path")
}

/// Convenience: build a document name (panics on invalid path; for examples
/// and tests).
pub fn doc(path: &str) -> DocumentName {
    DocumentName::parse(path).expect("valid document name")
}

/// Convenience: build a field map.
pub fn fields(entries: impl IntoIterator<Item = (&'static str, Value)>) -> BTreeMap<String, Value> {
    entries
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

/// Re-export for `with_catalog` users.
pub use crate::index::IndexedField as Field;

/// Create a composite index synchronously: register as `Building`, backfill
/// every existing document, then mark `Ready` (§IV-D1's background service,
/// run to completion; see [`crate::backfill`] for the incremental version).
pub fn create_index_blocking(
    db: &FirestoreDatabase,
    collection_id: &str,
    fields: Vec<IndexedField>,
) -> FirestoreResult<IndexId> {
    let id = db.with_catalog(|c| c.add_composite(collection_id, fields, IndexState::Building));
    crate::backfill::run_backfill(db, id, 100)?;
    Ok(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::FilterOp;
    use simkit::SimClock;

    fn setup() -> FirestoreDatabase {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        let spanner = SpannerDatabase::new(clock);
        FirestoreDatabase::create_default(spanner)
    }

    fn put(db: &FirestoreDatabase, path: &str, fs: Vec<(&'static str, Value)>) -> WriteResult {
        db.commit_writes(vec![Write::set(doc(path), fs)], &Caller::Service)
            .unwrap()
    }

    #[test]
    fn write_ledger_gc_drops_only_expired_rows() {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        let spanner = SpannerDatabase::new(clock.clone());
        let db = FirestoreDatabase::create_default(spanner);
        let w = |v: i64| vec![Write::set(doc("/c/d"), vec![("v", Value::Int(v))])];
        let old = db.commit_writes_dedup("old", w(1), &Caller::Service).unwrap();
        clock.advance(Duration::from_secs(60));
        let fresh = db
            .commit_writes_dedup("fresh", w(2), &Caller::Service)
            .unwrap();

        // Collect rows committed before the retry horizon (between the two).
        let horizon = old.commit_ts + Duration::from_secs(30);
        assert_eq!(db.gc_write_ledger(horizon).unwrap(), 1);
        assert_eq!(db.gc_write_ledger(horizon).unwrap(), 0, "idempotent");

        // The surviving row still dedups: a retry acks the original commit.
        let retry = db
            .commit_writes_dedup("fresh", w(2), &Caller::Service)
            .unwrap();
        assert_eq!(retry.commit_ts, fresh.commit_ts);
        assert_eq!(retry.stats, WriteStats::default());
        // The collected id is past its retry horizon, so a (contract-
        // violating) late retry re-applies as a fresh commit.
        let late = db.commit_writes_dedup("old", w(3), &Caller::Service).unwrap();
        assert!(late.commit_ts > old.commit_ts);
    }

    #[test]
    fn write_then_read() {
        let db = setup();
        let r = put(&db, "/restaurants/one", vec![("city", Value::from("SF"))]);
        let got = db
            .get_document(
                &doc("/restaurants/one"),
                Consistency::Strong,
                &Caller::Service,
            )
            .unwrap()
            .unwrap();
        assert_eq!(got.fields["city"], Value::from("SF"));
        assert_eq!(got.update_time, r.commit_ts);
        assert_eq!(got.create_time, r.commit_ts);
    }

    #[test]
    fn update_preserves_create_time() {
        let db = setup();
        let first = put(&db, "/c/d", vec![("v", Value::Int(1))]);
        let second = put(&db, "/c/d", vec![("v", Value::Int(2))]);
        let got = db
            .get_document(&doc("/c/d"), Consistency::Strong, &Caller::Service)
            .unwrap()
            .unwrap();
        assert_eq!(got.create_time, first.commit_ts);
        assert_eq!(got.update_time, second.commit_ts);
        assert_eq!(got.fields["v"], Value::Int(2));
    }

    #[test]
    fn delete_removes_document_and_entries() {
        let db = setup();
        put(&db, "/c/d", vec![("v", Value::Int(1))]);
        db.commit_writes(vec![Write::delete(doc("/c/d"))], &Caller::Service)
            .unwrap();
        assert!(db
            .get_document(&doc("/c/d"), Consistency::Strong, &Caller::Service)
            .unwrap()
            .is_none());
        // The query no longer returns it.
        let q = Query::parse("/c").unwrap().filter("v", FilterOp::Eq, 1i64);
        let res = db
            .run_query(&q, Consistency::Strong, &Caller::Service)
            .unwrap();
        assert!(res.documents.is_empty());
    }

    #[test]
    fn query_via_auto_index() {
        let db = setup();
        put(
            &db,
            "/restaurants/a",
            vec![("city", Value::from("SF")), ("r", Value::Int(3))],
        );
        put(
            &db,
            "/restaurants/b",
            vec![("city", Value::from("NY")), ("r", Value::Int(5))],
        );
        put(
            &db,
            "/restaurants/c",
            vec![("city", Value::from("SF")), ("r", Value::Int(4))],
        );
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("city", FilterOp::Eq, "SF");
        let res = db
            .run_query(&q, Consistency::Strong, &Caller::Service)
            .unwrap();
        let ids: Vec<&str> = res.documents.iter().map(|d| d.name.id()).collect();
        assert_eq!(ids, vec!["a", "c"]);
        assert!(res.stats.entries_examined >= 2);
    }

    #[test]
    fn snapshot_reads_are_stable() {
        let db = setup();
        put(&db, "/c/d", vec![("v", Value::Int(1))]);
        let ts = db.strong_read_ts();
        put(&db, "/c/d", vec![("v", Value::Int(2))]);
        let old = db
            .get_document(&doc("/c/d"), Consistency::AtTimestamp(ts), &Caller::Service)
            .unwrap()
            .unwrap();
        assert_eq!(old.fields["v"], Value::Int(1));
    }

    #[test]
    fn occ_precondition_detects_concurrent_update() {
        let db = setup();
        let r1 = put(&db, "/c/d", vec![("v", Value::Int(1))]);
        // Another writer sneaks in.
        put(&db, "/c/d", vec![("v", Value::Int(2))]);
        // An OCC write conditioned on the first version must fail.
        let stale = Write::set(doc("/c/d"), [("v", Value::Int(3))])
            .with_precondition(Precondition::UpdateTimeEquals(r1.commit_ts));
        let err = db.commit_writes(vec![stale], &Caller::Service).unwrap_err();
        assert!(matches!(err, FirestoreError::FailedPrecondition(_)));
    }

    #[test]
    fn transaction_readmodifywrite() {
        let db = setup();
        put(
            &db,
            "/restaurants/one",
            vec![
                ("numRatings", Value::Int(2)),
                ("avgRating", Value::Double(4.0)),
            ],
        );
        // The paper's example: add a rating and update the aggregates.
        db.run_transaction(5, |txn| {
            let r = txn.get(&doc("/restaurants/one"))?.expect("exists");
            let n = match r.fields["numRatings"] {
                Value::Int(n) => n,
                _ => unreachable!(),
            };
            let avg = match r.fields["avgRating"] {
                Value::Double(a) => a,
                _ => unreachable!(),
            };
            let new_avg = (avg * n as f64 + 5.0) / (n + 1) as f64;
            txn.create(
                doc("/restaurants/one/ratings/2"),
                [("rating", Value::Int(5)), ("userId", Value::from("alice"))],
            );
            txn.set(
                doc("/restaurants/one"),
                [
                    ("numRatings", Value::Int(n + 1)),
                    ("avgRating", Value::Double(new_avg)),
                ],
            );
            Ok(())
        })
        .unwrap();
        let r = db
            .get_document(
                &doc("/restaurants/one"),
                Consistency::Strong,
                &Caller::Service,
            )
            .unwrap()
            .unwrap();
        assert_eq!(r.fields["numRatings"], Value::Int(3));
        let rating = db
            .get_document(
                &doc("/restaurants/one/ratings/2"),
                Consistency::Strong,
                &Caller::Service,
            )
            .unwrap()
            .unwrap();
        assert_eq!(rating.fields["rating"], Value::Int(5));
    }

    #[test]
    fn transaction_conflict_retries() {
        let db = setup();
        put(&db, "/c/d", vec![("v", Value::Int(0))]);
        // Hold a lock with another transaction to force one conflict.
        let mut blocker = db.begin_transaction();
        blocker.get(&doc("/c/d")).unwrap();
        let blocker = std::cell::RefCell::new(Some(blocker));
        let mut attempts = 0;
        let db2 = db.clone();
        let result = db.run_transaction(5, |txn| {
            attempts += 1;
            if attempts > 1 {
                // Release the blocker so the retry can succeed.
                if let Some(b) = blocker.borrow_mut().take() {
                    b.abort();
                }
            }
            txn.get(&doc("/c/d"))?;
            txn.set(doc("/c/d"), [("v", Value::Int(9))]);
            Ok(())
        });
        result.unwrap();
        assert!(attempts > 1, "first attempt must have conflicted");
        let got = db2
            .get_document(&doc("/c/d"), Consistency::Strong, &Caller::Service)
            .unwrap()
            .unwrap();
        assert_eq!(got.fields["v"], Value::Int(9));
    }

    #[test]
    fn third_party_requires_rules() {
        let db = setup();
        let w = Write::set(doc("/c/d"), [("v", Value::Int(1))]);
        let err = db
            .commit_writes(
                vec![w],
                &Caller::EndUser(Some(rules::AuthContext::uid("u"))),
            )
            .unwrap_err();
        assert!(matches!(err, FirestoreError::PermissionDenied(_)));
    }

    #[test]
    fn fig3_rules_enforced_on_write_path() {
        let db = setup();
        db.set_rules(
            r#"
            service cloud.firestore {
              match /databases/{database}/documents {
                match /restaurants/{restaurant}/ratings/{rating} {
                  allow read: if request.auth != null;
                  allow create: if request.auth != null
                                && request.resource.data.userId == request.auth.uid;
                  allow update, delete: if false;
                }
              }
            }
            "#,
        )
        .unwrap();
        let alice = Caller::EndUser(Some(rules::AuthContext::uid("alice")));
        let ok = Write::create(
            doc("/restaurants/one/ratings/2"),
            [("rating", Value::Int(5)), ("userId", Value::from("alice"))],
        );
        db.commit_writes(vec![ok], &alice).unwrap();
        // Updating the rating is denied.
        let upd = Write::set(
            doc("/restaurants/one/ratings/2"),
            [("rating", Value::Int(1)), ("userId", Value::from("alice"))],
        );
        assert!(matches!(
            db.commit_writes(vec![upd], &alice).unwrap_err(),
            FirestoreError::PermissionDenied(_)
        ));
        // Spoofing another user's id on create is denied.
        let spoof = Write::create(
            doc("/restaurants/one/ratings/3"),
            [("rating", Value::Int(5)), ("userId", Value::from("bob"))],
        );
        assert!(matches!(
            db.commit_writes(vec![spoof], &alice).unwrap_err(),
            FirestoreError::PermissionDenied(_)
        ));
        // Reads require auth.
        let anon = Caller::EndUser(None);
        assert!(matches!(
            db.get_document(
                &doc("/restaurants/one/ratings/2"),
                Consistency::Strong,
                &anon
            ),
            Err(FirestoreError::PermissionDenied(_))
        ));
        let got = db
            .get_document(
                &doc("/restaurants/one/ratings/2"),
                Consistency::Strong,
                &alice,
            )
            .unwrap();
        assert!(got.is_some());
        // The authorization path is served by the compiled decision tree,
        // and EXPLAIN renders it.
        let explain = db.explain_rules().expect("rules installed");
        assert!(explain.contains("rules decision tree"), "{explain}");
        assert!(explain.contains("restaurants"), "{explain}");
    }

    #[test]
    fn explain_rules_is_none_without_rules() {
        let db = setup();
        assert!(db.explain_rules().is_none());
    }

    #[test]
    fn batch_commit_is_atomic() {
        let db = setup();
        put(&db, "/c/exists", vec![("v", Value::Int(1))]);
        // Batch with one failing precondition: nothing is applied.
        let batch = vec![
            Write::set(doc("/c/new"), [("v", Value::Int(1))]),
            Write::create(doc("/c/exists"), [("v", Value::Int(2))]), // fails
        ];
        assert!(db.commit_writes(batch, &Caller::Service).is_err());
        assert!(db
            .get_document(&doc("/c/new"), Consistency::Strong, &Caller::Service)
            .unwrap()
            .is_none());
    }

    #[test]
    fn query_results_carry_version_timestamps() {
        let db = setup();
        let r1 = put(&db, "/c/a", vec![("v", Value::Int(1))]);
        let r2 = put(&db, "/c/a", vec![("v", Value::Int(2))]);
        put(&db, "/c/b", vec![("v", Value::Int(3))]);
        // Index-served query.
        let q = Query::parse("/c").unwrap().filter("v", FilterOp::Eq, 2i64);
        let result = db.run_query(&q, Consistency::Strong, &Caller::Service).unwrap();
        assert_eq!(result.documents[0].update_time, r2.commit_ts);
        assert_eq!(result.documents[0].create_time, r1.commit_ts);
        // Primary-scan query.
        let all = db
            .run_query(&Query::parse("/c").unwrap(), Consistency::Strong, &Caller::Service)
            .unwrap();
        for d in &all.documents {
            assert!(d.update_time > Timestamp::ZERO, "{} has no version", d.name);
            // And it matches the point-read's view.
            let direct = db
                .get_document(&d.name, Consistency::Strong, &Caller::Service)
                .unwrap()
                .unwrap();
            assert_eq!(d.update_time, direct.update_time);
            assert_eq!(d.create_time, direct.create_time);
        }
    }

    #[test]
    fn merge_preserves_unlisted_fields() {
        let db = setup();
        put(
            &db,
            "/c/d",
            vec![("a", Value::Int(1)), ("b", Value::Int(2))],
        );
        db.commit_writes(
            vec![Write::merge(
                doc("/c/d"),
                [("b", Value::Int(20)), ("c", Value::Int(3))],
            )],
            &Caller::Service,
        )
        .unwrap();
        let got = db
            .get_document(&doc("/c/d"), Consistency::Strong, &Caller::Service)
            .unwrap()
            .unwrap();
        assert_eq!(got.fields["a"], Value::Int(1), "unlisted field preserved");
        assert_eq!(got.fields["b"], Value::Int(20), "listed field replaced");
        assert_eq!(got.fields["c"], Value::Int(3), "new field added");
        // Merge into a missing document upserts.
        db.commit_writes(
            vec![Write::merge(doc("/c/new"), [("x", Value::Int(9))])],
            &Caller::Service,
        )
        .unwrap();
        assert!(db
            .get_document(&doc("/c/new"), Consistency::Strong, &Caller::Service)
            .unwrap()
            .is_some());
        // Index entries follow the merged contents.
        let q = Query::parse("/c").unwrap().filter("a", FilterOp::Eq, 1i64);
        assert_eq!(
            db.run_query(&q, Consistency::Strong, &Caller::Service)
                .unwrap()
                .documents
                .len(),
            1
        );
    }

    #[test]
    fn count_query_without_fetching() {
        let db = setup();
        for i in 0..30 {
            put(
                &db,
                &format!("/r/d{i:02}"),
                vec![
                    ("city", Value::from(if i % 3 == 0 { "SF" } else { "NY" })),
                    ("n", Value::Int(i)),
                ],
            );
        }
        let q = Query::parse("/r")
            .unwrap()
            .filter("city", FilterOp::Eq, "SF");
        let (count, stats) = db
            .run_count(&q, Consistency::Strong, &Caller::Service)
            .unwrap();
        assert_eq!(count, 10);
        assert!(
            stats.entries_examined >= 10,
            "the count is billed by entries examined"
        );
        assert_eq!(stats.docs_fetched, 0, "COUNT never fetches documents");
        // Windowed count.
        let q = Query::parse("/r")
            .unwrap()
            .filter("city", FilterOp::Eq, "SF")
            .limit(4)
            .offset(8);
        let (count, _) = db
            .run_count(&q, Consistency::Strong, &Caller::Service)
            .unwrap();
        assert_eq!(count, 2);
        // Inequality count.
        let q = Query::parse("/r").unwrap().filter("n", FilterOp::Ge, 25i64);
        let (count, _) = db
            .run_count(&q, Consistency::Strong, &Caller::Service)
            .unwrap();
        assert_eq!(count, 5);
    }

    #[test]
    fn partial_results_resume_to_completion() {
        let db = setup();
        for i in 0..25 {
            put(&db, &format!("/r/d{i:02}"), vec![("v", Value::Int(i))]);
        }
        let ts = db.strong_read_ts();
        let mut collected = Vec::new();
        let mut query = Query::parse("/r").unwrap();
        loop {
            let result = db
                .run_query_partial(&query, Consistency::AtTimestamp(ts), &Caller::Service, 7)
                .unwrap();
            collected.extend(result.documents.iter().map(|d| d.name.id().to_string()));
            match result.resume_after {
                Some(after) => query = Query::parse("/r").unwrap().start_after(after),
                None => break,
            }
        }
        assert_eq!(
            collected.len(),
            25,
            "resumption covers everything exactly once"
        );
        let mut sorted = collected.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 25);
    }

    #[test]
    fn deadline_budget_caps_the_commit() {
        let db = setup();
        let clock = db.spanner().truetime().clock().clone();
        // A spent budget fails fast, and the failure is not retriable.
        let expired = Deadline::at(clock.now());
        let err = db
            .commit_writes_with_deadline(
                vec![Write::set(doc("/c/d"), [("v", Value::Int(1))])],
                &Caller::Service,
                Some(expired),
            )
            .unwrap_err();
        assert!(matches!(err, FirestoreError::DeadlineExceeded(_)));
        assert!(!err.is_retryable());
        assert!(db
            .get_document(&doc("/c/d"), Consistency::Strong, &Caller::Service)
            .unwrap()
            .is_none());
        // A live budget commits, with M capped by the deadline.
        let dl = Deadline::after(&clock, Duration::from_secs(2));
        let r = db
            .commit_writes_with_deadline(
                vec![Write::set(doc("/c/d"), [("v", Value::Int(2))])],
                &Caller::Service,
                Some(dl),
            )
            .unwrap();
        assert!(r.commit_ts <= dl.ts(), "commit timestamp respects deadline");
    }

    #[test]
    fn storage_stats_track_documents() {
        let db = setup();
        assert_eq!(db.storage_stats().unwrap().0, 0);
        put(&db, "/c/a", vec![("v", Value::Int(1))]);
        put(&db, "/c/b", vec![("v", Value::Int(2))]);
        let (docs, bytes) = db.storage_stats().unwrap();
        assert_eq!(docs, 2);
        assert!(bytes > 0);
    }
}
