//! The schemaless document model.
//!
//! "Firestore supports a rich set of primitive and complex data types, such
//! as maps and arrays. Each document is identified by a string, and is
//! essentially a set of key-value pairs that add up to at most 1MiB"
//! (§III-A). Each key-value pair is a *field*.
//!
//! Documents are stored as a single row in the Spanner `Entities` table,
//! serialized into one column (the paper uses a protocol buffer; we use an
//! equivalent hand-rolled tag-length-value binary format so the workspace
//! stays dependency-free).

use crate::path::DocumentName;
use bytes::Bytes;
use simkit::Timestamp;
use std::collections::BTreeMap;
use std::fmt;

/// The maximum serialized size of one document (1 MiB, §III-A).
pub const MAX_DOCUMENT_SIZE: usize = 1 << 20;

/// A field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Null.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer. Sorts numerically together with [`Value::Double`].
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// Microsecond-precision timestamp value (a data value, distinct from
    /// commit timestamps).
    Timestamp(i64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// A reference to another document.
    Reference(DocumentName),
    /// An ordered array. Arrays cannot directly contain other arrays
    /// (matching production Firestore); the constructor does not enforce
    /// this, the write path validates it.
    Array(Vec<Value>),
    /// A string-keyed map.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Build a map value from pairs.
    pub fn map(entries: impl IntoIterator<Item = (impl Into<String>, Value)>) -> Value {
        Value::Map(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// A short type name.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Double(_) => "double",
            Value::Timestamp(_) => "timestamp",
            Value::Str(_) => "string",
            Value::Bytes(_) => "bytes",
            Value::Reference(_) => "reference",
            Value::Array(_) => "array",
            Value::Map(_) => "map",
        }
    }

    /// Whether this value contains a nested array inside an array (invalid).
    pub fn has_nested_array(&self) -> bool {
        fn inner(v: &Value, in_array: bool) -> bool {
            match v {
                Value::Array(items) => {
                    if in_array {
                        return true;
                    }
                    items.iter().any(|i| inner(i, true))
                }
                // A map creates a fresh nesting context: array→map→array
                // is legal, only array→array is not.
                Value::Map(m) => m.values().any(|i| inner(i, false)),
                _ => false,
            }
        }
        inner(self, false)
    }

    /// Approximate in-memory/serialized size in bytes (for the 1 MiB limit
    /// and billing accounting).
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Double(_) | Value::Timestamp(_) => 8,
            Value::Str(s) => s.len() + 1,
            Value::Bytes(b) => b.len() + 1,
            Value::Reference(r) => r.to_string().len() + 1,
            Value::Array(items) => 1 + items.iter().map(Value::approx_size).sum::<usize>(),
            Value::Map(m) => {
                1 + m
                    .iter()
                    .map(|(k, v)| k.len() + 1 + v.approx_size())
                    .sum::<usize>()
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(x) => write!(f, "{x}"),
            Value::Timestamp(us) => write!(f, "t{us}us"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::Reference(r) => write!(f, "{r}"),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Double(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

/// A document: a name, its fields, and its version metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Document {
    /// The unique document name.
    pub name: DocumentName,
    /// The fields.
    pub fields: BTreeMap<String, Value>,
    /// Commit timestamp of the creating write.
    pub create_time: Timestamp,
    /// Commit timestamp of the latest write.
    pub update_time: Timestamp,
}

impl Document {
    /// Build a document (timestamps are set by the write pipeline).
    pub fn new(
        name: DocumentName,
        fields: impl IntoIterator<Item = (impl Into<String>, Value)>,
    ) -> Document {
        Document {
            name,
            fields: fields.into_iter().map(|(k, v)| (k.into(), v)).collect(),
            create_time: Timestamp::ZERO,
            update_time: Timestamp::ZERO,
        }
    }

    /// Get a field by (dot-separated) path, e.g. `address.city`.
    pub fn get(&self, field_path: &str) -> Option<&Value> {
        let mut parts = field_path.split('.');
        let first = parts.next()?;
        let mut cur = self.fields.get(first)?;
        for p in parts {
            match cur {
                Value::Map(m) => cur = m.get(p)?,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// Total serialized size estimate.
    pub fn approx_size(&self) -> usize {
        self.name.to_string().len()
            + self
                .fields
                .iter()
                .map(|(k, v)| k.len() + 1 + v.approx_size())
                .sum::<usize>()
    }

    /// Serialize to the storage representation.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(64 + self.approx_size());
        out.extend_from_slice(&self.create_time.as_nanos().to_be_bytes());
        out.extend_from_slice(&self.update_time.as_nanos().to_be_bytes());
        encode_value(&Value::Map(self.fields.clone()), &mut out);
        Bytes::from(out)
    }

    /// Deserialize from the storage representation. `name` comes from the
    /// row key.
    pub fn decode(name: DocumentName, bytes: &[u8]) -> Option<Document> {
        if bytes.len() < 16 {
            return None;
        }
        let create_time = Timestamp::from_nanos(u64::from_be_bytes(bytes[0..8].try_into().ok()?));
        let update_time = Timestamp::from_nanos(u64::from_be_bytes(bytes[8..16].try_into().ok()?));
        let mut pos = 16;
        let v = decode_value(bytes, &mut pos)?;
        if pos != bytes.len() {
            return None;
        }
        match v {
            Value::Map(fields) => Some(Document {
                name,
                fields,
                create_time,
                update_time,
            }),
            _ => None,
        }
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {{", self.name)?;
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, " {k}: {v}")?;
        }
        write!(f, " }}")
    }
}

// --- binary serialization -------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_DOUBLE: u8 = 4;
const TAG_TIMESTAMP: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_BYTES: u8 = 7;
const TAG_REFERENCE: u8 = 8;
const TAG_ARRAY: u8 = 9;
const TAG_MAP: u8 = 10;

fn encode_varint(mut n: u64, out: &mut Vec<u8>) {
    loop {
        let b = (n & 0x7F) as u8;
        n >>= 7;
        if n == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn decode_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut n: u64 = 0;
    let mut shift = 0;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        n |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(n);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Encode a value (internal storage format; not order-preserving — see
/// [`crate::encoding`] for the index-key encoding).
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Value::Double(x) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&x.to_bits().to_be_bytes());
        }
        Value::Timestamp(us) => {
            out.push(TAG_TIMESTAMP);
            out.extend_from_slice(&us.to_be_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            encode_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            encode_varint(b.len() as u64, out);
            out.extend_from_slice(b);
        }
        Value::Reference(r) => {
            let enc = r.encode();
            out.push(TAG_REFERENCE);
            encode_varint(enc.len() as u64, out);
            out.extend_from_slice(&enc);
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            encode_varint(items.len() as u64, out);
            for i in items {
                encode_value(i, out);
            }
        }
        Value::Map(m) => {
            out.push(TAG_MAP);
            encode_varint(m.len() as u64, out);
            for (k, val) in m {
                encode_varint(k.len() as u64, out);
                out.extend_from_slice(k.as_bytes());
                encode_value(val, out);
            }
        }
    }
}

/// Decode a value from `bytes` starting at `pos`.
pub fn decode_value(bytes: &[u8], pos: &mut usize) -> Option<Value> {
    let tag = *bytes.get(*pos)?;
    *pos += 1;
    Some(match tag {
        TAG_NULL => Value::Null,
        TAG_FALSE => Value::Bool(false),
        TAG_TRUE => Value::Bool(true),
        TAG_INT => {
            let raw = bytes.get(*pos..*pos + 8)?;
            *pos += 8;
            Value::Int(i64::from_be_bytes(raw.try_into().ok()?))
        }
        TAG_DOUBLE => {
            let raw = bytes.get(*pos..*pos + 8)?;
            *pos += 8;
            Value::Double(f64::from_bits(u64::from_be_bytes(raw.try_into().ok()?)))
        }
        TAG_TIMESTAMP => {
            let raw = bytes.get(*pos..*pos + 8)?;
            *pos += 8;
            Value::Timestamp(i64::from_be_bytes(raw.try_into().ok()?))
        }
        TAG_STR => {
            let len = decode_varint(bytes, pos)? as usize;
            let raw = bytes.get(*pos..*pos + len)?;
            *pos += len;
            Value::Str(String::from_utf8(raw.to_vec()).ok()?)
        }
        TAG_BYTES => {
            let len = decode_varint(bytes, pos)? as usize;
            let raw = bytes.get(*pos..*pos + len)?;
            *pos += len;
            Value::Bytes(raw.to_vec())
        }
        TAG_REFERENCE => {
            let len = decode_varint(bytes, pos)? as usize;
            let raw = bytes.get(*pos..*pos + len)?;
            *pos += len;
            Value::Reference(DocumentName::decode(raw)?)
        }
        TAG_ARRAY => {
            let len = decode_varint(bytes, pos)? as usize;
            let mut items = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                items.push(decode_value(bytes, pos)?);
            }
            Value::Array(items)
        }
        TAG_MAP => {
            let len = decode_varint(bytes, pos)? as usize;
            let mut m = BTreeMap::new();
            for _ in 0..len {
                let klen = decode_varint(bytes, pos)? as usize;
                let raw = bytes.get(*pos..*pos + klen)?;
                *pos += klen;
                let k = String::from_utf8(raw.to_vec()).ok()?;
                let v = decode_value(bytes, pos)?;
                m.insert(k, v);
            }
            Value::Map(m)
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn restaurant() -> Document {
        // Figure 1 of the paper.
        Document::new(
            DocumentName::parse("/restaurants/one").unwrap(),
            [
                ("name", Value::from("One Fine Dine")),
                ("city", Value::from("SF")),
                ("type", Value::from("BBQ")),
                ("avgRating", Value::from(4.5)),
                ("numRatings", Value::from(100i64)),
                (
                    "tags",
                    Value::Array(vec![Value::from("smoked"), Value::from("brisket")]),
                ),
                (
                    "address",
                    Value::map([
                        ("street", Value::from("1 Main St")),
                        ("zip", Value::from("94000")),
                    ]),
                ),
            ],
        )
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut doc = restaurant();
        doc.create_time = Timestamp::from_millis(5);
        doc.update_time = Timestamp::from_millis(9);
        let bytes = doc.encode();
        let decoded = Document::decode(doc.name.clone(), &bytes).unwrap();
        assert_eq!(doc, decoded);
    }

    #[test]
    fn round_trips_every_value_type() {
        let doc = Document::new(
            DocumentName::parse("/t/all").unwrap(),
            [
                ("null", Value::Null),
                ("bool", Value::Bool(true)),
                ("int", Value::Int(-42)),
                ("double", Value::Double(3.25)),
                ("nan", Value::Double(f64::NAN)),
                ("ts", Value::Timestamp(1_600_000_000_000_000)),
                ("str", Value::from("héllo")),
                ("bytes", Value::Bytes(vec![0, 1, 255])),
                (
                    "ref",
                    Value::Reference(DocumentName::parse("/restaurants/one").unwrap()),
                ),
                (
                    "arr",
                    Value::Array(vec![Value::Int(1), Value::from("two"), Value::Null]),
                ),
                (
                    "map",
                    Value::map([("nested", Value::map([("deep", Value::Bool(false))]))]),
                ),
            ],
        );
        let bytes = doc.encode();
        let decoded = Document::decode(doc.name.clone(), &bytes).unwrap();
        // NaN != NaN, so compare piecewise.
        for (k, v) in &doc.fields {
            if k == "nan" {
                assert!(matches!(decoded.fields["nan"], Value::Double(x) if x.is_nan()));
            } else {
                assert_eq!(&decoded.fields[k], v, "field {k}");
            }
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        let name = DocumentName::parse("/t/d").unwrap();
        assert!(Document::decode(name.clone(), b"short").is_none());
        let mut valid = restaurant().encode().to_vec();
        valid.push(0xEE); // trailing garbage
        assert!(Document::decode(name.clone(), &valid).is_none());
        let mut truncated = restaurant().encode().to_vec();
        truncated.truncate(truncated.len() - 3);
        assert!(Document::decode(name, &truncated).is_none());
    }

    #[test]
    fn field_path_lookup() {
        let doc = restaurant();
        assert_eq!(doc.get("city"), Some(&Value::from("SF")));
        assert_eq!(doc.get("address.zip"), Some(&Value::from("94000")));
        assert_eq!(doc.get("address.missing"), None);
        assert_eq!(doc.get("city.not_a_map"), None);
        assert_eq!(doc.get("absent"), None);
    }

    #[test]
    fn nested_array_detection() {
        let ok = Value::Array(vec![Value::map([(
            "inner",
            Value::Array(vec![Value::Int(1)]),
        )])]);
        // Array -> map -> array is legal in Firestore.
        assert!(!ok.has_nested_array());
        let bad = Value::Array(vec![Value::Array(vec![Value::Int(1)])]);
        assert!(bad.has_nested_array());
        assert!(!Value::Int(3).has_nested_array());
    }

    #[test]
    fn size_accounting_scales() {
        let small = restaurant();
        let mut big = restaurant();
        big.fields
            .insert("blob".into(), Value::Str("x".repeat(100_000)));
        assert!(big.approx_size() > small.approx_size() + 100_000 - 10);
        assert!(small.approx_size() < MAX_DOCUMENT_SIZE);
    }

    #[test]
    fn varint_round_trip() {
        for n in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            encode_varint(n, &mut buf);
            let mut pos = 0;
            assert_eq!(decode_varint(&buf, &mut pos), Some(n));
            assert_eq!(pos, buf.len());
        }
    }
}
