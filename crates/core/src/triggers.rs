//! Write triggers (§III-F, §IV-D2).
//!
//! "Firestore allows the definition of triggers on database changes that
//! call specific handlers ... If an incoming request matches a trigger, the
//! Backend persists a message with the changes to document(s), which is then
//! asynchronously removed and delivered to the Cloud Functions service."
//!
//! We reproduce the same contract over the substrate's transactional
//! messaging: the message commits atomically with the write, and a
//! [`TriggerExecutor`] (standing in for the Cloud Functions dispatcher)
//! drains and invokes handlers asynchronously with at-least-once delivery.

use crate::document::Document;
use crate::error::FirestoreResult;
use crate::observer::DocumentChange;
use crate::path::DocumentName;
use bytes::Bytes;
use parking_lot::RwLock;
use spanner::messaging::MessageQueue;
use spanner::ReadWriteTransaction;

/// A trigger id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TriggerId(pub u64);

/// A registered trigger: fires for every change to documents of a
/// collection id.
#[derive(Clone, Debug)]
pub struct Trigger {
    /// Identifier (also selects the message topic).
    pub id: TriggerId,
    /// The collection id to watch (e.g. `ratings`).
    pub collection_id: String,
}

impl Trigger {
    fn topic(&self) -> Vec<u8> {
        format!("trigger/{}", self.id.0).into_bytes()
    }
}

/// The registry of a database's triggers.
#[derive(Debug, Default)]
pub struct TriggerRegistry {
    triggers: RwLock<Vec<Trigger>>,
    next_id: RwLock<u64>,
}

impl TriggerRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        TriggerRegistry::default()
    }

    /// Register a trigger on a collection id, returning its id.
    pub fn register(&self, collection_id: &str) -> TriggerId {
        let mut next = self.next_id.write();
        let id = TriggerId(*next);
        *next += 1;
        self.triggers.write().push(Trigger {
            id,
            collection_id: collection_id.to_string(),
        });
        id
    }

    /// Remove a trigger.
    pub fn unregister(&self, id: TriggerId) {
        self.triggers.write().retain(|t| t.id != id);
    }

    /// Number of registered triggers.
    pub fn len(&self) -> usize {
        self.triggers.read().len()
    }

    /// Whether no triggers are registered.
    pub fn is_empty(&self) -> bool {
        self.triggers.read().is_empty()
    }

    /// Enqueue messages for every `(change, matching trigger)` pair into
    /// `txn` — they commit with the write (§IV-D2).
    pub fn enqueue_matches(
        &self,
        queue: &MessageQueue,
        txn: &mut ReadWriteTransaction,
        changes: &[DocumentChange],
    ) -> FirestoreResult<()> {
        let triggers = self.triggers.read();
        if triggers.is_empty() {
            return Ok(());
        }
        for change in changes {
            for t in triggers.iter() {
                if change.name.collection_id() == t.collection_id {
                    queue.enqueue(txn, &t.topic(), encode_change(change))?;
                }
            }
        }
        Ok(())
    }
}

/// A decoded trigger event, "the delta from that change is conveniently
/// available in the handler" (§III-F).
#[derive(Clone, Debug, PartialEq)]
pub struct TriggerEvent {
    /// The changed document's name.
    pub name: DocumentName,
    /// The previous version, if any.
    pub old: Option<Document>,
    /// The new version, if any (`None` = delete).
    pub new: Option<Document>,
}

fn encode_change(change: &DocumentChange) -> Bytes {
    let name_enc = change.name.encode();
    let old = change.old.as_ref().map(Document::encode);
    let new = change.new.as_ref().map(Document::encode);
    let mut out = Vec::new();
    out.extend_from_slice(&(name_enc.len() as u32).to_be_bytes());
    out.extend_from_slice(&name_enc);
    for part in [old, new] {
        match part {
            None => out.extend_from_slice(&u32::MAX.to_be_bytes()),
            Some(b) => {
                out.extend_from_slice(&(b.len() as u32).to_be_bytes());
                out.extend_from_slice(&b);
            }
        }
    }
    Bytes::from(out)
}

fn decode_change(bytes: &[u8]) -> Option<TriggerEvent> {
    let mut pos = 0usize;
    let read_len = |bytes: &[u8], pos: &mut usize| -> Option<Option<usize>> {
        let raw = bytes.get(*pos..*pos + 4)?;
        *pos += 4;
        let n = u32::from_be_bytes(raw.try_into().ok()?);
        Some(if n == u32::MAX {
            None
        } else {
            Some(n as usize)
        })
    };
    let name_len = read_len(bytes, &mut pos)??;
    let name = DocumentName::decode(bytes.get(pos..pos + name_len)?)?;
    pos += name_len;
    let mut parts: Vec<Option<Document>> = Vec::with_capacity(2);
    for _ in 0..2 {
        match read_len(bytes, &mut pos)? {
            None => parts.push(None),
            Some(len) => {
                let doc = Document::decode(name.clone(), bytes.get(pos..pos + len)?)?;
                pos += len;
                parts.push(Some(doc));
            }
        }
    }
    let new = parts.pop()?;
    let old = parts.pop()?;
    Some(TriggerEvent { name, old, new })
}

/// Drains trigger messages and invokes handlers — the Cloud Functions
/// dispatcher stand-in.
pub struct TriggerExecutor;

impl TriggerExecutor {
    /// Deliver up to `limit` pending events of `trigger` to `handler`,
    /// returning how many were delivered. At-least-once: a handler panic
    /// would redeliver on the next drain (messages are acked in batch after
    /// the loop).
    pub fn drain(
        queue: &MessageQueue,
        trigger: TriggerId,
        limit: usize,
        mut handler: impl FnMut(TriggerEvent),
    ) -> FirestoreResult<usize> {
        let topic = format!("trigger/{}", trigger.0).into_bytes();
        let msgs = queue
            .dequeue(&topic, limit)
            .map_err(crate::error::FirestoreError::from)?;
        let n = msgs.len();
        for m in &msgs {
            if let Some(event) = decode_change(&m.payload) {
                handler(event);
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Value;
    use crate::path::DocumentName;

    fn change(path: &str, old: Option<i64>, new: Option<i64>) -> DocumentChange {
        let name = DocumentName::parse(path).unwrap();
        let mk = |v: i64| Document::new(name.clone(), [("v", Value::Int(v))]);
        let old = old.map(mk);
        let new = new.map(mk);
        DocumentChange { name, old, new }
    }

    #[test]
    fn encode_decode_event_round_trip() {
        for (old, new) in [(None, Some(1)), (Some(1), Some(2)), (Some(2), None)] {
            let c = change("/ratings/1", old, new);
            let enc = encode_change(&c);
            let ev = decode_change(&enc).unwrap();
            assert_eq!(ev.name, c.name);
            assert_eq!(ev.old.map(|d| d.fields["v"].clone()), old.map(Value::Int));
            assert_eq!(ev.new.map(|d| d.fields["v"].clone()), new.map(Value::Int));
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let c = change("/ratings/1", None, Some(1));
        let enc = encode_change(&c);
        for cut in [0, 3, enc.len() / 2, enc.len() - 1] {
            assert!(decode_change(&enc[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn registry_matches_by_collection_id() {
        let reg = TriggerRegistry::new();
        let t = reg.register("ratings");
        assert_eq!(reg.len(), 1);
        // Matching is exercised end-to-end in the database tests; here we
        // check register/unregister bookkeeping.
        reg.unregister(t);
        assert!(reg.is_empty());
    }
}
