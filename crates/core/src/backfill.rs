//! The index backfill / backremoval background service (§IV-D1).
//!
//! "Adding or removing a Firestore secondary index requires a backfill or
//! backremoval in the Spanner IndexEntries table. This is managed by a
//! background service that receives index change requests, scans the
//! Entities table for all affected documents, makes the required
//! IndexEntries row additions or removals in Spanner, and finally marks the
//! index change as complete."
//!
//! Correctness depends on writes concurrently maintaining `Building`
//! indexes (see [`crate::write::MAINTAINED_STATES`]): the backfill scans a
//! snapshot in batches while live traffic keeps newer versions indexed; a
//! per-batch transactional insert-if-current guards against racing deletes.

use crate::database::FirestoreDatabase;
use crate::document::Document;
use crate::error::{FirestoreError, FirestoreResult};
use crate::executor::{ENTITIES, INDEX_ENTRIES};
use crate::index::{entries_for_document, index_prefix, IndexId, IndexState};
use crate::path::DocumentName;
use bytes::Bytes;
use simkit::Timestamp;
use spanner::{Key, KeyRange};

/// Progress cursor of an incremental backfill.
#[derive(Clone, Debug)]
pub struct BackfillCursor {
    index: IndexId,
    /// Resume scanning `Entities` from this key.
    next_key: Key,
    /// Documents processed so far.
    pub processed: usize,
    done: bool,
}

impl BackfillCursor {
    /// Start a backfill of `index` (must be in `Building` state).
    pub fn new(db: &FirestoreDatabase, index: IndexId) -> FirestoreResult<BackfillCursor> {
        let state = db.with_catalog(|c| c.composite(index).map(|d| d.state));
        match state {
            Some(IndexState::Building) => Ok(BackfillCursor {
                index,
                next_key: db.directory().range().start,
                processed: 0,
                done: false,
            }),
            Some(other) => Err(FirestoreError::FailedPrecondition(format!(
                "index {index:?} is {other:?}, not Building"
            ))),
            None => Err(FirestoreError::NotFound(format!("index {index:?}"))),
        }
    }

    /// Whether the scan has covered every document.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Process one batch of up to `batch_size` documents; returns how many
    /// were indexed. Marks the index `Ready` once the scan completes.
    pub fn step(&mut self, db: &FirestoreDatabase, batch_size: usize) -> FirestoreResult<usize> {
        if self.done {
            return Ok(0);
        }
        let spanner = db.spanner();
        let dir = db.directory();
        let ts = spanner.strong_read_ts();
        let range = KeyRange::new(self.next_key.clone(), dir.range().end);
        let rows = spanner.snapshot_scan(ENTITIES, &range, ts, batch_size)?;
        if rows.is_empty() {
            db.with_catalog(|c| c.set_state(self.index, IndexState::Ready));
            self.done = true;
            return Ok(0);
        }
        let mut txn = spanner.begin();
        let mut indexed = 0;
        for (key, _bytes) in &rows {
            // Re-read under lock so a concurrent update/delete between the
            // snapshot scan and this transaction cannot resurrect stale
            // entries.
            let current = spanner.txn_read(&mut txn, ENTITIES, key)?;
            let Some(current) = current else { continue };
            let name_bytes = &key.as_slice()[4..];
            let Some(name) = DocumentName::decode(name_bytes) else {
                return Err(FirestoreError::Internal("corrupt entity key".into()));
            };
            let Some(doc) = Document::decode(name.clone(), &current) else {
                return Err(FirestoreError::Internal(format!("corrupt document {name}")));
            };
            let keys = db.with_catalog(|c| {
                // Compute only this index's entries.
                entries_for_document(c, dir, &doc, &[IndexState::Building])
                    .into_iter()
                    .filter(|k| k.has_prefix(&index_prefix(dir, self.index)))
                    .collect::<Vec<_>>()
            });
            for k in keys {
                spanner.txn_put(&mut txn, INDEX_ENTRIES, k, Bytes::from(name.encode()))?;
                indexed += 1;
            }
        }
        spanner.commit(txn, Timestamp::ZERO, Timestamp::MAX)?;
        self.processed += rows.len();
        self.next_key = rows.last().expect("non-empty").0.successor();
        Ok(indexed)
    }
}

/// Run a backfill to completion in batches of `batch_size`.
pub fn run_backfill(
    db: &FirestoreDatabase,
    index: IndexId,
    batch_size: usize,
) -> FirestoreResult<usize> {
    let mut cursor = BackfillCursor::new(db, index)?;
    let mut total = 0;
    while !cursor.is_done() {
        total += cursor.step(db, batch_size)?;
    }
    Ok(total)
}

/// Remove an index: mark `Removing` (writes stop maintaining it), delete
/// its entries in batches, then drop the definition.
pub fn run_backremoval(
    db: &FirestoreDatabase,
    index: IndexId,
    batch_size: usize,
) -> FirestoreResult<usize> {
    let exists = db.with_catalog(|c| c.set_state(index, IndexState::Removing));
    if !exists {
        return Err(FirestoreError::NotFound(format!("index {index:?}")));
    }
    let spanner = db.spanner();
    let dir = db.directory();
    let prefix = Key::from(index_prefix(dir, index));
    let range = KeyRange::prefix(&prefix);
    let mut removed = 0;
    loop {
        let ts = spanner.strong_read_ts();
        let rows = spanner.snapshot_scan(INDEX_ENTRIES, &range, ts, batch_size)?;
        if rows.is_empty() {
            break;
        }
        let mut txn = spanner.begin();
        for (key, _) in &rows {
            spanner.txn_delete(&mut txn, INDEX_ENTRIES, key.clone())?;
        }
        spanner.commit(txn, Timestamp::ZERO, Timestamp::MAX)?;
        removed += rows.len();
    }
    db.with_catalog(|c| c.remove(index));
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{doc, FirestoreDatabase};
    use crate::document::Value;
    use crate::encoding::Direction;
    use crate::index::IndexedField;
    use crate::query::{FilterOp, Query};
    use crate::write::{Caller, Write};
    use simkit::{Duration, SimClock};
    use spanner::SpannerDatabase;

    fn setup_with_docs(n: usize) -> FirestoreDatabase {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        let db = FirestoreDatabase::create_default(SpannerDatabase::new(clock));
        for i in 0..n {
            let w = Write::set(
                doc(&format!("/restaurants/r{i:03}")),
                [
                    ("city", Value::from(if i % 2 == 0 { "SF" } else { "NY" })),
                    ("avgRating", Value::Double(i as f64 / 10.0)),
                ],
            );
            db.commit_writes(vec![w], &Caller::Service).unwrap();
        }
        db
    }

    fn composite_query() -> Query {
        Query::parse("/restaurants")
            .unwrap()
            .filter("city", FilterOp::Eq, "SF")
            .order_by("avgRating", Direction::Desc)
    }

    #[test]
    fn backfill_makes_composite_queryable() {
        let db = setup_with_docs(20);
        // Without the composite, the query fails.
        assert!(matches!(
            db.run_query(
                &composite_query(),
                crate::Consistency::Strong,
                &Caller::Service
            ),
            Err(FirestoreError::MissingIndex { .. })
        ));
        let id = db.with_catalog(|c| {
            c.add_composite(
                "restaurants",
                vec![IndexedField::asc("city"), IndexedField::desc("avgRating")],
                IndexState::Building,
            )
        });
        let entries = run_backfill(&db, id, 7).unwrap();
        // Every document has both fields, so all 20 get a composite entry.
        assert_eq!(entries, 20);
        let res = db
            .run_query(
                &composite_query(),
                crate::Consistency::Strong,
                &Caller::Service,
            )
            .unwrap();
        assert_eq!(res.documents.len(), 10);
        // Descending avgRating order.
        let ratings: Vec<f64> = res
            .documents
            .iter()
            .map(|d| match d.fields["avgRating"] {
                Value::Double(x) => x,
                _ => unreachable!(),
            })
            .collect();
        let mut sorted = ratings.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(ratings, sorted);
    }

    #[test]
    fn writes_during_backfill_are_indexed() {
        let db = setup_with_docs(10);
        let id = db.with_catalog(|c| {
            c.add_composite(
                "restaurants",
                vec![IndexedField::asc("city"), IndexedField::desc("avgRating")],
                IndexState::Building,
            )
        });
        let mut cursor = BackfillCursor::new(&db, id).unwrap();
        cursor.step(&db, 4).unwrap();
        // A write lands mid-backfill (beyond the cursor AND behind it).
        db.commit_writes(
            vec![Write::set(
                doc("/restaurants/a-early"),
                [
                    ("city", Value::from("SF")),
                    ("avgRating", Value::Double(9.9)),
                ],
            )],
            &Caller::Service,
        )
        .unwrap();
        while !cursor.is_done() {
            cursor.step(&db, 4).unwrap();
        }
        let res = db
            .run_query(
                &composite_query(),
                crate::Consistency::Strong,
                &Caller::Service,
            )
            .unwrap();
        assert!(res.documents.iter().any(|d| d.name.id() == "a-early"));
        // And it sorts first (9.9 is the max, desc order).
        assert_eq!(res.documents[0].name.id(), "a-early");
    }

    #[test]
    fn backremoval_deletes_entries_and_definition() {
        let db = setup_with_docs(8);
        let id = db.with_catalog(|c| {
            c.add_composite(
                "restaurants",
                vec![IndexedField::asc("city"), IndexedField::desc("avgRating")],
                IndexState::Building,
            )
        });
        run_backfill(&db, id, 3).unwrap();
        let removed = run_backremoval(&db, id, 3).unwrap();
        assert_eq!(removed, 8);
        assert!(db.with_catalog(|c| c.composite(id).is_none()));
        assert!(matches!(
            db.run_query(
                &composite_query(),
                crate::Consistency::Strong,
                &Caller::Service
            ),
            Err(FirestoreError::MissingIndex { .. })
        ));
    }

    #[test]
    fn backfill_requires_building_state() {
        let db = setup_with_docs(1);
        let id = db.with_catalog(|c| {
            c.add_composite(
                "restaurants",
                vec![IndexedField::asc("city")],
                IndexState::Ready,
            )
        });
        assert!(matches!(
            BackfillCursor::new(&db, id),
            Err(FirestoreError::FailedPrecondition(_))
        ));
        assert!(matches!(
            BackfillCursor::new(&db, IndexId(999)),
            Err(FirestoreError::NotFound(_))
        ));
    }
}
