//! The commit-observer interface between the write path and the Real-time
//! Cache.
//!
//! Paper §IV-D2, steps 5 and 7: before committing, the Backend runs a
//! two-phase commit with the Real-time Cache — one or more `Prepare` RPCs
//! carrying a maximum commit timestamp `M` (each returning a minimum allowed
//! timestamp `m`), then, after the Spanner commit, `Accept` RPCs carrying
//! the outcome and, on success, "the name of each deleted document, a full
//! copy of each inserted document, and a full copy of each modified
//! document".
//!
//! The `realtime` crate implements this trait; [`NullObserver`] serves
//! databases without any real-time listeners.

use crate::document::Document;
use crate::path::DocumentName;
use simkit::Timestamp;

/// One document's change in a committed write.
#[derive(Clone, Debug, PartialEq)]
pub struct DocumentChange {
    /// The document's name.
    pub name: DocumentName,
    /// Previous version (`None` for an insert).
    pub old: Option<Document>,
    /// New version (`None` for a delete).
    pub new: Option<Document>,
}

impl DocumentChange {
    /// Whether this change deletes the document.
    pub fn is_delete(&self) -> bool {
        self.new.is_none()
    }

    /// Whether this change creates the document.
    pub fn is_insert(&self) -> bool {
        self.old.is_none() && self.new.is_some()
    }
}

/// The outcome reported by an `Accept`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitOutcome {
    /// Spanner committed at the given timestamp.
    Committed(Timestamp),
    /// Spanner definitively failed (contention, timestamp window).
    Failed,
    /// The outcome is unknown (timeout); the Real-time Cache must discard
    /// its in-memory mutation sequence and mark the range out of sync.
    Unknown,
}

/// A token correlating `prepare` with its `accept`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PrepareToken(pub u64);

/// Errors from `prepare`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrepareUnavailable;

/// The Real-time Cache's side of the write two-phase commit.
pub trait CommitObserver: Send + Sync {
    /// Phase one: announce a pending write to `names` with maximum commit
    /// timestamp `max_ts`. Returns the minimum allowed commit timestamp and
    /// a token for the matching [`CommitObserver::accept`]. An error fails
    /// the write (paper: "the Prepare RPC fails because the Real-time Cache
    /// is unavailable ... the write fails").
    fn prepare(
        &self,
        names: &[DocumentName],
        max_ts: Timestamp,
    ) -> Result<(PrepareToken, Timestamp), PrepareUnavailable>;

    /// Phase two: report the outcome. On success `changes` carries the full
    /// document copies.
    fn accept(&self, token: PrepareToken, outcome: CommitOutcome, changes: Vec<DocumentChange>);
}

/// An observer for databases with no real-time listeners: allows any commit
/// timestamp and ignores outcomes.
#[derive(Debug, Default)]
pub struct NullObserver;

impl CommitObserver for NullObserver {
    fn prepare(
        &self,
        _names: &[DocumentName],
        _max_ts: Timestamp,
    ) -> Result<(PrepareToken, Timestamp), PrepareUnavailable> {
        Ok((PrepareToken(0), Timestamp::ZERO))
    }

    fn accept(&self, _token: PrepareToken, _outcome: CommitOutcome, _changes: Vec<DocumentChange>) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Value;

    #[test]
    fn change_classification() {
        let name = DocumentName::parse("/c/d").unwrap();
        let doc = Document::new(name.clone(), [("x", Value::Int(1))]);
        let insert = DocumentChange {
            name: name.clone(),
            old: None,
            new: Some(doc.clone()),
        };
        assert!(insert.is_insert() && !insert.is_delete());
        let delete = DocumentChange {
            name: name.clone(),
            old: Some(doc.clone()),
            new: None,
        };
        assert!(delete.is_delete() && !delete.is_insert());
        let modify = DocumentChange {
            name,
            old: Some(doc.clone()),
            new: Some(doc),
        };
        assert!(!modify.is_insert() && !modify.is_delete());
    }

    #[test]
    fn null_observer_permits_everything() {
        let o = NullObserver;
        let (token, min) = o.prepare(&[], Timestamp::from_secs(1)).unwrap();
        assert_eq!(min, Timestamp::ZERO);
        o.accept(
            token,
            CommitOutcome::Committed(Timestamp::from_secs(1)),
            vec![],
        );
        o.accept(token, CommitOutcome::Unknown, vec![]);
    }
}
