//! The write pipeline (paper §IV-D2).
//!
//! A Firestore commit is processed as:
//!
//! 1. create a Spanner read-write transaction,
//! 2. read the affected documents with exclusive locks and verify
//!    preconditions,
//! 3. for third-party requests, execute the database's security rules
//!    (with `get()`/`exists()` lookups resolved *inside the same
//!    transaction*),
//! 4. compute index-entry changes from the cached index definitions and add
//!    the `Entities`/`IndexEntries` row mutations to the transaction,
//! 5. pick a max commit timestamp `M` and `Prepare` the Real-time Cache,
//!    receiving a minimum allowed timestamp `m`,
//! 6. commit the Spanner transaction with window `[m, M]`,
//! 7. `Accept` the Real-time Cache with the outcome and full document
//!    copies.
//!
//! Every failure path the paper enumerates is implemented: precondition /
//! rules denials return errors before any mutation; Prepare unavailability
//! fails the write; a definitive Spanner failure sends `Accept(Failed)`; an
//! unknown outcome sends `Accept(Unknown)`, and the write's result is
//! reported as unknown to the caller.

use crate::document::{Document, Value, MAX_DOCUMENT_SIZE};
use crate::error::{FirestoreError, FirestoreResult};
use crate::executor::{ENTITIES, INDEX_ENTRIES};
use crate::index::{entry_diff_per_index, IndexState};
use crate::observer::{CommitOutcome, DocumentChange};
use crate::path::DocumentName;
use bytes::Bytes;
use rules::{AuthContext, DataSource, Method, RequestContext, RuleValue};
use simkit::{prof, Duration, Timestamp};
use spanner::{ReadWriteTransaction, SpannerError};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Who is performing a request.
#[derive(Clone, Debug)]
pub enum Caller {
    /// A privileged server-side caller (Server SDKs, §III-D); security
    /// rules do not apply.
    Service,
    /// An end-user via the Mobile/Web SDKs; security rules apply, with
    /// `None` meaning unauthenticated.
    EndUser(Option<AuthContext>),
}

impl Caller {
    /// Whether rules must be evaluated for this caller.
    pub fn is_third_party(&self) -> bool {
        matches!(self, Caller::EndUser(_))
    }

    /// The auth context rules see.
    pub fn auth(&self) -> Option<AuthContext> {
        match self {
            Caller::Service => None,
            Caller::EndUser(a) => a.clone(),
        }
    }
}

/// A single operation within a commit.
#[derive(Clone, Debug, PartialEq)]
pub enum WriteOp {
    /// Create or replace the document.
    Set {
        /// Target document.
        name: DocumentName,
        /// The full new field map (Firestore `set` semantics).
        fields: BTreeMap<String, Value>,
    },
    /// Delete the document (idempotent).
    Delete {
        /// Target document.
        name: DocumentName,
    },
    /// Merge the given fields into the document, creating it if absent —
    /// the SDKs' `set(..., {merge: true})`. Unlisted fields are preserved.
    Merge {
        /// Target document.
        name: DocumentName,
        /// Fields to merge.
        fields: BTreeMap<String, Value>,
    },
    /// Verify-only: check the precondition (freshness revalidation for
    /// optimistic client transactions, §III-E: "all data read by the
    /// transaction is revalidated for freshness at the time of the
    /// commit") without mutating anything.
    Verify {
        /// Target document.
        name: DocumentName,
    },
}

impl WriteOp {
    /// The document this write targets.
    pub fn name(&self) -> &DocumentName {
        match self {
            WriteOp::Set { name, .. } => name,
            WriteOp::Merge { name, .. } => name,
            WriteOp::Delete { name } => name,
            WriteOp::Verify { name } => name,
        }
    }

    /// Whether this op mutates the document.
    pub fn is_mutation(&self) -> bool {
        !matches!(self, WriteOp::Verify { .. })
    }
}

/// A precondition attached to a write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precondition {
    /// No precondition (blind write, "last update wins", §III-E).
    None,
    /// The document must already exist.
    MustExist,
    /// The document must not exist (create).
    MustNotExist,
    /// The document's `update_time` must equal the given timestamp — the
    /// freshness check behind the SDKs' optimistic concurrency control
    /// (§III-E: "all data read by the transaction is revalidated for
    /// freshness at the time of the commit").
    UpdateTimeEquals(Timestamp),
}

/// A write with its precondition.
#[derive(Clone, Debug, PartialEq)]
pub struct Write {
    /// The operation.
    pub op: WriteOp,
    /// Its precondition.
    pub precondition: Precondition,
}

impl Write {
    /// A set with no precondition.
    pub fn set(
        name: DocumentName,
        fields: impl IntoIterator<Item = (impl Into<String>, Value)>,
    ) -> Write {
        Write {
            op: WriteOp::Set {
                name,
                fields: fields.into_iter().map(|(k, v)| (k.into(), v)).collect(),
            },
            precondition: Precondition::None,
        }
    }

    /// A create (set that must not overwrite).
    pub fn create(
        name: DocumentName,
        fields: impl IntoIterator<Item = (impl Into<String>, Value)>,
    ) -> Write {
        Write {
            precondition: Precondition::MustNotExist,
            ..Write::set(name, fields)
        }
    }

    /// An update (set that requires existence).
    pub fn update(
        name: DocumentName,
        fields: impl IntoIterator<Item = (impl Into<String>, Value)>,
    ) -> Write {
        Write {
            precondition: Precondition::MustExist,
            ..Write::set(name, fields)
        }
    }

    /// A delete with no precondition.
    pub fn delete(name: DocumentName) -> Write {
        Write {
            op: WriteOp::Delete { name },
            precondition: Precondition::None,
        }
    }

    /// A verify-only write (freshness check).
    pub fn verify(name: DocumentName, precondition: Precondition) -> Write {
        Write {
            op: WriteOp::Verify { name },
            precondition,
        }
    }

    /// A merge (upsert preserving unlisted fields).
    pub fn merge(
        name: DocumentName,
        fields: impl IntoIterator<Item = (impl Into<String>, Value)>,
    ) -> Write {
        Write {
            op: WriteOp::Merge {
                name,
                fields: fields.into_iter().map(|(k, v)| (k.into(), v)).collect(),
            },
            precondition: Precondition::None,
        }
    }

    /// Attach a precondition.
    pub fn with_precondition(mut self, p: Precondition) -> Write {
        self.precondition = p;
        self
    }
}

/// Statistics of a committed write, used for billing and the latency model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteStats {
    /// Index-entry rows inserted or deleted.
    pub index_entries_touched: usize,
    /// Total mutation payload bytes.
    pub payload_bytes: usize,
    /// Distinct Spanner tablets (2PC participant groups).
    pub participants: usize,
    /// Documents written or deleted.
    pub documents: usize,
    /// Simulated time spent waiting for Spanner write locks (Phase 1).
    pub lock_wait: Duration,
    /// Simulated commit-wait (Spanner Phase 4, out of the TrueTime
    /// uncertainty window).
    pub commit_wait: Duration,
    /// CPU time the cost ledger charged to the simulated clock inside the
    /// engine for this commit: per-index maintenance (core) plus redo
    /// appends, fsyncs, and lock release (Spanner). Measured, not modeled —
    /// it reconciles against profiler self-time.
    pub engine_cpu: Duration,
}

/// The result of a successful commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteResult {
    /// The commit timestamp (also the new `update_time` of every written
    /// document).
    pub commit_ts: Timestamp,
    /// Work accounting.
    pub stats: WriteStats,
}

/// Convert a document value into the rules value domain.
pub fn value_to_rule(v: &Value) -> RuleValue {
    match v {
        Value::Null => RuleValue::Null,
        Value::Bool(b) => RuleValue::Bool(*b),
        Value::Int(i) => RuleValue::Int(*i),
        Value::Double(x) => RuleValue::Float(*x),
        Value::Timestamp(us) => RuleValue::Int(*us),
        Value::Str(s) => RuleValue::Str(s.clone()),
        Value::Bytes(b) => RuleValue::Str(format!("bytes:{}", b.len())),
        Value::Reference(r) => RuleValue::Str(r.to_string()),
        Value::Array(items) => RuleValue::List(items.iter().map(value_to_rule).collect()),
        Value::Map(m) => RuleValue::Map(
            m.iter()
                .map(|(k, val)| (k.clone(), value_to_rule(val)))
                .collect(),
        ),
    }
}

/// Convert a document's fields into a rules map.
pub fn fields_to_rule(fields: &BTreeMap<String, Value>) -> RuleValue {
    RuleValue::Map(
        fields
            .iter()
            .map(|(k, v)| (k.clone(), value_to_rule(v)))
            .collect(),
    )
}

/// A [`DataSource`] resolving `get()`/`exists()` rules lookups through the
/// same Spanner transaction as the write being authorized —
/// "transactionally-consistent fashion with the operation being authorized"
/// (§III-E).
pub struct TxnDataSource<'a> {
    /// The Spanner handle.
    pub spanner: &'a spanner::SpannerDatabase,
    /// The database's directory.
    pub dir: spanner::database::DirectoryId,
    /// The in-flight transaction (interior mutability because
    /// [`DataSource::get_document`] takes `&self`).
    pub txn: RefCell<&'a mut ReadWriteTransaction>,
}

impl DataSource for TxnDataSource<'_> {
    fn get_document(&self, path: &[String]) -> Option<RuleValue> {
        let name = DocumentName::from_segments(path.to_vec()).ok()?;
        let key = self.dir.key(&name.encode());
        let mut txn = self.txn.borrow_mut();
        let bytes = self.spanner.txn_read(&mut txn, ENTITIES, &key).ok()??;
        let doc = Document::decode(name, &bytes)?;
        Some(fields_to_rule(&doc.fields))
    }
}

/// A [`DataSource`] resolving lookups at a snapshot timestamp (for read
/// authorization outside transactions).
pub struct SnapshotDataSource<'a> {
    /// The Spanner handle.
    pub spanner: &'a spanner::SpannerDatabase,
    /// The database's directory.
    pub dir: spanner::database::DirectoryId,
    /// Read timestamp.
    pub ts: Timestamp,
}

impl DataSource for SnapshotDataSource<'_> {
    fn get_document(&self, path: &[String]) -> Option<RuleValue> {
        let name = DocumentName::from_segments(path.to_vec()).ok()?;
        let key = self.dir.key(&name.encode());
        let bytes = self.spanner.snapshot_read(ENTITIES, &key, self.ts).ok()??;
        let doc = Document::decode(name, &bytes)?;
        Some(fields_to_rule(&doc.fields))
    }
}

/// Validate a write's document contents (size limit, nested arrays).
pub fn validate_write(w: &Write) -> FirestoreResult<()> {
    if let WriteOp::Set { name, fields } | WriteOp::Merge { name, fields } = &w.op {
        let doc = Document::new(name.clone(), fields.clone());
        if doc.approx_size() > MAX_DOCUMENT_SIZE {
            return Err(FirestoreError::InvalidArgument(format!(
                "document {name} exceeds the 1 MiB limit ({} bytes)",
                doc.approx_size()
            )));
        }
        for (field, v) in fields {
            if v.has_nested_array() {
                return Err(FirestoreError::InvalidArgument(format!(
                    "field `{field}` contains a directly nested array"
                )));
            }
        }
    }
    Ok(())
}

/// Check a precondition against the currently stored document.
pub fn check_precondition(w: &Write, old: Option<&Document>) -> FirestoreResult<()> {
    let name = w.op.name();
    match (w.precondition, old) {
        (Precondition::None, _) => Ok(()),
        (Precondition::MustExist, Some(_)) => Ok(()),
        (Precondition::MustExist, None) => Err(FirestoreError::NotFound(name.to_string())),
        (Precondition::MustNotExist, None) => Ok(()),
        (Precondition::MustNotExist, Some(_)) => {
            Err(FirestoreError::AlreadyExists(name.to_string()))
        }
        (Precondition::UpdateTimeEquals(ts), Some(doc)) if doc.update_time == ts => Ok(()),
        (Precondition::UpdateTimeEquals(_), _) => Err(FirestoreError::FailedPrecondition(format!(
            "{name} was modified since it was read"
        ))),
    }
}

/// The rules method a write maps to.
pub fn write_method(w: &Write, old: Option<&Document>) -> Method {
    match &w.op {
        WriteOp::Verify { .. } => Method::Get,
        WriteOp::Delete { .. } => Method::Delete,
        WriteOp::Set { .. } | WriteOp::Merge { .. } => {
            if old.is_some() {
                Method::Update
            } else {
                Method::Create
            }
        }
    }
}

/// Build the rules request context for a write.
pub fn write_request_context(
    w: &Write,
    old: Option<&Document>,
    auth: Option<AuthContext>,
) -> RequestContext {
    let name = w.op.name();
    let doc_path: Vec<&str> = name.segments().iter().map(String::as_str).collect();
    let request_data = match &w.op {
        WriteOp::Set { fields, .. } | WriteOp::Merge { fields, .. } => Some(fields_to_rule(fields)),
        WriteOp::Delete { .. } | WriteOp::Verify { .. } => None,
    };
    RequestContext::for_document(
        write_method(w, old),
        &doc_path,
        auth,
        old.map(|d| fields_to_rule(&d.fields)),
        request_data,
    )
}

/// Map a Spanner commit error to `(outcome for Accept, error for caller)`.
pub fn classify_commit_error(e: SpannerError) -> (CommitOutcome, FirestoreError) {
    match e {
        SpannerError::UnknownOutcome => (
            CommitOutcome::Unknown,
            FirestoreError::Unknown("commit timed out".into()),
        ),
        other => (CommitOutcome::Failed, other.into()),
    }
}

/// Encode a document for storage. `create_time` is stored as zero for new
/// documents (meaning "same as the version timestamp"); `update_time` is
/// always derived from the MVCC version timestamp on read.
pub fn encode_for_storage(
    name: &DocumentName,
    fields: &BTreeMap<String, Value>,
    create_time: Timestamp,
) -> Bytes {
    let mut doc = Document::new(name.clone(), fields.clone());
    doc.create_time = create_time;
    doc.update_time = Timestamp::ZERO; // derived from the version timestamp
    doc.encode()
}

/// Decode a stored document, patching its timestamps from the version
/// timestamp.
pub fn decode_from_storage(
    name: DocumentName,
    bytes: &[u8],
    version_ts: Timestamp,
) -> Option<Document> {
    let mut doc = Document::decode(name, bytes)?;
    doc.update_time = version_ts;
    if doc.create_time == Timestamp::ZERO {
        doc.create_time = version_ts;
    }
    Some(doc)
}

/// The states whose indexes a write must maintain: `Ready` plus in-progress
/// backfills ("a query that mutates the database also makes all necessary
/// updates to the IndexEntries table so that it conforms to an on-going
/// backfill", §IV-D1).
pub const MAINTAINED_STATES: &[IndexState] = &[IndexState::Ready, IndexState::Building];

/// Assemble the Spanner mutations for one document change, per maintained
/// index, and return `(index entries touched, cost-ledger CPU charged)`.
///
/// Each index with a nonempty diff gets its own `core.index.maintain` span
/// (§III-C: index maintenance on every write is the write-amplification hot
/// spot, so the profiler must attribute it separately from lock and fsync
/// time); the per-entry cost is charged to the simulated clock whether or
/// not a tracer is attached.
pub fn apply_change_to_txn(
    spanner: &spanner::SpannerDatabase,
    dir: spanner::database::DirectoryId,
    catalog: &mut crate::index::IndexCatalog,
    txn: &mut ReadWriteTransaction,
    change: &DocumentChange,
    obs: Option<&simkit::Obs>,
) -> FirestoreResult<(usize, Duration)> {
    let key = dir.key(&change.name.encode());
    match &change.new {
        Some(doc) => {
            let create_time = change
                .old
                .as_ref()
                .map(|d| d.create_time)
                .unwrap_or(Timestamp::ZERO);
            let bytes = encode_for_storage(&change.name, &doc.fields, create_time);
            spanner.txn_put(txn, ENTITIES, key, bytes)?;
        }
        None => {
            spanner.txn_delete(txn, ENTITIES, key)?;
        }
    }
    let per_index = entry_diff_per_index(
        catalog,
        dir,
        change.old.as_ref(),
        change.new.as_ref(),
        MAINTAINED_STATES,
    );
    let clock = spanner.truetime().clock();
    let mut touched = 0usize;
    let mut charged = Duration::ZERO;
    for m in per_index {
        let n = m.removals.len() + m.additions.len();
        let span = (n > 0)
            .then(|| obs.map(|o| o.tracer.span("core.index.maintain")))
            .flatten();
        if let Some(s) = &span {
            s.attr("index", m.index.0);
            s.attr("removed", m.removals.len());
            s.attr("added", m.additions.len());
        }
        for k in m.removals {
            spanner.txn_delete(txn, INDEX_ENTRIES, k)?;
        }
        for k in m.additions {
            // The row value carries the encoded document name so the
            // executor never parses entry keys.
            spanner.txn_put(txn, INDEX_ENTRIES, k, Bytes::from(change.name.encode()))?;
        }
        // Examined indexes cost the diff base even when nothing changed.
        let c = prof::costs::INDEX_DIFF_BASE + prof::costs::INDEX_ENTRY * n as u64;
        clock.advance(c);
        charged += c;
        touched += n;
    }
    Ok((touched, charged))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name() -> DocumentName {
        DocumentName::parse("/c/d").unwrap()
    }

    #[test]
    fn builders_set_preconditions() {
        let c = Write::create(name(), [("a", Value::Int(1))]);
        assert_eq!(c.precondition, Precondition::MustNotExist);
        let u = Write::update(name(), [("a", Value::Int(1))]);
        assert_eq!(u.precondition, Precondition::MustExist);
        let d = Write::delete(name());
        assert_eq!(d.precondition, Precondition::None);
        let occ = Write::set(name(), [("a", Value::Int(1))])
            .with_precondition(Precondition::UpdateTimeEquals(Timestamp::from_millis(3)));
        assert_eq!(
            occ.precondition,
            Precondition::UpdateTimeEquals(Timestamp::from_millis(3))
        );
    }

    #[test]
    fn precondition_checks() {
        let doc = Document::new(name(), [("a", Value::Int(1))]);
        let exists = Some(&doc);
        assert!(check_precondition(&Write::create(name(), [("a", Value::Int(1))]), None).is_ok());
        assert!(matches!(
            check_precondition(&Write::create(name(), [("a", Value::Int(1))]), exists),
            Err(FirestoreError::AlreadyExists(_))
        ));
        assert!(matches!(
            check_precondition(&Write::update(name(), [("a", Value::Int(1))]), None),
            Err(FirestoreError::NotFound(_))
        ));
        let mut fresh = doc.clone();
        fresh.update_time = Timestamp::from_millis(7);
        let w = Write::set(name(), [("a", Value::Int(2))])
            .with_precondition(Precondition::UpdateTimeEquals(Timestamp::from_millis(7)));
        assert!(check_precondition(&w, Some(&fresh)).is_ok());
        let stale = Write::set(name(), [("a", Value::Int(2))])
            .with_precondition(Precondition::UpdateTimeEquals(Timestamp::from_millis(6)));
        assert!(matches!(
            check_precondition(&stale, Some(&fresh)),
            Err(FirestoreError::FailedPrecondition(_))
        ));
    }

    #[test]
    fn oversized_document_rejected() {
        let huge = Write::set(
            name(),
            [("blob", Value::Str("x".repeat(MAX_DOCUMENT_SIZE + 1)))],
        );
        assert!(matches!(
            validate_write(&huge),
            Err(FirestoreError::InvalidArgument(_))
        ));
    }

    #[test]
    fn nested_array_rejected() {
        let bad = Write::set(
            name(),
            [("a", Value::Array(vec![Value::Array(vec![Value::Int(1)])]))],
        );
        assert!(matches!(
            validate_write(&bad),
            Err(FirestoreError::InvalidArgument(_))
        ));
        let ok = Write::set(name(), [("a", Value::Array(vec![Value::Int(1)]))]);
        assert!(validate_write(&ok).is_ok());
    }

    #[test]
    fn write_methods() {
        let doc = Document::new(name(), [("a", Value::Int(1))]);
        let set = Write::set(name(), [("a", Value::Int(1))]);
        assert_eq!(write_method(&set, None), Method::Create);
        assert_eq!(write_method(&set, Some(&doc)), Method::Update);
        assert_eq!(
            write_method(&Write::delete(name()), Some(&doc)),
            Method::Delete
        );
    }

    #[test]
    fn value_to_rule_conversion() {
        let v = Value::map([
            ("n", Value::Int(3)),
            ("s", Value::from("x")),
            ("arr", Value::Array(vec![Value::Bool(true)])),
        ]);
        match value_to_rule(&v) {
            RuleValue::Map(m) => {
                assert_eq!(m["n"], RuleValue::Int(3));
                assert_eq!(m["s"], RuleValue::Str("x".into()));
                assert_eq!(m["arr"], RuleValue::List(vec![RuleValue::Bool(true)]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn storage_round_trip_derives_times() {
        let fields: BTreeMap<String, Value> = [("a".to_string(), Value::Int(1))].into();
        let bytes = encode_for_storage(&name(), &fields, Timestamp::ZERO);
        let v1 = decode_from_storage(name(), &bytes, Timestamp::from_millis(5)).unwrap();
        assert_eq!(v1.create_time, Timestamp::from_millis(5));
        assert_eq!(v1.update_time, Timestamp::from_millis(5));
        // An update preserves the original create time.
        let bytes2 = encode_for_storage(&name(), &fields, v1.create_time);
        let v2 = decode_from_storage(name(), &bytes2, Timestamp::from_millis(9)).unwrap();
        assert_eq!(v2.create_time, Timestamp::from_millis(5));
        assert_eq!(v2.update_time, Timestamp::from_millis(9));
    }

    #[test]
    fn classify_errors() {
        let (o, e) = classify_commit_error(SpannerError::UnknownOutcome);
        assert_eq!(o, CommitOutcome::Unknown);
        assert!(matches!(e, FirestoreError::Unknown(_)));
        let (o, e) = classify_commit_error(SpannerError::CommitWindowExpired);
        assert_eq!(o, CommitOutcome::Failed);
        assert!(matches!(e, FirestoreError::Aborted(_)));
    }
}
