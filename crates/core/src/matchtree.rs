//! The Query Matcher decision tree (paper §IV-D4, made sublinear).
//!
//! The Real-time Cache's Changelog → Query Matcher hop used to check every
//! changed document against every subscribed query — a linear scan that
//! caps fanout well below the million-listener goal. This module indexes
//! registered queries the same way the storage layer indexes documents:
//! keyed on the order-preserving index encoding from [`crate::encoding`],
//! so matching one change costs a tree descent, not a scan.
//!
//! Structure, mirroring the x.uma matcher idiom (exact / prefix / range
//! nodes, first-match leaves, explicit no-match fallback):
//!
//! * **Shards by key range** — the cache already partitions the key space
//!   across tasks ([`realtime`]'s `RangeMap`); each shard holds the shapes
//!   of the queries whose collection range intersects it, and a change is
//!   matched only in its owner shard.
//! * **Prefix (exact) nodes** — within a shard, shapes bucket by their
//!   collection's encoded key prefix. A change probes exactly one bucket:
//!   its document's parent collection. Changes to collections nobody
//!   watches fall off the tree (no matcher ⇒ no match).
//! * **Equality nodes** — shapes whose query has an `Eq`/`In`/
//!   `ArrayContains` filter register under the *encoded* filter value(s) in
//!   a per-field value map; a change probes with its documents' encoded
//!   field values (and array elements), touching only value-identical
//!   shapes.
//! * **Range (interval) nodes** — inequality-only shapes become interval
//!   entries `[lo, hi]` over encoded bytes with a type-class clamp, kept
//!   sorted by lower bound so a probe scans only the prefix of entries
//!   whose interval can contain the value.
//! * **Fallback scan list** — shapes with no indexable filter (bare
//!   collection listeners) are checked per bucket; they genuinely match
//!   almost everything in their collection, so this is output-, not
//!   registration-, proportional.
//!
//! Every candidate shape is confirmed with [`matches_document`] — the same
//! brute-force predicate the differential suite uses as its oracle — so
//! the tree can *never* produce a false positive; the differential suite
//! in `tests/query_conformance.rs` (plus the seeded [`MatcherMutation`]s)
//! guards against false negatives, i.e. wrong pruning.
//!
//! **Shape multiplexing:** registrations sharing a query shape (same
//! collection, filter multiset and order-by — windows and projections
//! don't affect matching) collapse into one [`ShapeState`] fanning out to
//! many tokens, so a thousand listeners on the same query cost one probe.

use crate::document::Document;
use crate::encoding::{class_tags, encoded};
use crate::matching::matches_document;
use crate::observer::DocumentChange;
use crate::query::{FilterOp, Query};
use crate::Value;
use spanner::database::DirectoryId;
use std::collections::BTreeMap;

/// A deliberately-introduced matcher bug, installed via
/// [`MatcherTree::set_mutation`]. **Test-only**: proves the differential
/// suites detect each class of pruning/lifecycle bug.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatcherMutation {
    /// Range-node probes evaluate with the interval bounds' directions
    /// flipped, producing false negatives for in-range values.
    SwappedRangeBound,
    /// `unregister` skips the last covering shard, leaving a stale
    /// registration that keeps matching after the listener is gone.
    StaleShardAfterUnregister,
}

/// Matching-cost counters, cumulative across [`MatcherTree::match_change`]
/// calls. The `matcher_scaling` bench derives its sublinearity evidence
/// from `candidates` vs registration count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Changes matched.
    pub changes: u64,
    /// Collection buckets found (≤ changes).
    pub buckets_probed: u64,
    /// Candidate shapes examined with the authoritative predicate.
    pub candidates: u64,
    /// Candidates that matched.
    pub matched_shapes: u64,
    /// Tokens fanned out.
    pub tokens: u64,
    /// Top-level descents performed (bucket-key computation + lookup).
    /// Under [`MatcherTree::match_batch`] this is per *distinct collection
    /// per batch*, not per change.
    pub descents: u64,
    /// Changes whose top-level descent was answered by the batch memo.
    pub memo_hits: u64,
}

/// One step of a descent, for EXPLAIN rendering (see
/// [`crate::explain::render_matcher_descent`]).
#[derive(Clone, Debug)]
pub enum DescentStep {
    /// Fallback scan-list shapes taken as candidates.
    Scan {
        /// Number of scan-list shapes.
        shapes: usize,
    },
    /// An equality-node probe on one field.
    EqProbe {
        /// Field probed.
        field: String,
        /// Shapes hit by value-identical probes.
        hits: usize,
    },
    /// A range-node probe on one field.
    RangeProbe {
        /// Field probed.
        field: String,
        /// Interval entries examined (after the sorted-prefix prune).
        examined: usize,
        /// Entries whose interval contained the value.
        hits: usize,
    },
}

/// A rendered-ready trace of one change's descent through the tree.
#[derive(Clone, Debug)]
pub struct DescentTrace {
    /// Shard probed.
    pub shard: usize,
    /// The changed document's parent collection.
    pub collection: String,
    /// Whether any registered shape watches that collection.
    pub bucket_found: bool,
    /// Live shapes in the bucket.
    pub shapes_in_bucket: usize,
    /// Probe steps, in deterministic field order.
    pub steps: Vec<DescentStep>,
    /// Distinct candidate shapes examined.
    pub candidates: usize,
    /// Candidates confirmed by the authoritative predicate.
    pub matched_shapes: usize,
    /// Tokens fanned out.
    pub tokens: usize,
}

/// How a shape is dispatched within its bucket.
#[derive(Clone, Debug)]
enum Dispatch {
    /// Registered under encoded value(s) in the per-field equality map.
    Eq { field: String, values: Vec<Vec<u8>> },
    /// Registered as an interval entry on one field's range list.
    Range { field: String },
    /// On the bucket's fallback scan list.
    Scan,
}

/// One registered query shape and the tokens multiplexed onto it.
#[derive(Clone, Debug)]
struct ShapeState<T> {
    key: Vec<u8>,
    bucket: Vec<u8>,
    query: Query,
    tokens: Vec<T>,
    dispatch: Dispatch,
}

/// An interval entry in a bucket's per-field range list.
#[derive(Clone, Debug)]
struct RangeEntry {
    /// Lower bound: encoded bytes + inclusive flag; `None` = unbounded.
    lo: Option<(Vec<u8>, bool)>,
    /// Upper bound.
    hi: Option<(Vec<u8>, bool)>,
    /// Type-class clamp: only values of this class can match.
    class: (u8, u8),
    shape: usize,
}

impl RangeEntry {
    /// Sort key for the lower bound (`None` = −∞; encoded values are never
    /// empty, so the empty string is a safe sentinel).
    fn lo_key(&self) -> &[u8] {
        self.lo.as_ref().map_or(&[], |(b, _)| b.as_slice())
    }

    fn contains(&self, enc: &[u8], swapped: bool) -> bool {
        let lo_ok = match &self.lo {
            None => true,
            Some((b, incl)) => {
                if swapped {
                    // Seeded bug: bound direction flipped.
                    if *incl {
                        enc <= b.as_slice()
                    } else {
                        enc < b.as_slice()
                    }
                } else if *incl {
                    enc >= b.as_slice()
                } else {
                    enc > b.as_slice()
                }
            }
        };
        let hi_ok = match &self.hi {
            None => true,
            Some((b, incl)) => {
                if swapped {
                    if *incl {
                        enc >= b.as_slice()
                    } else {
                        enc > b.as_slice()
                    }
                } else if *incl {
                    enc <= b.as_slice()
                } else {
                    enc < b.as_slice()
                }
            }
        };
        lo_ok && hi_ok
    }
}

/// One collection's node: equality maps, range lists, fallback scan list.
#[derive(Clone, Debug, Default)]
struct Bucket {
    eq: BTreeMap<String, BTreeMap<Vec<u8>, Vec<usize>>>,
    ranges: BTreeMap<String, Vec<RangeEntry>>,
    scan: Vec<usize>,
}

impl Bucket {
    fn is_empty(&self) -> bool {
        self.eq.is_empty() && self.ranges.is_empty() && self.scan.is_empty()
    }
}

#[derive(Clone, Debug)]
struct Shard<T> {
    buckets: BTreeMap<Vec<u8>, Bucket>,
    shapes: Vec<Option<ShapeState<T>>>,
    by_key: BTreeMap<Vec<u8>, usize>,
    free: Vec<usize>,
}

impl<T> Default for Shard<T> {
    fn default() -> Shard<T> {
        Shard {
            buckets: BTreeMap::new(),
            shapes: Vec::new(),
            by_key: BTreeMap::new(),
            free: Vec::new(),
        }
    }
}

#[derive(Clone, Debug)]
struct Registration {
    shards: Vec<usize>,
    bucket: Vec<u8>,
    shape: Vec<u8>,
}

/// The sharded matcher tree. `T` is the registration token — the cache
/// uses `(ConnectionId, QueryId)`.
#[derive(Clone, Debug)]
pub struct MatcherTree<T> {
    shards: Vec<Shard<T>>,
    regs: BTreeMap<T, Registration>,
    stats: MatchStats,
    mutation: Option<MatcherMutation>,
}

impl<T: Clone + Ord + std::fmt::Debug> MatcherTree<T> {
    /// An empty tree with `num_shards` key-range shards.
    pub fn new(num_shards: usize) -> MatcherTree<T> {
        MatcherTree {
            shards: (0..num_shards.max(1)).map(|_| Shard::default()).collect(),
            regs: BTreeMap::new(),
            stats: MatchStats::default(),
            mutation: None,
        }
    }

    /// Number of key-range shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Live registrations (tokens).
    pub fn registrations(&self) -> usize {
        self.regs.len()
    }

    /// Live shapes across all shards (a multiplexed shape in `k` shards
    /// counts `k` times).
    pub fn shape_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.shapes.iter().filter(|x| x.is_some()).count())
            .sum()
    }

    /// Cumulative matching-cost counters.
    pub fn stats(&self) -> MatchStats {
        self.stats
    }

    /// Install (or clear) a seeded matcher bug. **Test-only.**
    pub fn set_mutation(&mut self, mutation: Option<MatcherMutation>) {
        self.mutation = mutation;
    }

    /// Register `token` for `query` in every shard of `shards` (the shards
    /// whose key range intersects the query's collection range). Replaces
    /// any previous registration of the same token.
    pub fn register(&mut self, token: T, shards: &[usize], dir: DirectoryId, query: &Query) {
        self.unregister(&token);
        let matching = query.without_window();
        let bucket = dir.key(&matching.collection.encode_prefix()).as_slice().to_vec();
        let shape = shape_key(&bucket, &matching);
        let mut covered: Vec<usize> = shards
            .iter()
            .copied()
            .filter(|&s| s < self.shards.len())
            .collect();
        covered.sort_unstable();
        covered.dedup();
        for &s in &covered {
            self.shard_insert(s, &bucket, &shape, &matching, token.clone());
        }
        self.regs.insert(
            token,
            Registration {
                shards: covered,
                bucket,
                shape,
            },
        );
    }

    /// Remove `token`'s registration (no-op if absent).
    pub fn unregister(&mut self, token: &T) {
        let Some(reg) = self.regs.remove(token) else {
            return;
        };
        for (i, &s) in reg.shards.iter().enumerate() {
            if self.mutation == Some(MatcherMutation::StaleShardAfterUnregister)
                && i + 1 == reg.shards.len()
            {
                // Seeded bug: the last covering shard keeps the token.
                continue;
            }
            self.shard_remove(s, &reg.bucket, &reg.shape, token);
        }
    }

    /// Throw away the whole tree and rebuild it from `regs` in one pass —
    /// the restart path. One rebuild replaces per-query
    /// unregister/re-register churn and cannot leave stale or duplicate
    /// registrations behind.
    pub fn rebuild(&mut self, regs: impl IntoIterator<Item = (T, Vec<usize>, DirectoryId, Query)>) {
        let n = self.shards.len();
        let mutation = self.mutation;
        let stats = self.stats;
        *self = MatcherTree::new(n);
        self.mutation = mutation;
        self.stats = stats;
        for (token, shards, dir, query) in regs {
            self.register(token, &shards, dir, &query);
        }
    }

    /// Match one document change in its owner `shard`: returns the sorted,
    /// deduplicated tokens whose query matches the old or new version of
    /// the document.
    pub fn match_change(
        &mut self,
        shard: usize,
        dir: DirectoryId,
        change: &DocumentChange,
    ) -> Vec<T> {
        let (tokens, trace) = self.descend(shard, dir, change);
        self.stats.changes += 1;
        self.stats.descents += 1;
        if trace.bucket_found {
            self.stats.buckets_probed += 1;
        }
        self.stats.candidates += trace.candidates as u64;
        self.stats.matched_shapes += trace.matched_shapes as u64;
        self.stats.tokens += tokens.len() as u64;
        tokens
    }

    /// Match a batch of changes in their owner `shard`, amortizing the
    /// top-level descent: the bucket-key computation and bucket lookup for
    /// each distinct parent collection run once per batch (memoized), so a
    /// burst of writes to a hot collection costs one tree descent plus one
    /// per-change bucket probe. Returns one token list per change, aligned
    /// with the input.
    pub fn match_batch(
        &mut self,
        shard: usize,
        dir: DirectoryId,
        changes: &[&DocumentChange],
    ) -> Vec<Vec<T>> {
        let mut delta = MatchStats::default();
        let mut out: Vec<Vec<T>> = Vec::with_capacity(changes.len());
        {
            let mutation = self.mutation;
            let shard_ref = self.shards.get(shard);
            let mut memo: BTreeMap<crate::path::CollectionPath, Option<&Bucket>> = BTreeMap::new();
            for change in changes {
                delta.changes += 1;
                let Some(sh) = shard_ref else {
                    out.push(Vec::new());
                    continue;
                };
                let parent = change.name.parent();
                let bucket = match memo.get(&parent) {
                    Some(b) => {
                        delta.memo_hits += 1;
                        *b
                    }
                    None => {
                        delta.descents += 1;
                        let key = dir.key(&parent.encode_prefix()).as_slice().to_vec();
                        let b = sh.buckets.get(&key);
                        memo.insert(parent, b);
                        b
                    }
                };
                let Some(bucket) = bucket else {
                    out.push(Vec::new());
                    continue;
                };
                delta.buckets_probed += 1;
                let mut trace = DescentTrace {
                    shard,
                    collection: String::new(),
                    bucket_found: true,
                    shapes_in_bucket: 0,
                    steps: Vec::new(),
                    candidates: 0,
                    matched_shapes: 0,
                    tokens: 0,
                };
                let tokens = Self::probe_bucket(sh, bucket, mutation, change, &mut trace, false);
                delta.candidates += trace.candidates as u64;
                delta.matched_shapes += trace.matched_shapes as u64;
                delta.tokens += tokens.len() as u64;
                out.push(tokens);
            }
        }
        self.stats.changes += delta.changes;
        self.stats.descents += delta.descents;
        self.stats.memo_hits += delta.memo_hits;
        self.stats.buckets_probed += delta.buckets_probed;
        self.stats.candidates += delta.candidates;
        self.stats.matched_shapes += delta.matched_shapes;
        self.stats.tokens += delta.tokens;
        out
    }

    /// Every token registered in the collection bucket `bucket_key`
    /// (a `dir.key(collection.encode_prefix())` key, the same form
    /// [`MatcherTree::register`] buckets by), across all shards. This is
    /// the reset path's inverse lookup: work is proportional to the
    /// shapes *in that bucket*, never to total registrations, because
    /// matching is bucket-exact — a query outside the bucket can never
    /// have observed a document inside it.
    pub fn bucket_tokens(&self, bucket_key: &[u8]) -> Vec<T> {
        let mut out: Vec<T> = Vec::new();
        for sh in &self.shards {
            let Some(bucket) = sh.buckets.get(bucket_key) else {
                continue;
            };
            let mut sids: Vec<usize> = bucket.scan.clone();
            for values in bucket.eq.values() {
                for shapes in values.values() {
                    sids.extend_from_slice(shapes);
                }
            }
            for entries in bucket.ranges.values() {
                for e in entries {
                    sids.push(e.shape);
                }
            }
            sids.sort_unstable();
            sids.dedup();
            for sid in sids {
                if let Some(shape) = sh.shapes.get(sid).and_then(|s| s.as_ref()) {
                    out.extend(shape.tokens.iter().cloned());
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// The descent of [`MatcherTree::match_change`], with its trace, and
    /// without mutating the stats — the EXPLAIN entry point.
    pub fn explain_change(
        &self,
        shard: usize,
        dir: DirectoryId,
        change: &DocumentChange,
    ) -> DescentTrace {
        self.descend(shard, dir, change).1
    }

    fn descend(
        &self,
        shard: usize,
        dir: DirectoryId,
        change: &DocumentChange,
    ) -> (Vec<T>, DescentTrace) {
        let parent = change.name.parent();
        let mut trace = DescentTrace {
            shard,
            collection: parent.to_string(),
            bucket_found: false,
            shapes_in_bucket: 0,
            steps: Vec::new(),
            candidates: 0,
            matched_shapes: 0,
            tokens: 0,
        };
        let Some(sh) = self.shards.get(shard) else {
            return (Vec::new(), trace);
        };
        let bucket_key = dir.key(&parent.encode_prefix()).as_slice().to_vec();
        let Some(bucket) = sh.buckets.get(&bucket_key) else {
            return (Vec::new(), trace);
        };
        trace.bucket_found = true;
        let out = Self::probe_bucket(sh, bucket, self.mutation, change, &mut trace, true);
        (out, trace)
    }

    /// The bucket-level probe shared by [`MatcherTree::match_change`] and
    /// [`MatcherTree::match_batch`] — everything below the top-level
    /// collection lookup. `record_steps` gates the EXPLAIN step log (the
    /// batch path skips it to keep the hot loop allocation-light).
    fn probe_bucket(
        sh: &Shard<T>,
        bucket: &Bucket,
        mutation: Option<MatcherMutation>,
        change: &DocumentChange,
        trace: &mut DescentTrace,
        record_steps: bool,
    ) -> Vec<T> {
        trace.shapes_in_bucket = bucket.scan.len()
            + bucket
                .eq
                .values()
                .map(|m| m.values().map(Vec::len).sum::<usize>())
                .sum::<usize>()
            + bucket.ranges.values().map(Vec::len).sum::<usize>();
        let docs: Vec<&Document> = [change.old.as_ref(), change.new.as_ref()]
            .into_iter()
            .flatten()
            .collect();
        let swapped = mutation == Some(MatcherMutation::SwappedRangeBound);
        let mut cand: Vec<usize> = Vec::new();

        if !bucket.scan.is_empty() {
            cand.extend_from_slice(&bucket.scan);
            if record_steps {
                trace.steps.push(DescentStep::Scan {
                    shapes: bucket.scan.len(),
                });
            }
        }
        for (field, values) in &bucket.eq {
            let mut hits = 0;
            for doc in &docs {
                if let Some(v) = doc.get(field) {
                    let mut probe = |enc: Vec<u8>| {
                        if let Some(shapes) = values.get(&enc) {
                            hits += shapes.len();
                            cand.extend_from_slice(shapes);
                        }
                    };
                    probe(encoded(v));
                    // Array elements too: array-contains shapes register
                    // under their element value.
                    if let Value::Array(items) = v {
                        for item in items {
                            probe(encoded(item));
                        }
                    }
                }
            }
            if record_steps {
                trace.steps.push(DescentStep::EqProbe {
                    field: field.clone(),
                    hits,
                });
            }
        }
        for (field, entries) in &bucket.ranges {
            let mut examined = 0;
            let mut hits = 0;
            for doc in &docs {
                if let Some(v) = doc.get(field) {
                    let enc = encoded(v);
                    let class = class_tags(v);
                    // Entries sorted by lower bound: everything past the
                    // first entry with lo > enc cannot contain the value.
                    let upto = if swapped {
                        entries.len()
                    } else {
                        entries.partition_point(|e| e.lo_key() <= enc.as_slice())
                    };
                    for e in &entries[..upto] {
                        examined += 1;
                        if e.class == class && e.contains(&enc, swapped) {
                            hits += 1;
                            cand.push(e.shape);
                        }
                    }
                }
            }
            if record_steps {
                trace.steps.push(DescentStep::RangeProbe {
                    field: field.clone(),
                    examined,
                    hits,
                });
            }
        }

        cand.sort_unstable();
        cand.dedup();
        trace.candidates = cand.len();
        let mut out: Vec<T> = Vec::new();
        for &sid in &cand {
            let Some(shape) = sh.shapes.get(sid).and_then(|s| s.as_ref()) else {
                continue;
            };
            // The authoritative predicate — the same oracle the
            // differential suite uses. No false positives by construction.
            let hit = docs.iter().any(|d| matches_document(&shape.query, d));
            if hit {
                trace.matched_shapes += 1;
                out.extend(shape.tokens.iter().cloned());
            }
        }
        out.sort();
        out.dedup();
        trace.tokens = out.len();
        out
    }

    fn shard_insert(&mut self, s: usize, bucket: &[u8], shape: &[u8], query: &Query, token: T) {
        let sh = &mut self.shards[s];
        if let Some(&sid) = sh.by_key.get(shape) {
            let state = sh.shapes[sid].as_mut().expect("by_key points at live slot");
            if !state.tokens.contains(&token) {
                state.tokens.push(token);
                state.tokens.sort();
            }
            return;
        }
        let dispatch = choose_dispatch(query);
        let sid = match sh.free.pop() {
            Some(slot) => slot,
            None => {
                sh.shapes.push(None);
                sh.shapes.len() - 1
            }
        };
        let node = sh.buckets.entry(bucket.to_vec()).or_default();
        match &dispatch {
            Dispatch::Eq { field, values } => {
                let valmap = node.eq.entry(field.clone()).or_default();
                for v in values {
                    valmap.entry(v.clone()).or_default().push(sid);
                }
            }
            Dispatch::Range { field } => {
                let (lo, hi, class) = range_bounds(query, field);
                let entry = RangeEntry {
                    lo,
                    hi,
                    class,
                    shape: sid,
                };
                let list = node.ranges.entry(field.clone()).or_default();
                let pos = list.partition_point(|e| e.lo_key() <= entry.lo_key());
                list.insert(pos, entry);
            }
            Dispatch::Scan => node.scan.push(sid),
        }
        sh.shapes[sid] = Some(ShapeState {
            key: shape.to_vec(),
            bucket: bucket.to_vec(),
            query: query.clone(),
            tokens: vec![token],
            dispatch,
        });
        sh.by_key.insert(shape.to_vec(), sid);
    }

    fn shard_remove(&mut self, s: usize, bucket: &[u8], shape: &[u8], token: &T) {
        let sh = &mut self.shards[s];
        let Some(&sid) = sh.by_key.get(shape) else {
            return;
        };
        let state = sh.shapes[sid].as_mut().expect("by_key points at live slot");
        state.tokens.retain(|t| t != token);
        if !state.tokens.is_empty() {
            return;
        }
        // Last token gone: unlink the shape from its bucket node.
        let state = sh.shapes[sid].take().expect("checked live above");
        sh.by_key.remove(shape);
        sh.free.push(sid);
        if let Some(node) = sh.buckets.get_mut(bucket) {
            match &state.dispatch {
                Dispatch::Eq { field, values } => {
                    if let Some(valmap) = node.eq.get_mut(field) {
                        for v in values {
                            if let Some(list) = valmap.get_mut(v) {
                                list.retain(|&x| x != sid);
                                if list.is_empty() {
                                    valmap.remove(v);
                                }
                            }
                        }
                        if valmap.is_empty() {
                            node.eq.remove(field);
                        }
                    }
                }
                Dispatch::Range { field } => {
                    if let Some(list) = node.ranges.get_mut(field) {
                        list.retain(|e| e.shape != sid);
                        if list.is_empty() {
                            node.ranges.remove(field);
                        }
                    }
                }
                Dispatch::Scan => node.scan.retain(|&x| x != sid),
            }
            if node.is_empty() {
                sh.buckets.remove(bucket);
            }
        }
    }

    /// Structural consistency check, used by tests and the restart
    /// regression suite: every registration is present exactly once in each
    /// of its shards, every indexed shape id is live, and no shape holds a
    /// token without a registration.
    pub fn debug_validate(&self) -> Result<(), String> {
        for (token, reg) in &self.regs {
            for &s in &reg.shards {
                let sh = self
                    .shards
                    .get(s)
                    .ok_or_else(|| format!("reg {token:?}: shard {s} out of range"))?;
                let sid = *sh
                    .by_key
                    .get(&reg.shape)
                    .ok_or_else(|| format!("reg {token:?}: shape missing in shard {s}"))?;
                let state = sh.shapes[sid]
                    .as_ref()
                    .ok_or_else(|| format!("reg {token:?}: dead slot in shard {s}"))?;
                let n = state.tokens.iter().filter(|t| *t == token).count();
                if n != 1 {
                    return Err(format!(
                        "reg {token:?}: token appears {n} times in shard {s}"
                    ));
                }
            }
        }
        for (s, sh) in self.shards.iter().enumerate() {
            for (sid, slot) in sh.shapes.iter().enumerate() {
                let Some(state) = slot else { continue };
                if state.tokens.is_empty() {
                    return Err(format!("shard {s} slot {sid}: live shape with no tokens"));
                }
                if sh.by_key.get(&state.key) != Some(&sid) {
                    return Err(format!("shard {s} slot {sid}: by_key out of sync"));
                }
                for t in &state.tokens {
                    let reg = self
                        .regs
                        .get(t)
                        .ok_or_else(|| format!("shard {s} slot {sid}: stale token {t:?}"))?;
                    if !reg.shards.contains(&s) {
                        return Err(format!(
                            "shard {s} slot {sid}: token {t:?} not registered for this shard"
                        ));
                    }
                }
                let indexed = self.indexed_count(sh, sid, &state.bucket, &state.dispatch)?;
                let expect = match &state.dispatch {
                    Dispatch::Eq { values, .. } => values.len(),
                    _ => 1,
                };
                if indexed != expect {
                    return Err(format!(
                        "shard {s} slot {sid}: indexed {indexed} times, expected {expect}"
                    ));
                }
            }
        }
        Ok(())
    }

    fn indexed_count(
        &self,
        sh: &Shard<T>,
        sid: usize,
        bucket: &[u8],
        dispatch: &Dispatch,
    ) -> Result<usize, String> {
        let node = sh
            .buckets
            .get(bucket)
            .ok_or_else(|| format!("slot {sid}: bucket missing"))?;
        Ok(match dispatch {
            Dispatch::Eq { field, .. } => node
                .eq
                .get(field)
                .map(|valmap| {
                    valmap
                        .values()
                        .map(|l| l.iter().filter(|&&x| x == sid).count())
                        .sum()
                })
                .unwrap_or(0),
            Dispatch::Range { field } => node
                .ranges
                .get(field)
                .map(|l| l.iter().filter(|e| e.shape == sid).count())
                .unwrap_or(0),
            Dispatch::Scan => node.scan.iter().filter(|&&x| x == sid).count(),
        })
    }
}

/// Canonical shape key: collection bucket + sorted filter fingerprints +
/// order-by list. Two queries with equal keys match identical document
/// sets (filters are a conjunction, so their order is irrelevant; windows
/// and projections don't affect matching and are excluded).
fn shape_key(bucket: &[u8], q: &Query) -> Vec<u8> {
    let mut chunks: Vec<Vec<u8>> = q
        .filters
        .iter()
        .map(|f| {
            let mut c = vec![filter_tag(f.op)];
            c.extend_from_slice(&(f.field.len() as u32).to_be_bytes());
            c.extend_from_slice(f.field.as_bytes());
            c.extend_from_slice(&encoded(&f.value));
            c
        })
        .collect();
    chunks.sort();
    let mut key = Vec::with_capacity(bucket.len() + 16);
    key.extend_from_slice(bucket);
    for c in &chunks {
        key.push(0xF1);
        key.extend_from_slice(&(c.len() as u32).to_be_bytes());
        key.extend_from_slice(c);
    }
    for (field, direction) in &q.order_by {
        key.push(0xF2);
        key.push(matches!(direction, crate::encoding::Direction::Desc) as u8);
        key.extend_from_slice(&(field.len() as u32).to_be_bytes());
        key.extend_from_slice(field.as_bytes());
    }
    key
}

fn filter_tag(op: FilterOp) -> u8 {
    match op {
        FilterOp::Eq => 1,
        FilterOp::Lt => 2,
        FilterOp::Le => 3,
        FilterOp::Gt => 4,
        FilterOp::Ge => 5,
        FilterOp::ArrayContains => 6,
        FilterOp::In => 7,
    }
}

/// Pick the dispatch for a shape: the most selective indexable filter
/// available, else the fallback scan list.
fn choose_dispatch(q: &Query) -> Dispatch {
    for f in &q.filters {
        if f.op == FilterOp::Eq {
            return Dispatch::Eq {
                field: f.field.clone(),
                values: vec![encoded(&f.value)],
            };
        }
    }
    for f in &q.filters {
        if f.op == FilterOp::ArrayContains {
            // Registered under the element value; array-element probes in
            // the descent find it.
            return Dispatch::Eq {
                field: f.field.clone(),
                values: vec![encoded(&f.value)],
            };
        }
    }
    for f in &q.filters {
        if f.op == FilterOp::In {
            if let Value::Array(items) = &f.value {
                if !items.is_empty() {
                    return Dispatch::Eq {
                        field: f.field.clone(),
                        values: items.iter().map(encoded).collect(),
                    };
                }
            }
        }
    }
    let ineq: Vec<_> = q.filters.iter().filter(|f| f.op.is_inequality()).collect();
    if let Some(first) = ineq.first() {
        let field = first.field.clone();
        let class = class_tags(&first.value);
        // Mixed fields/classes can't form one interval; the (empty) match
        // set stays correct through the authoritative predicate.
        if ineq
            .iter()
            .all(|f| f.field == field && class_tags(&f.value) == class)
        {
            return Dispatch::Range { field };
        }
    }
    Dispatch::Scan
}

/// One interval endpoint: the encoded bound and whether it is inclusive.
type Bound = Option<(Vec<u8>, bool)>;

/// Combine a query's inequality filters on `field` into one interval.
fn range_bounds(q: &Query, field: &str) -> (Bound, Bound, (u8, u8)) {
    let mut lo: Option<(Vec<u8>, bool)> = None;
    let mut hi: Option<(Vec<u8>, bool)> = None;
    let mut class = (0, 0);
    for f in q.filters.iter().filter(|f| f.field == field && f.op.is_inequality()) {
        let enc = encoded(&f.value);
        class = class_tags(&f.value);
        match f.op {
            FilterOp::Gt | FilterOp::Ge => {
                let incl = f.op == FilterOp::Ge;
                let tighter = match &lo {
                    None => true,
                    Some((b, bi)) => {
                        enc > *b || (enc == *b && *bi && !incl)
                    }
                };
                if tighter {
                    lo = Some((enc, incl));
                }
            }
            FilterOp::Lt | FilterOp::Le => {
                let incl = f.op == FilterOp::Le;
                let tighter = match &hi {
                    None => true,
                    Some((b, bi)) => {
                        enc < *b || (enc == *b && *bi && !incl)
                    }
                };
                if tighter {
                    hi = Some((enc, incl));
                }
            }
            _ => unreachable!("is_inequality filtered"),
        }
    }
    (lo, hi, class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::doc;
    use crate::encoding::Direction;
    use crate::query::Query;

    fn dir() -> DirectoryId {
        DirectoryId(7)
    }

    fn change(path: &str, fields: Vec<(&str, Value)>) -> DocumentChange {
        let name = doc(path);
        let d = Document::new(name.clone(), fields);
        DocumentChange {
            name,
            old: None,
            new: Some(d),
        }
    }

    #[test]
    fn eq_dispatch_matches_only_value_identical_shapes() {
        let mut t: MatcherTree<u32> = MatcherTree::new(1);
        for i in 0..10 {
            let q = Query::parse("/c")
                .unwrap()
                .filter("v", FilterOp::Eq, Value::Int(i));
            t.register(i as u32, &[0], dir(), &q);
        }
        let got = t.match_change(0, dir(), &change("/c/d1", vec![("v", Value::Int(3))]));
        assert_eq!(got, vec![3]);
        // Only one candidate shape was examined, not ten.
        assert_eq!(t.stats().candidates, 1);
    }

    #[test]
    fn shapes_multiplex_tokens() {
        let mut t: MatcherTree<u32> = MatcherTree::new(1);
        let q = Query::parse("/c")
            .unwrap()
            .filter("v", FilterOp::Eq, Value::Int(1));
        for tok in 0..5 {
            t.register(tok, &[0], dir(), &q.clone().limit(tok as usize + 1));
        }
        assert_eq!(t.registrations(), 5);
        assert_eq!(t.shape_count(), 1, "same shape despite differing windows");
        let got = t.match_change(0, dir(), &change("/c/x", vec![("v", Value::Int(1))]));
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        t.unregister(&2);
        let got = t.match_change(0, dir(), &change("/c/x", vec![("v", Value::Int(1))]));
        assert_eq!(got, vec![0, 1, 3, 4]);
        t.debug_validate().unwrap();
    }

    #[test]
    fn range_dispatch_prunes_by_interval_and_class() {
        let mut t: MatcherTree<u32> = MatcherTree::new(1);
        for i in 0..10i64 {
            let q = Query::parse("/c")
                .unwrap()
                .filter("v", FilterOp::Ge, Value::Int(i * 10))
                .filter("v", FilterOp::Lt, Value::Int(i * 10 + 10))
                .order_by("v", Direction::Asc);
            t.register(i as u32, &[0], dir(), &q);
        }
        let got = t.match_change(0, dir(), &change("/c/d", vec![("v", Value::Int(42))]));
        assert_eq!(got, vec![4]);
        // Strings never match int intervals.
        let got = t.match_change(0, dir(), &change("/c/d", vec![("v", Value::Str("42".into()))]));
        assert!(got.is_empty());
        t.debug_validate().unwrap();
    }

    #[test]
    fn match_batch_agrees_with_per_change_and_memoizes_descents() {
        let mk = || {
            let mut t: MatcherTree<u32> = MatcherTree::new(1);
            for i in 0..10 {
                let q = Query::parse("/c")
                    .unwrap()
                    .filter("v", FilterOp::Eq, Value::Int(i));
                t.register(i as u32, &[0], dir(), &q);
            }
            t.register(99, &[0], dir(), &Query::parse("/d").unwrap());
            t
        };
        let changes: Vec<DocumentChange> = (0..20)
            .map(|i| change(&format!("/c/d{i}"), vec![("v", Value::Int(i % 10))]))
            .chain([change("/d/x", vec![]), change("/nobody/x", vec![])])
            .collect();
        let mut batch_tree = mk();
        let refs: Vec<&DocumentChange> = changes.iter().collect();
        let batched = batch_tree.match_batch(0, dir(), &refs);
        let mut single_tree = mk();
        let singles: Vec<Vec<u32>> = changes
            .iter()
            .map(|c| single_tree.match_change(0, dir(), c))
            .collect();
        assert_eq!(batched, singles, "batch matching must be a pure refactor");
        // 22 changes over 3 distinct collections: 3 descents, 19 memo hits.
        assert_eq!(batch_tree.stats().descents, 3);
        assert_eq!(batch_tree.stats().memo_hits, 19);
        assert_eq!(single_tree.stats().descents, 22);
        assert_eq!(single_tree.stats().memo_hits, 0);
    }

    #[test]
    fn bucket_tokens_finds_every_registration_in_the_bucket_only() {
        let mut t: MatcherTree<u32> = MatcherTree::new(2);
        // Scan-list shape (bare collection), eq shape, range shape — all in /c.
        t.register(1, &[0, 1], dir(), &Query::parse("/c").unwrap());
        let q_eq = Query::parse("/c")
            .unwrap()
            .filter("v", FilterOp::Eq, Value::Int(5));
        t.register(2, &[0], dir(), &q_eq);
        // A second token multiplexed on the same eq shape.
        t.register(3, &[0], dir(), &q_eq.clone().limit(1));
        let q_range = Query::parse("/c")
            .unwrap()
            .filter("v", FilterOp::Gt, Value::Int(0))
            .order_by("v", Direction::Asc);
        t.register(4, &[1], dir(), &q_range);
        // A different collection must not be swept in.
        t.register(5, &[0], dir(), &Query::parse("/other").unwrap());

        let bucket = dir()
            .key(&crate::path::CollectionPath::parse("/c").unwrap().encode_prefix())
            .as_slice()
            .to_vec();
        assert_eq!(t.bucket_tokens(&bucket), vec![1, 2, 3, 4]);
        let other = dir()
            .key(&crate::path::CollectionPath::parse("/other").unwrap().encode_prefix())
            .as_slice()
            .to_vec();
        assert_eq!(t.bucket_tokens(&other), vec![5]);
        assert!(t.bucket_tokens(b"missing").is_empty());
        t.unregister(&2);
        assert_eq!(t.bucket_tokens(&bucket), vec![1, 3, 4]);
    }

    #[test]
    fn unwatched_collections_fall_off_the_tree() {
        let mut t: MatcherTree<u32> = MatcherTree::new(1);
        t.register(1, &[0], dir(), &Query::parse("/c").unwrap());
        let got = t.match_change(0, dir(), &change("/other/d", vec![]));
        assert!(got.is_empty());
        assert_eq!(t.stats().buckets_probed, 0);
        // Sub-collection documents are not direct members either.
        let got = t.match_change(0, dir(), &change("/c/d/sub/e", vec![]));
        assert!(got.is_empty());
    }

    #[test]
    fn delete_changes_match_via_old_version() {
        let mut t: MatcherTree<u32> = MatcherTree::new(1);
        let q = Query::parse("/c")
            .unwrap()
            .filter("v", FilterOp::Eq, Value::Int(1));
        t.register(9, &[0], dir(), &q);
        let name = doc("/c/d");
        let old = Document::new(name.clone(), vec![("v", Value::Int(1))]);
        let del = DocumentChange {
            name,
            old: Some(old),
            new: None,
        };
        assert_eq!(t.match_change(0, dir(), &del), vec![9]);
    }

    #[test]
    fn stale_shard_mutation_leaves_token_behind() {
        let mut t: MatcherTree<u32> = MatcherTree::new(1);
        let q = Query::parse("/c").unwrap();
        t.register(5, &[0], dir(), &q);
        t.set_mutation(Some(MatcherMutation::StaleShardAfterUnregister));
        t.unregister(&5);
        assert_eq!(t.registrations(), 0);
        // The tree still matches the unregistered token: the differential
        // (tree vs currently-registered brute force) must catch this.
        let got = t.match_change(0, dir(), &change("/c/d", vec![]));
        assert_eq!(got, vec![5]);
        assert!(t.debug_validate().is_err());
    }

    #[test]
    fn rebuild_is_single_pass_and_duplicate_free() {
        let mut t: MatcherTree<u32> = MatcherTree::new(4);
        let q = Query::parse("/c").unwrap();
        t.register(1, &[0, 2], dir(), &q);
        t.register(2, &[1], dir(), &q);
        t.rebuild(vec![
            (1, vec![0, 2], dir(), q.clone()),
            (3, vec![3], dir(), q.clone()),
        ]);
        assert_eq!(t.registrations(), 2);
        t.debug_validate().unwrap();
        let got = t.match_change(0, dir(), &change("/c/d", vec![]));
        assert_eq!(got, vec![1]);
        let got = t.match_change(1, dir(), &change("/c/d", vec![]));
        assert!(got.is_empty(), "token 2 was dropped by the rebuild");
    }
}
