//! Hierarchical document names and collection paths.
//!
//! "Documents can be arranged in hierarchically-nested collections. The
//! combination of the collection name and the identifying string forms the
//! document's unique name (key)." (§III-A). Segments alternate collection id
//! and document id: `/restaurants/one/ratings/2` is document `2` in
//! sub-collection `ratings` of document `/restaurants/one`.
//!
//! Names encode to Spanner row keys order-preservingly: each segment is
//! escaped (`0x00 → 0x00 0xFF`) and terminated (`0x00 0x01`), so sibling
//! order matches byte order and every collection is a contiguous key range.

use spanner::{Key, KeyRange};
use std::fmt;

/// Segment escape: 0x00 inside a segment becomes 0x00 0xFF.
const ESCAPE: u8 = 0x00;
const ESCAPED_NUL: u8 = 0xFF;
/// Segment terminator: 0x00 0x01 — sorts before any escaped content byte,
/// so a segment is always a strict prefix-free unit.
const TERMINATOR: u8 = 0x01;

fn encode_segment(seg: &str, out: &mut Vec<u8>) {
    for &b in seg.as_bytes() {
        if b == ESCAPE {
            out.push(ESCAPE);
            out.push(ESCAPED_NUL);
        } else {
            out.push(b);
        }
    }
    out.push(ESCAPE);
    out.push(TERMINATOR);
}

fn decode_segments(bytes: &[u8]) -> Option<Vec<String>> {
    let mut segments = Vec::new();
    let mut cur = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == ESCAPE {
            if i + 1 >= bytes.len() {
                return None;
            }
            match bytes[i + 1] {
                ESCAPED_NUL => {
                    cur.push(ESCAPE);
                    i += 2;
                }
                TERMINATOR => {
                    segments.push(String::from_utf8(std::mem::take(&mut cur)).ok()?);
                    i += 2;
                }
                _ => return None,
            }
        } else {
            cur.push(bytes[i]);
            i += 1;
        }
    }
    if !cur.is_empty() {
        return None;
    }
    Some(segments)
}

/// Errors constructing paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathError {
    /// Empty path or empty segment.
    Empty,
    /// A document name needs an even number of segments.
    NotADocument,
    /// A collection path needs an odd number of segments.
    NotACollection,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => write!(f, "empty path or segment"),
            PathError::NotADocument => {
                write!(f, "document names need an even number of segments")
            }
            PathError::NotACollection => {
                write!(f, "collection paths need an odd number of segments")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// A full document name, e.g. `/restaurants/one/ratings/2`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocumentName {
    segments: Vec<String>,
}

impl DocumentName {
    /// Parse from a `/`-separated string.
    pub fn parse(path: &str) -> Result<Self, PathError> {
        let segments: Vec<String> = path
            .split('/')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        Self::from_segments(segments)
    }

    /// Construct from segments.
    pub fn from_segments(segments: Vec<String>) -> Result<Self, PathError> {
        if segments.is_empty() {
            return Err(PathError::Empty);
        }
        if segments.iter().any(|s| s.is_empty()) {
            return Err(PathError::Empty);
        }
        if !segments.len().is_multiple_of(2) {
            return Err(PathError::NotADocument);
        }
        Ok(DocumentName { segments })
    }

    /// The path segments.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// The document id (final segment).
    pub fn id(&self) -> &str {
        self.segments.last().expect("non-empty")
    }

    /// The collection this document belongs to.
    pub fn parent(&self) -> CollectionPath {
        CollectionPath {
            segments: self.segments[..self.segments.len() - 1].to_vec(),
        }
    }

    /// The collection id (second-to-last segment).
    pub fn collection_id(&self) -> &str {
        &self.segments[self.segments.len() - 2]
    }

    /// A sub-collection of this document.
    pub fn collection(&self, id: &str) -> CollectionPath {
        let mut segments = self.segments.clone();
        segments.push(id.to_string());
        CollectionPath { segments }
    }

    /// Order-preserving byte encoding (no directory prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.segments.iter().map(|s| s.len() + 2).sum());
        for s in &self.segments {
            encode_segment(s, &mut out);
        }
        out
    }

    /// Encode into a Spanner key.
    pub fn to_key(&self) -> Key {
        Key::from(self.encode())
    }

    /// Decode from the byte encoding.
    pub fn decode(bytes: &[u8]) -> Option<DocumentName> {
        let segments = decode_segments(bytes)?;
        DocumentName::from_segments(segments).ok()
    }
}

impl fmt::Display for DocumentName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.segments {
            write!(f, "/{s}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for DocumentName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DocumentName({self})")
    }
}

/// A collection path, e.g. `/restaurants` or `/restaurants/one/ratings`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CollectionPath {
    segments: Vec<String>,
}

impl CollectionPath {
    /// Parse from a `/`-separated string.
    pub fn parse(path: &str) -> Result<Self, PathError> {
        let segments: Vec<String> = path
            .split('/')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if segments.is_empty() {
            return Err(PathError::Empty);
        }
        if segments.iter().any(|s| s.is_empty()) {
            return Err(PathError::Empty);
        }
        if segments.len() % 2 != 1 {
            return Err(PathError::NotACollection);
        }
        Ok(CollectionPath { segments })
    }

    /// The path segments.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// The collection id (final segment).
    pub fn id(&self) -> &str {
        self.segments.last().expect("non-empty")
    }

    /// The name of a document in this collection.
    pub fn doc(&self, id: &str) -> DocumentName {
        let mut segments = self.segments.clone();
        segments.push(id.to_string());
        DocumentName { segments }
    }

    /// Byte encoding of this collection prefix (all documents in the
    /// collection share it).
    pub fn encode_prefix(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for s in &self.segments {
            encode_segment(s, &mut out);
        }
        out
    }

    /// The contiguous key range of documents *directly in* this collection.
    ///
    /// Note this range also covers documents in sub-collections (their keys
    /// extend a document key in this collection); callers filter by segment
    /// count when that matters. For index scans this never arises because
    /// index entries are per-(index, collection).
    pub fn key_range(&self) -> KeyRange {
        KeyRange::prefix(&Key::from(self.encode_prefix()))
    }

    /// Whether `doc` is directly inside this collection.
    pub fn contains(&self, doc: &DocumentName) -> bool {
        doc.segments.len() == self.segments.len() + 1
            && doc.segments[..self.segments.len()] == self.segments[..]
    }
}

impl fmt::Display for CollectionPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.segments {
            write!(f, "/{s}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for CollectionPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CollectionPath({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_document_names() {
        let d = DocumentName::parse("/restaurants/one/ratings/2").unwrap();
        assert_eq!(d.id(), "2");
        assert_eq!(d.collection_id(), "ratings");
        assert_eq!(d.parent().to_string(), "/restaurants/one/ratings");
        assert_eq!(d.to_string(), "/restaurants/one/ratings/2");
        assert_eq!(
            DocumentName::parse("/a").unwrap_err(),
            PathError::NotADocument
        );
        assert_eq!(DocumentName::parse("").unwrap_err(), PathError::Empty);
    }

    #[test]
    fn parse_collection_paths() {
        let c = CollectionPath::parse("/restaurants/one/ratings").unwrap();
        assert_eq!(c.id(), "ratings");
        assert_eq!(c.doc("2").to_string(), "/restaurants/one/ratings/2");
        assert_eq!(
            CollectionPath::parse("/a/b").unwrap_err(),
            PathError::NotACollection
        );
    }

    #[test]
    fn encode_decode_round_trip() {
        for path in ["/a/b", "/restaurants/one/ratings/2", "/c/with spaces/d/αβγ"] {
            let d = DocumentName::parse(path).unwrap();
            let decoded = DocumentName::decode(&d.encode()).unwrap();
            assert_eq!(d, decoded);
        }
    }

    #[test]
    fn encoding_handles_nul_bytes() {
        let d = DocumentName::from_segments(vec!["a\0b".into(), "c".into()]).unwrap();
        let decoded = DocumentName::decode(&d.encode()).unwrap();
        assert_eq!(decoded.segments()[0], "a\0b");
    }

    #[test]
    fn encoding_preserves_sibling_order() {
        let c = CollectionPath::parse("/restaurants").unwrap();
        let names = ["a", "ab", "b", "ba", "z"];
        let mut encoded: Vec<Vec<u8>> = names.iter().map(|n| c.doc(n).encode()).collect();
        let sorted = {
            let mut s = encoded.clone();
            s.sort();
            s
        };
        encoded.sort();
        assert_eq!(encoded, sorted);
        // And encoded order equals name order.
        for w in names.windows(2) {
            assert!(c.doc(w[0]).encode() < c.doc(w[1]).encode());
        }
    }

    #[test]
    fn collection_range_contains_documents() {
        let c = CollectionPath::parse("/restaurants").unwrap();
        let r = c.key_range();
        assert!(r.contains(&c.doc("one").to_key()));
        assert!(r.contains(&c.doc("zzz").to_key()));
        let other = CollectionPath::parse("/reviews").unwrap();
        assert!(!r.contains(&other.doc("one").to_key()));
    }

    #[test]
    fn prefix_freedom_no_segment_bleed() {
        // "ab" in collection c must NOT sort inside the range of documents
        // whose id starts with "a" + terminator tricks.
        let c = CollectionPath::parse("/c").unwrap();
        let a = c.doc("a");
        let ab = c.doc("ab");
        // /c/a's sub-collection range must not contain /c/ab.
        let sub = a.collection("sub").key_range();
        assert!(!sub.contains(&ab.to_key()));
    }

    #[test]
    fn contains_is_direct_only() {
        let c = CollectionPath::parse("/restaurants").unwrap();
        assert!(c.contains(&DocumentName::parse("/restaurants/one").unwrap()));
        assert!(!c.contains(&DocumentName::parse("/restaurants/one/ratings/2").unwrap()));
        assert!(!c.contains(&DocumentName::parse("/reviews/one").unwrap()));
    }

    #[test]
    fn subcollection_navigation() {
        let d = DocumentName::parse("/restaurants/one").unwrap();
        let sub = d.collection("ratings");
        assert_eq!(sub.to_string(), "/restaurants/one/ratings");
        assert!(sub.contains(&sub.doc("2")));
    }
}
