//! Index definitions and index-entry computation.
//!
//! "To reduce the burden of index management, Firestore automatically
//! defines an ascending and descending index on each field across all
//! documents" (§III-B); customers can exempt hot or never-queried fields and
//! define composite indexes across multiple fields.
//!
//! Every index entry is one row of the `IndexEntries` table keyed
//! `(index-id, values, name)` (§IV-D1). This module computes the entry keys
//! a document produces:
//!
//! * one entry per (auto-indexed) field — including dotted sub-fields of
//!   maps — holding the whole value's order-preserving encoding,
//! * for array fields, additionally one *element* entry per array element
//!   (the flattening of §V-B2), marked with a tag byte so element entries
//!   serve `array-contains` without colliding with whole-value equality,
//! * one entry per matching composite index whose fields are all present.
//!
//! The descending "automatic" direction is served by *reverse scans* of the
//! ascending entries rather than duplicate rows; only composite indexes
//! store direction-encoded values. This halves write amplification and is
//! how production Firestore serves single-field descending orders.

use crate::document::{Document, Value};
use crate::encoding::{encode_value, encode_value_asc, Direction};
use crate::path::DocumentName;
use spanner::database::DirectoryId;
use spanner::Key;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Marker byte distinguishing array-element entries from whole-value
/// entries. Chosen above every value type tag so element entries sort after
/// all whole-value entries of the same index.
pub const ARRAY_ELEMENT_TAG: u8 = 0x7E;

/// An index identifier, unique per Firestore database.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct IndexId(pub u64);

/// Lifecycle state of an index (composite indexes go through a backfill,
/// §IV-D1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexState {
    /// Entries are being backfilled; writes maintain the index but queries
    /// cannot use it yet.
    Building,
    /// Fully built and queryable.
    Ready,
    /// Being removed; writes no longer maintain it.
    Removing,
}

/// One field of a composite index.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct IndexedField {
    /// Dot-separated field path.
    pub path: String,
    /// Sort direction of this field in the index.
    pub direction: Direction,
}

impl IndexedField {
    /// Ascending field.
    pub fn asc(path: impl Into<String>) -> Self {
        IndexedField {
            path: path.into(),
            direction: Direction::Asc,
        }
    }

    /// Descending field.
    pub fn desc(path: impl Into<String>) -> Self {
        IndexedField {
            path: path.into(),
            direction: Direction::Desc,
        }
    }
}

/// A user-defined composite index over a collection id.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexDefinition {
    /// Assigned id.
    pub id: IndexId,
    /// The collection id this index applies to (e.g. `restaurants`; like
    /// production Firestore, it applies to every collection with that id
    /// anywhere in the hierarchy).
    pub collection_id: String,
    /// Indexed fields, in index order.
    pub fields: Vec<IndexedField>,
    /// Lifecycle state.
    pub state: IndexState,
}

/// The per-database index catalog: automatic single-field indexes (with
/// exemptions) plus user-defined composite indexes.
#[derive(Debug, Default)]
pub struct IndexCatalog {
    next_id: u64,
    /// Composite definitions by id.
    composites: BTreeMap<IndexId, IndexDefinition>,
    /// Lazily allocated ids for automatic single-field indexes, keyed by
    /// (collection id, field path).
    auto_ids: HashMap<(String, String), IndexId>,
    /// Exempted (collection id, field path) pairs (§III-B: "Firestore
    /// allows the customer to specify fields to exclude from automatic
    /// indexing").
    exemptions: HashSet<(String, String)>,
}

impl IndexCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        IndexCatalog::default()
    }

    /// Exempt a field of a collection from automatic indexing.
    pub fn add_exemption(&mut self, collection_id: &str, field: &str) {
        self.exemptions
            .insert((collection_id.to_string(), field.to_string()));
    }

    /// Whether the field is exempt from automatic indexing.
    pub fn is_exempt(&self, collection_id: &str, field: &str) -> bool {
        self.exemptions
            .contains(&(collection_id.to_string(), field.to_string()))
    }

    /// Register a composite index in the given initial state; returns its
    /// id.
    pub fn add_composite(
        &mut self,
        collection_id: &str,
        fields: Vec<IndexedField>,
        state: IndexState,
    ) -> IndexId {
        let id = IndexId(self.next_id);
        self.next_id += 1;
        self.composites.insert(
            id,
            IndexDefinition {
                id,
                collection_id: collection_id.to_string(),
                fields,
                state,
            },
        );
        id
    }

    /// Change an index's state; true if it existed.
    pub fn set_state(&mut self, id: IndexId, state: IndexState) -> bool {
        if let Some(def) = self.composites.get_mut(&id) {
            def.state = state;
            true
        } else {
            false
        }
    }

    /// Drop an index definition entirely.
    pub fn remove(&mut self, id: IndexId) -> Option<IndexDefinition> {
        self.composites.remove(&id)
    }

    /// Look up a composite definition.
    pub fn composite(&self, id: IndexId) -> Option<&IndexDefinition> {
        self.composites.get(&id)
    }

    /// All composite definitions for a collection id in the given states.
    pub fn composites_for(
        &self,
        collection_id: &str,
        states: &[IndexState],
    ) -> Vec<&IndexDefinition> {
        self.composites
            .values()
            .filter(|d| d.collection_id == collection_id && states.contains(&d.state))
            .collect()
    }

    /// The id of the automatic single-field (ascending) index for
    /// `(collection_id, field)`, allocating it on first use. Returns `None`
    /// for exempted fields.
    pub fn auto_index_id(&mut self, collection_id: &str, field: &str) -> Option<IndexId> {
        if self.is_exempt(collection_id, field) {
            return None;
        }
        let key = (collection_id.to_string(), field.to_string());
        Some(*self.auto_ids.entry(key).or_insert_with(|| {
            let id = IndexId(self.next_id);
            self.next_id += 1;
            id
        }))
    }

    /// Read-only variant of [`IndexCatalog::auto_index_id`]: `None` when
    /// never allocated or exempt. Queries use this — an auto index with no
    /// entries yet is still valid, so queries allocate too; exposed for
    /// tests.
    pub fn existing_auto_index_id(&self, collection_id: &str, field: &str) -> Option<IndexId> {
        self.auto_ids
            .get(&(collection_id.to_string(), field.to_string()))
            .copied()
    }

    /// Reverse lookup for EXPLAIN output: a human-readable description of an
    /// index id — the composite's field list, or `auto <collection>.<field>`
    /// for an automatic single-field index. `None` for unknown ids.
    pub fn describe(&self, id: IndexId) -> Option<String> {
        if let Some(def) = self.composites.get(&id) {
            let fields: Vec<String> = def
                .fields
                .iter()
                .map(|f| {
                    let d = match f.direction {
                        Direction::Asc => "asc",
                        Direction::Desc => "desc",
                    };
                    format!("{} {d}", f.path)
                })
                .collect();
            return Some(format!(
                "composite on {}: {}",
                def.collection_id,
                fields.join(", ")
            ));
        }
        self.auto_ids
            .iter()
            .find(|(_, v)| **v == id)
            .map(|((coll, field), _)| format!("auto {coll}.{field}"))
    }
}

/// Expand a document into `(dotted field path, value)` pairs: top-level
/// fields plus nested map sub-fields (maps are flattened, §V-B2).
pub fn expand_fields(doc: &Document) -> Vec<(String, &Value)> {
    let mut out = Vec::with_capacity(doc.fields.len());
    fn recurse<'a>(prefix: &str, v: &'a Value, out: &mut Vec<(String, &'a Value)>) {
        out.push((prefix.to_string(), v));
        if let Value::Map(m) = v {
            for (k, inner) in m {
                recurse(&format!("{prefix}.{k}"), inner, out);
            }
        }
    }
    for (k, v) in &doc.fields {
        recurse(k, v, &mut out);
    }
    out
}

/// Build the `IndexEntries` row key for `(directory, index, value bytes,
/// document)`. `name_dir` is the direction the implicit `__name__` tiebreak
/// is stored in: it must follow the index's *last* field so a scan yields
/// the query's name-tiebreak order in both scan directions (for an index
/// `(city asc, rating desc)`, a forward scan must produce `rating desc,
/// name desc` — the order `matching::order_key` defines).
pub fn entry_key(
    dir: DirectoryId,
    index: IndexId,
    value_bytes: &[u8],
    name: &DocumentName,
    name_dir: Direction,
) -> Key {
    let name_enc = name.encode();
    let mut v = Vec::with_capacity(4 + 8 + value_bytes.len() + name_enc.len());
    v.extend_from_slice(&dir.prefix());
    v.extend_from_slice(&index.0.to_be_bytes());
    v.extend_from_slice(value_bytes);
    match name_dir {
        Direction::Asc => v.extend_from_slice(&name_enc),
        Direction::Desc => v.extend(name_enc.iter().map(|b| !b)),
    }
    Key::from(v)
}

/// The key prefix shared by every entry of one index.
pub fn index_prefix(dir: DirectoryId, index: IndexId) -> Vec<u8> {
    let mut v = Vec::with_capacity(12);
    v.extend_from_slice(&dir.prefix());
    v.extend_from_slice(&index.0.to_be_bytes());
    v
}

/// Compute all index-entry keys for `doc`. `maintained_states` controls
/// which composite states produce entries (writes maintain `Building` +
/// `Ready`; queries only use `Ready`).
pub fn entries_for_document(
    catalog: &mut IndexCatalog,
    dir: DirectoryId,
    doc: &Document,
    maintained_states: &[IndexState],
) -> Vec<Key> {
    entries_for_document_tagged(catalog, dir, doc, maintained_states)
        .into_iter()
        .map(|(_, k)| k)
        .collect()
}

/// [`entries_for_document`] with each key tagged by its owning index id —
/// the write path uses the tags to attribute per-index maintenance cost
/// (§III-C: every write maintains every applicable index).
pub fn entries_for_document_tagged(
    catalog: &mut IndexCatalog,
    dir: DirectoryId,
    doc: &Document,
    maintained_states: &[IndexState],
) -> Vec<(IndexId, Key)> {
    let collection_id = doc.name.collection_id().to_string();
    let mut keys = Vec::new();

    // Automatic single-field (ascending) indexes.
    for (path, value) in expand_fields(doc) {
        let Some(index) = catalog.auto_index_id(&collection_id, &path) else {
            continue;
        };
        let mut value_bytes = Vec::new();
        encode_value_asc(value, &mut value_bytes);
        keys.push((
            index,
            entry_key(dir, index, &value_bytes, &doc.name, Direction::Asc),
        ));
        if let Value::Array(items) = value {
            // Element entries for array-contains (§V-B2 flattening).
            for item in items {
                let mut elem_bytes = vec![ARRAY_ELEMENT_TAG];
                encode_value_asc(item, &mut elem_bytes);
                keys.push((
                    index,
                    entry_key(dir, index, &elem_bytes, &doc.name, Direction::Asc),
                ));
            }
        }
    }

    // Composite indexes: a document appears only if every indexed field is
    // present.
    for def in catalog.composites_for(&collection_id, maintained_states) {
        let mut tuple = Vec::new();
        let mut complete = true;
        for f in &def.fields {
            match doc.get(&f.path) {
                Some(v) => encode_value(v, f.direction, &mut tuple),
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if complete {
            let name_dir = def.fields.last().expect("composite has fields").direction;
            keys.push((def.id, entry_key(dir, def.id, &tuple, &doc.name, name_dir)));
        }
    }
    keys
}

/// The index-entry diff of a document change: `(removals, additions)`.
pub fn entry_diff(
    catalog: &mut IndexCatalog,
    dir: DirectoryId,
    old: Option<&Document>,
    new: Option<&Document>,
    maintained_states: &[IndexState],
) -> (Vec<Key>, Vec<Key>) {
    let old_keys: HashSet<Key> = old
        .map(|d| entries_for_document(catalog, dir, d, maintained_states))
        .unwrap_or_default()
        .into_iter()
        .collect();
    let new_keys: HashSet<Key> = new
        .map(|d| entries_for_document(catalog, dir, d, maintained_states))
        .unwrap_or_default()
        .into_iter()
        .collect();
    let removals = old_keys.difference(&new_keys).cloned().collect();
    let additions = new_keys.difference(&old_keys).cloned().collect();
    (removals, additions)
}

/// The maintenance work one document change causes on one index.
#[derive(Clone, Debug)]
pub struct IndexMaintenance {
    /// The index the entries belong to.
    pub index: IndexId,
    /// Entry keys to delete, sorted.
    pub removals: Vec<Key>,
    /// Entry keys to insert, sorted.
    pub additions: Vec<Key>,
}

/// [`entry_diff`] grouped by owning index, in ascending index-id order.
/// Every index *examined* appears — including those whose diff came out
/// empty (an unchanged field still had its entries computed and compared),
/// so the write path can attribute per-index cost honestly. Key lists are
/// sorted, making the resulting mutation order deterministic.
pub fn entry_diff_per_index(
    catalog: &mut IndexCatalog,
    dir: DirectoryId,
    old: Option<&Document>,
    new: Option<&Document>,
    maintained_states: &[IndexState],
) -> Vec<IndexMaintenance> {
    let old_keys: HashSet<(IndexId, Key)> = old
        .map(|d| entries_for_document_tagged(catalog, dir, d, maintained_states))
        .unwrap_or_default()
        .into_iter()
        .collect();
    let new_keys: HashSet<(IndexId, Key)> = new
        .map(|d| entries_for_document_tagged(catalog, dir, d, maintained_states))
        .unwrap_or_default()
        .into_iter()
        .collect();
    let mut by_index: BTreeMap<IndexId, IndexMaintenance> = BTreeMap::new();
    for (index, _) in old_keys.union(&new_keys) {
        by_index.entry(*index).or_insert_with(|| IndexMaintenance {
            index: *index,
            removals: Vec::new(),
            additions: Vec::new(),
        });
    }
    for (index, key) in old_keys.difference(&new_keys) {
        by_index.get_mut(index).expect("grouped").removals.push(key.clone());
    }
    for (index, key) in new_keys.difference(&old_keys) {
        by_index.get_mut(index).expect("grouped").additions.push(key.clone());
    }
    let mut out: Vec<IndexMaintenance> = by_index.into_values().collect();
    for m in &mut out {
        m.removals.sort();
        m.additions.sort();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::DocumentName;

    fn dir() -> DirectoryId {
        DirectoryId(7)
    }

    fn doc() -> Document {
        Document::new(
            DocumentName::parse("/restaurants/one").unwrap(),
            [
                ("city", Value::from("SF")),
                ("avgRating", Value::from(4.5)),
                (
                    "tags",
                    Value::Array(vec![Value::from("bbq"), Value::from("smoked")]),
                ),
                ("address", Value::map([("zip", Value::from("94000"))])),
            ],
        )
    }

    #[test]
    fn expand_includes_nested_map_fields() {
        let d = doc();
        let fields: Vec<String> = expand_fields(&d).into_iter().map(|(p, _)| p).collect();
        assert!(fields.contains(&"city".to_string()));
        assert!(fields.contains(&"address".to_string()));
        assert!(fields.contains(&"address.zip".to_string()));
        assert!(fields.contains(&"tags".to_string()));
    }

    #[test]
    fn auto_entries_count() {
        let mut cat = IndexCatalog::new();
        let d = doc();
        let keys = entries_for_document(&mut cat, dir(), &d, &[IndexState::Ready]);
        // Fields: city, avgRating, tags, address, address.zip = 5 whole-value
        // entries + 2 array element entries.
        assert_eq!(keys.len(), 7);
        // All distinct.
        let set: HashSet<_> = keys.iter().collect();
        assert_eq!(set.len(), 7);
    }

    #[test]
    fn exemption_removes_entries() {
        let mut cat = IndexCatalog::new();
        cat.add_exemption("restaurants", "tags");
        let d = doc();
        let keys = entries_for_document(&mut cat, dir(), &d, &[IndexState::Ready]);
        assert_eq!(keys.len(), 4, "tags (1 + 2 element entries) are gone");
        assert!(cat.auto_index_id("restaurants", "tags").is_none());
    }

    #[test]
    fn composite_entry_requires_all_fields() {
        let mut cat = IndexCatalog::new();
        let id = cat.add_composite(
            "restaurants",
            vec![IndexedField::asc("city"), IndexedField::desc("avgRating")],
            IndexState::Ready,
        );
        let d = doc();
        let keys = entries_for_document(&mut cat, dir(), &d, &[IndexState::Ready]);
        let prefix = index_prefix(dir(), id);
        assert_eq!(keys.iter().filter(|k| k.has_prefix(&prefix)).count(), 1);

        // A document missing `avgRating` produces no composite entry.
        let d2 = Document::new(
            DocumentName::parse("/restaurants/two").unwrap(),
            [("city", Value::from("NY"))],
        );
        let keys2 = entries_for_document(&mut cat, dir(), &d2, &[IndexState::Ready]);
        assert_eq!(keys2.iter().filter(|k| k.has_prefix(&prefix)).count(), 0);
    }

    #[test]
    fn building_indexes_maintained_only_when_requested() {
        let mut cat = IndexCatalog::new();
        let id = cat.add_composite(
            "restaurants",
            vec![IndexedField::asc("city"), IndexedField::asc("avgRating")],
            IndexState::Building,
        );
        let d = doc();
        let prefix = index_prefix(dir(), id);
        let ready_only = entries_for_document(&mut cat, dir(), &d, &[IndexState::Ready]);
        assert!(ready_only.iter().all(|k| !k.has_prefix(&prefix)));
        let with_building = entries_for_document(
            &mut cat,
            dir(),
            &d,
            &[IndexState::Ready, IndexState::Building],
        );
        assert!(with_building.iter().any(|k| k.has_prefix(&prefix)));
    }

    #[test]
    fn diff_on_field_change_touches_only_that_field() {
        let mut cat = IndexCatalog::new();
        let old = doc();
        let mut new = doc();
        new.fields.insert("avgRating".into(), Value::from(4.7));
        let (removals, additions) = entry_diff(
            &mut cat,
            dir(),
            Some(&old),
            Some(&new),
            &[IndexState::Ready],
        );
        assert_eq!(removals.len(), 1);
        assert_eq!(additions.len(), 1);
        let idx = cat.auto_index_id("restaurants", "avgRating").unwrap();
        let prefix = index_prefix(dir(), idx);
        assert!(removals[0].has_prefix(&prefix));
        assert!(additions[0].has_prefix(&prefix));
    }

    #[test]
    fn diff_insert_and_delete() {
        let mut cat = IndexCatalog::new();
        let d = doc();
        let (rem, add) = entry_diff(&mut cat, dir(), None, Some(&d), &[IndexState::Ready]);
        assert!(rem.is_empty());
        assert_eq!(add.len(), 7);
        let (rem2, add2) = entry_diff(&mut cat, dir(), Some(&d), None, &[IndexState::Ready]);
        assert_eq!(rem2.len(), 7);
        assert!(add2.is_empty());
    }

    #[test]
    fn entry_keys_group_by_index_then_value() {
        let mut cat = IndexCatalog::new();
        let c = crate::path::CollectionPath::parse("/r").unwrap();
        let doc_a = Document::new(c.doc("a"), [("x", Value::Int(1))]);
        let doc_b = Document::new(c.doc("b"), [("x", Value::Int(2))]);
        let ka = entries_for_document(&mut cat, dir(), &doc_a, &[IndexState::Ready]);
        let kb = entries_for_document(&mut cat, dir(), &doc_b, &[IndexState::Ready]);
        // Same index, value 1 sorts before value 2.
        assert!(ka[0] < kb[0]);
    }

    #[test]
    fn desc_last_composite_stores_name_reversed() {
        // An index ending in a descending field stores the name tiebreak
        // descending too, so a forward scan yields (value desc, name desc)
        // — the order matching::order_key defines for rating ties.
        let mut cat = IndexCatalog::new();
        let id = cat.add_composite(
            "r",
            vec![IndexedField::asc("city"), IndexedField::desc("rating")],
            IndexState::Ready,
        );
        let c = crate::path::CollectionPath::parse("/r").unwrap();
        let fields = [("city", Value::from("SF")), ("rating", Value::Int(4))];
        let doc_a = Document::new(c.doc("a"), fields.clone());
        let doc_b = Document::new(c.doc("b"), fields);
        let prefix = index_prefix(dir(), id);
        let mut key_of = |d: &Document| {
            entries_for_document(&mut cat, dir(), d, &[IndexState::Ready])
                .into_iter()
                .find(|k| k.has_prefix(&prefix))
                .unwrap()
        };
        let ka = key_of(&doc_a);
        let kb = key_of(&doc_b);
        // Equal (city, rating): the name decides, reversed — "b" first.
        assert!(kb < ka);
    }

    #[test]
    fn different_directories_are_disjoint() {
        let mut cat = IndexCatalog::new();
        let d = doc();
        let k1 = entries_for_document(&mut cat, DirectoryId(1), &d, &[IndexState::Ready]);
        let k2 = entries_for_document(&mut cat, DirectoryId(2), &d, &[IndexState::Ready]);
        let s1: HashSet<_> = k1.into_iter().collect();
        assert!(s1.is_disjoint(&k2.into_iter().collect()));
    }

    #[test]
    fn catalog_state_transitions() {
        let mut cat = IndexCatalog::new();
        let id = cat.add_composite("c", vec![IndexedField::asc("f")], IndexState::Building);
        assert_eq!(cat.composite(id).unwrap().state, IndexState::Building);
        assert!(cat.set_state(id, IndexState::Ready));
        assert_eq!(cat.composites_for("c", &[IndexState::Ready]).len(), 1);
        assert!(cat.remove(id).is_some());
        assert!(!cat.set_state(id, IndexState::Ready));
    }
}
