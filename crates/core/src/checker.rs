//! Document-level consistency checking over recorded operation histories.
//!
//! [`simkit::history`] records and checks the *storage-level* invariants
//! (commit-timestamp ordering, read-vs-model agreement, exactly-once ledger
//! application) without interpreting any bytes. This module adds the checks
//! that need Firestore semantics: decoding `Entities` rows into
//! [`Document`]s, evaluating queries against the model store, and verifying
//! every Real-time Cache listener snapshot against the model query result at
//! its timestamp (paper §V: listeners deliver ordered, gap-free consistent
//! snapshots).
//!
//! [`check_history`] is the single entry point tests use: it runs every
//! checker and returns an [`OracleReport`] whose rendered form names the
//! offending operation — a CI artifact is enough to diagnose a failure.

use std::collections::HashMap;

use simkit::history::{
    check_exactly_once, check_serializability, render_report, HistoryEvent, ModelStore, Recorded,
    Violation,
};
use simkit::Timestamp;
use spanner::database::DirectoryId;

use crate::database::WRITE_LEDGER;
use crate::document::{encode_value, Document, Value};
use crate::executor::ENTITIES;
use crate::matching;
use crate::path::DocumentName;
use crate::query::Query;
use crate::write;

/// Order-independent digest of one served document: name, update time, and
/// canonically encoded fields. The create time is deliberately excluded —
/// it is patched from the version timestamp on first write and preserved on
/// updates, so different (all correct) read paths can legitimately disagree
/// on it for the same version; `update_time` is always the version's commit
/// timestamp and pins the version exactly.
pub fn doc_digest(doc: &Document) -> u64 {
    let mut buf = Vec::new();
    buf.extend_from_slice(doc.name.to_string().as_bytes());
    buf.extend_from_slice(&doc.update_time.0.to_be_bytes());
    encode_value(&Value::Map(doc.fields.clone()), &mut buf);
    simkit::history::hash_bytes(&buf)
}

/// Decode the model's `Entities` row for `(key, version_ts, value)` into a
/// [`Document`], mirroring the read path's storage decoding.
fn decode_model_doc(dir: DirectoryId, key: &[u8], vts: Timestamp, value: &[u8]) -> Option<Document> {
    let suffix = key.strip_prefix(&dir.prefix()[..])?;
    let name = DocumentName::decode(suffix)?;
    write::decode_from_storage(name, value, vts)
}

/// Evaluate `query` against the model store at `ts`: decode every visible
/// `Entities` row in the directory, filter with the production matcher, sort
/// by the production order key, apply the window. This is the ground truth a
/// listener snapshot at `ts` must equal.
pub fn eval_query_at(
    model: &ModelStore,
    dir: DirectoryId,
    query: &Query,
    ts: Timestamp,
) -> Vec<Document> {
    let mut docs: Vec<Document> = model
        .scan_versioned_at(ENTITIES, ts)
        .into_iter()
        .filter_map(|(key, vts, value)| decode_model_doc(dir, key, vts, value))
        .filter(|doc| matching::matches_document(query, doc))
        .collect();
    docs.sort_by_cached_key(|doc| matching::order_key(query, doc));
    matching::apply_window(docs, query.offset, query.limit)
}

fn digests(docs: &[Document]) -> Vec<(String, u64)> {
    docs.iter()
        .map(|d| (d.name.to_string(), doc_digest(d)))
        .collect()
}

fn fmt_visible(visible: &[(String, u64)]) -> String {
    let items: Vec<String> = visible
        .iter()
        .map(|(name, digest)| format!("{name}#{digest:016x}"))
        .collect();
    format!("[{}]", items.join(", "))
}

/// The full oracle verdict over one recorded history.
#[derive(Debug)]
pub struct OracleReport {
    /// Every violation found, in event order per checker.
    pub violations: Vec<Violation>,
    /// Number of events checked.
    pub events: usize,
    /// Rendered counterexample report (empty string when clean).
    pub report: String,
}

impl OracleReport {
    /// Whether the history satisfied every checked invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run every consistency checker over `events`:
///
/// 1. strict serializability and external-consistency ordering
///    ([`simkit::history::check_serializability`]);
/// 2. exactly-once application of acked client mutations, via the
///    `WriteLedger` rows inside `dir`;
/// 3. document reads: every `DocRead` digest equals the model document at
///    its timestamp;
/// 4. listener consistency: per listener, snapshot timestamps never regress,
///    every snapshot equals the model query result at its timestamp
///    (`queries` maps the recorded query ids to the queries the harness
///    registered), and every listener that was not reset has converged to
///    the model result at `final_ts`.
pub fn check_history(
    events: &[Recorded],
    dir: DirectoryId,
    queries: &HashMap<u64, Query>,
    final_ts: Timestamp,
) -> OracleReport {
    let model = ModelStore::build(events);
    let mut violations = check_serializability(events);

    // Exactly-once: WriteLedger keys are the 4-byte directory prefix
    // followed by the dedup id bytes.
    let prefix = dir.prefix();
    let key_to_dedup = move |key: &[u8]| -> Option<String> {
        let suffix = key.strip_prefix(&prefix[..])?;
        Some(String::from_utf8_lossy(suffix).into_owned())
    };
    violations.extend(check_exactly_once(
        events,
        WRITE_LEDGER,
        &key_to_dedup,
        Some(prefix),
    ));

    // Per-listener state: last snapshot (ts, visible), and whether a reset
    // forgave continuity since then.
    struct ListenerState {
        last_at: Timestamp,
        last_visible: Vec<(String, u64)>,
        reset: bool,
    }
    let mut listeners: HashMap<(u64, u64), ListenerState> = HashMap::new();

    for rec in events {
        // Document reads and listener events are per-database: in a
        // multi-tenant history, only the target directory's are checked.
        match &rec.event {
            HistoryEvent::DocRead {
                dir: edir,
                ts,
                name,
                digest,
            } if *edir == prefix => {
                let expected = DocumentName::parse(name)
                    .ok()
                    .and_then(|n| {
                        let key = dir.key(&n.encode());
                        model
                            .versioned_at(ENTITIES, key.as_slice(), *ts)
                            .and_then(|(vts, value)| write::decode_from_storage(n, value, vts))
                    })
                    .map(|doc| doc_digest(&doc));
                if *digest != expected {
                    violations.push(Violation {
                        kind: "doc-read-mismatch",
                        seq: rec.seq,
                        detail: format!(
                            "document read of {name} at {} ns served digest {:?} but the \
                             model holds {:?}",
                            ts.0, digest, expected
                        ),
                    });
                }
            }
            HistoryEvent::ListenerSnapshot {
                dir: edir,
                conn,
                query,
                at,
                initial,
                visible,
            } if *edir == prefix => {
                let state = listeners.entry((*conn, *query)).or_insert(ListenerState {
                    last_at: Timestamp::ZERO,
                    last_visible: Vec::new(),
                    reset: false,
                });
                if !*initial && !state.reset && *at < state.last_at {
                    violations.push(Violation {
                        kind: "listener-ts-regression",
                        seq: rec.seq,
                        detail: format!(
                            "listener conn {conn} query {query} delivered a snapshot at \
                             {} ns after one at {} ns — snapshot timestamps must be \
                             monotonic (§V ordered delivery)",
                            at.0, state.last_at.0
                        ),
                    });
                }
                state.last_at = *at;
                state.last_visible = visible.clone();
                state.reset = false;

                match queries.get(query) {
                    None => violations.push(Violation {
                        kind: "unregistered-query",
                        seq: rec.seq,
                        detail: format!(
                            "listener snapshot for query id {query} which the harness \
                             never registered"
                        ),
                    }),
                    Some(q) => {
                        let expected = digests(&eval_query_at(&model, dir, q, *at));
                        if *visible != expected {
                            violations.push(Violation {
                                kind: "listener-snapshot-divergence",
                                seq: rec.seq,
                                detail: format!(
                                    "listener conn {conn} query {query} snapshot at {} ns \
                                     delivered {} but the model query result is {}",
                                    at.0,
                                    fmt_visible(visible),
                                    fmt_visible(&expected)
                                ),
                            });
                        }
                    }
                }
            }
            HistoryEvent::ListenerReset {
                dir: edir,
                conn,
                query,
            } if *edir == prefix => {
                if let Some(state) = listeners.get_mut(&(*conn, *query)) {
                    state.reset = true;
                }
            }
            _ => {}
        }
    }

    // Convergence: a listener that was not reset after its last snapshot
    // must have caught up to the model state at `final_ts` — no acked write
    // may be permanently missing from its view (§V gap-free delivery).
    let mut keys: Vec<&(u64, u64)> = listeners.keys().collect();
    keys.sort();
    for key in keys {
        let (conn, query) = *key;
        let state = &listeners[&(conn, query)];
        if state.reset {
            continue;
        }
        let Some(q) = queries.get(&query) else {
            continue; // already reported as unregistered-query
        };
        let expected = digests(&eval_query_at(&model, dir, q, final_ts));
        if state.last_visible != expected {
            violations.push(Violation {
                kind: "listener-non-convergence",
                seq: u64::MAX,
                detail: format!(
                    "listener conn {conn} query {query} last delivered {} (at {} ns) but \
                     the model query result at final ts {} ns is {} — an acked write \
                     never reached the listener",
                    fmt_visible(&state.last_visible),
                    state.last_at.0,
                    final_ts.0,
                    fmt_visible(&expected)
                ),
            });
        }
    }

    let report = if violations.is_empty() {
        String::new()
    } else {
        render_report(events, &violations)
    };
    OracleReport {
        violations,
        events: events.len(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::history::HistoryRecorder;

    fn doc(name: &str, n: i64, at: u64) -> Document {
        let name = DocumentName::parse(name).unwrap();
        let mut fields = std::collections::BTreeMap::new();
        fields.insert("n".to_string(), Value::Int(n));
        let mut d = Document::new(name, fields);
        d.create_time = Timestamp(at);
        d.update_time = Timestamp(at);
        d
    }

    fn commit_doc(dir: DirectoryId, txn: u64, d: &Document) -> HistoryEvent {
        let stored = write::encode_for_storage(&d.name, &d.fields, Timestamp::ZERO);
        HistoryEvent::Commit {
            txn,
            commit_ts: d.update_time,
            writes: vec![(
                ENTITIES.to_string(),
                dir.key(&d.name.encode()).as_slice().to_vec(),
                Some(stored.to_vec()),
            )],
            reads: Vec::new(),
        }
    }

    fn base_query() -> Query {
        Query::collection(crate::path::CollectionPath::parse("col").unwrap())
    }

    #[test]
    fn listener_snapshot_matches_model() {
        let dir = DirectoryId(1);
        let rec = HistoryRecorder::new();
        let d = doc("col/a", 1, 10);
        rec.record(commit_doc(dir, 1, &d));
        rec.record(HistoryEvent::ListenerSnapshot {
            dir: dir.prefix(),
            conn: 1,
            query: 7,
            at: Timestamp(15),
            initial: true,
            visible: vec![(d.name.to_string(), doc_digest(&d))],
        });
        let mut queries = HashMap::new();
        queries.insert(7u64, base_query());
        let report = check_history(&rec.events(), dir, &queries, Timestamp(15));
        assert!(report.passed(), "{}", report.report);
    }

    #[test]
    fn diverged_snapshot_and_non_convergence_flagged() {
        let dir = DirectoryId(1);
        let rec = HistoryRecorder::new();
        let d = doc("col/a", 1, 10);
        rec.record(commit_doc(dir, 1, &d));
        // Snapshot claims an empty result set even though `col/a` exists.
        rec.record(HistoryEvent::ListenerSnapshot {
            dir: dir.prefix(),
            conn: 1,
            query: 7,
            at: Timestamp(15),
            initial: true,
            visible: vec![],
        });
        let mut queries = HashMap::new();
        queries.insert(7u64, base_query());
        let report = check_history(&rec.events(), dir, &queries, Timestamp(15));
        let kinds: Vec<&str> = report.violations.iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&"listener-snapshot-divergence"), "{kinds:?}");
        assert!(kinds.contains(&"listener-non-convergence"), "{kinds:?}");
        assert!(report.report.contains("conn 1 query 7"));
    }

    #[test]
    fn reset_forgives_convergence() {
        let dir = DirectoryId(1);
        let rec = HistoryRecorder::new();
        let d = doc("col/a", 1, 10);
        rec.record(HistoryEvent::ListenerSnapshot {
            dir: dir.prefix(),
            conn: 1,
            query: 7,
            at: Timestamp(5),
            initial: true,
            visible: vec![],
        });
        rec.record(commit_doc(dir, 1, &d));
        rec.record(HistoryEvent::ListenerReset {
            dir: dir.prefix(),
            conn: 1,
            query: 7,
        });
        let mut queries = HashMap::new();
        queries.insert(7u64, base_query());
        let report = check_history(&rec.events(), dir, &queries, Timestamp(15));
        assert!(report.passed(), "{}", report.report);
    }

    #[test]
    fn ts_regression_flagged() {
        let dir = DirectoryId(1);
        let rec = HistoryRecorder::new();
        for (at, initial) in [(20u64, true), (10, false)] {
            rec.record(HistoryEvent::ListenerSnapshot {
                dir: dir.prefix(),
                conn: 2,
                query: 9,
                at: Timestamp(at),
                initial,
                visible: vec![],
            });
        }
        let mut queries = HashMap::new();
        queries.insert(9u64, base_query());
        let report = check_history(&rec.events(), dir, &queries, Timestamp(30));
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == "listener-ts-regression"));
    }
}
