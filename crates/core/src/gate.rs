//! The tenant-gate seam between the data path and the control plane.
//!
//! The paper's serving layer promises that "a tenant's traffic cannot
//! affect the latency of other tenants" (§IV-C). The machinery that makes
//! that true — per-tenant admission, 500/50/5 traffic conformance, free
//! quota, overload shedding — lives in the *control plane*
//! (`server::tenants`); the data path must not own any of that policy, only
//! consult it. This module is the seam: [`FirestoreDatabase`] holds an
//! optional [`TenantGate`] and calls [`TenantGate::check`] at the top of
//! every request entry point. The gate either admits the request (also
//! recording it toward the tenant's observed rate) or rejects it with a
//! retriable [`FirestoreError::ResourceExhausted`] carrying a `retry_after`
//! hint.
//!
//! Databases without a gate installed (direct engine use, unit tests) are
//! entirely unaffected.
//!
//! [`FirestoreDatabase`]: crate::database::FirestoreDatabase
//! [`FirestoreError::ResourceExhausted`]: crate::error::FirestoreError::ResourceExhausted

use crate::error::FirestoreResult;

/// The operation classes a gate distinguishes. Coarser than the full API
/// surface on purpose: the control plane prices and sheds by class, not by
/// endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GatedOp {
    /// Single-document fetch.
    Get,
    /// Query execution (including a listener's initial snapshot).
    Query,
    /// A commit (service, client flush, or transaction).
    Commit,
    /// Real-time listener registration.
    Listen,
}

impl GatedOp {
    /// Stable lower-case label for metrics and ledger entries.
    pub fn label(self) -> &'static str {
        match self {
            GatedOp::Get => "get",
            GatedOp::Query => "query",
            GatedOp::Commit => "commit",
            GatedOp::Listen => "listen",
        }
    }
}

/// Request priority class, as carried on RPC tags (§IV-C: schedulers
/// "prioritize latency-sensitive workloads over such RPCs"). Under overload
/// the control plane sheds batch traffic before conforming interactive
/// traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RequestClass {
    /// User-facing, latency-sensitive traffic.
    #[default]
    Interactive,
    /// Batch / background traffic (backfills, exports, cron jobs).
    Batch,
}

impl RequestClass {
    /// Stable lower-case label for metrics and ledger entries.
    pub fn label(self) -> &'static str {
        match self {
            RequestClass::Interactive => "interactive",
            RequestClass::Batch => "batch",
        }
    }
}

/// One tenant's view of the control plane, installed on a
/// [`FirestoreDatabase`](crate::database::FirestoreDatabase) by the serving
/// layer at provisioning time.
///
/// Implementations must be cheap (a map lookup plus counters under a short
/// lock): `check` sits on the hot path of every request.
pub trait TenantGate: Send + Sync {
    /// Admit or reject one operation *before* any engine work happens. A
    /// rejection must be a retriable error —
    /// [`ResourceExhausted`](crate::error::FirestoreError::ResourceExhausted)
    /// with a `retry_after` hint for throttles, or a non-retriable
    /// `FailedPrecondition` for suspended tenants.
    fn check(&self, op: GatedOp, class: RequestClass) -> FirestoreResult<()>;
}
