//! The query planner: greedy index-set selection (§IV-D3).
//!
//! "Selecting the ideal set of indexes to join for a query is intractable,
//! so Firestore's query engine uses a greedy index-set selection algorithm
//! that optimizes for the number of selected indexes. If no such set exists,
//! Firestore returns an error message that includes a link for adding the
//! required index."
//!
//! A query decomposes into *equality* predicates (including
//! `array-contains`), at most one *inequality* field, and the effective sort
//! orders. An index can participate in serving the query iff its fields are
//! `E ++ S` where every field of `E` carries an equality predicate and `S`
//! equals the sort-order fields in order, with all directions either
//! matching (forward scan) or all reversed (backward scan). The planner
//! greedily picks participants until every equality field is covered; one
//! participant is a plain index scan, several form a zig-zag join
//! ([`crate::executor`]).

use crate::encoding::{class_tags, encode_value, Direction};
use crate::error::{FirestoreError, FirestoreResult};
use crate::index::{index_prefix, IndexCatalog, IndexId, IndexState, ARRAY_ELEMENT_TAG};
use crate::query::{FilterOp, Query};
use spanner::database::DirectoryId;
use std::collections::BTreeMap;

/// One index scan of a plan. All scans of a plan share the same *suffix*
/// structure (sort-order value encodings followed by the document name), so
/// the executor can zig-zag join them by comparing raw suffix bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct ScanSpec {
    /// The index scanned.
    pub index: IndexId,
    /// Full key prefix: directory + index id + equality value encodings (in
    /// the index's field order).
    pub prefix: Vec<u8>,
    /// Inclusive lower bound on the suffix (from a `>=`-style inequality),
    /// as encoded bytes appended to `prefix`.
    pub lower: Option<SuffixBound>,
    /// Upper bound on the suffix (from a `<`-style inequality).
    pub upper: Option<SuffixBound>,
}

/// A bound on the first sort-order value of a scan.
#[derive(Clone, Debug, PartialEq)]
pub struct SuffixBound {
    /// Encoded first-order value (in the index's stored direction).
    pub value_bytes: Vec<u8>,
    /// Whether entries *at* this value are included.
    pub inclusive: bool,
}

/// A full query plan.
#[derive(Clone, Debug, PartialEq)]
pub enum Plan {
    /// Scan the `Entities` table over the collection's key range (queries
    /// with no predicates and name-only ordering).
    PrimaryScan {
        /// Scan backwards (descending name order).
        reverse: bool,
    },
    /// Scan one index, or zig-zag join several.
    IndexScans {
        /// The participating scans (one = plain scan, several = zig-zag).
        scans: Vec<ScanSpec>,
        /// Scan all participants backwards (sort orders are the reverse of
        /// the stored direction).
        reverse: bool,
    },
}

impl Plan {
    /// Number of indexes joined (0 for a primary scan).
    pub fn joined_indexes(&self) -> usize {
        match self {
            Plan::PrimaryScan { .. } => 0,
            Plan::IndexScans { scans, .. } => scans.len(),
        }
    }
}

struct Candidate {
    index: IndexId,
    /// Equality fields covered, in the index's field order, with the stored
    /// direction of each.
    equality_fields: Vec<(String, Direction)>,
    /// Stored directions of the suffix fields.
    suffix_dirs: Vec<Direction>,
}

/// Plan `query` against `catalog`. `dir` scopes entry keys to the database's
/// directory.
pub fn plan_query(
    catalog: &mut IndexCatalog,
    dir: DirectoryId,
    query: &Query,
) -> FirestoreResult<Plan> {
    let effective_orders = query.validate()?;
    // Split off the implicit final __name__ tiebreak: index suffixes end
    // with the name implicitly (it is part of every entry key).
    let orders: Vec<(String, Direction)> = effective_orders[..effective_orders.len() - 1].to_vec();
    let name_dir = effective_orders.last().expect("always present").1;

    // Equality predicates by field (validate() guarantees ≤1 array-contains
    // and a single inequality field).
    let mut equalities: BTreeMap<String, &crate::query::FieldFilter> = BTreeMap::new();
    for f in query.equality_filters() {
        if equalities.insert(f.field.clone(), f).is_some() {
            // Two equalities on one field: contradictory unless equal
            // values; serve via one of them (the executor would return the
            // intersection anyway, but entries are identical only if values
            // match). Reject for clarity.
            return Err(FirestoreError::InvalidArgument(format!(
                "duplicate equality filter on `{}`",
                f.field
            )));
        }
    }
    let inequalities = query.inequality_filters();

    // No predicates and no value orders: the Entities table itself is the
    // name-ordered "index".
    if equalities.is_empty() && inequalities.is_empty() && orders.is_empty() {
        return Ok(Plan::PrimaryScan {
            reverse: name_dir == Direction::Desc,
        });
    }

    let collection_id = query.collection.id().to_string();
    let requested_suffix: Vec<(String, Direction)> = orders.clone();

    // Enumerate candidates.
    let mut candidates: Vec<Candidate> = Vec::new();

    // Auto single-field indexes: [field asc]. They can be:
    //  * an equality participant when there are no value orders, or
    //  * the order/inequality provider when the suffix is exactly one field.
    if requested_suffix.is_empty() {
        for field in equalities.keys() {
            if let Some(id) = catalog.auto_index_id(&collection_id, field) {
                candidates.push(Candidate {
                    index: id,
                    equality_fields: vec![(field.clone(), Direction::Asc)],
                    suffix_dirs: vec![],
                });
            }
        }
    } else if requested_suffix.len() == 1 {
        let field = &requested_suffix[0].0;
        if !equalities.contains_key(field) {
            if let Some(id) = catalog.auto_index_id(&collection_id, field) {
                candidates.push(Candidate {
                    index: id,
                    equality_fields: vec![],
                    suffix_dirs: vec![Direction::Asc],
                });
            }
        }
    }

    // Composite indexes (only Ready ones are queryable).
    for def in catalog.composites_for(&collection_id, &[IndexState::Ready]) {
        if def.fields.len() < requested_suffix.len() {
            continue;
        }
        let split = def.fields.len() - requested_suffix.len();
        let (eq_part, suffix_part) = def.fields.split_at(split);
        // Every leading field must have an equality predicate.
        if !eq_part.iter().all(|f| equalities.contains_key(&f.path)) {
            continue;
        }
        // Suffix fields must match the requested orders, either all in the
        // stored direction (forward) or all reversed (backward); the
        // executor resolves forward/backward globally, so here we only
        // check paths and record stored directions.
        let paths_match = suffix_part
            .iter()
            .zip(&requested_suffix)
            .all(|(f, (path, _))| &f.path == path);
        if !paths_match {
            continue;
        }
        let forward = suffix_part
            .iter()
            .zip(&requested_suffix)
            .all(|(f, (_, d))| f.direction == *d);
        let backward = suffix_part
            .iter()
            .zip(&requested_suffix)
            .all(|(f, (_, d))| f.direction == d.reversed());
        if !(forward || backward) {
            continue;
        }
        candidates.push(Candidate {
            index: def.id,
            equality_fields: eq_part
                .iter()
                .map(|f| (f.path.clone(), f.direction))
                .collect(),
            suffix_dirs: suffix_part.iter().map(|f| f.direction).collect(),
        });
    }

    // Greedy selection: cover all equality fields with the fewest indexes,
    // while keeping the suffix byte-encoding consistent across picks.
    let mut uncovered: std::collections::BTreeSet<String> = equalities.keys().cloned().collect();
    let mut chosen: Vec<&Candidate> = Vec::new();
    let mut suffix_dirs: Option<Vec<Direction>> = None;

    // When the query has sort orders, at least one chosen index must carry
    // the suffix — every candidate here does, by construction.
    loop {
        let need_first = chosen.is_empty() && !requested_suffix.is_empty();
        if !need_first && uncovered.is_empty() {
            break;
        }
        let best = candidates
            .iter()
            .filter(|c| match &suffix_dirs {
                Some(dirs) => &c.suffix_dirs == dirs,
                None => true,
            })
            .filter(|c| !chosen.iter().any(|ch| ch.index == c.index))
            .max_by_key(|c| {
                let coverage = c
                    .equality_fields
                    .iter()
                    .filter(|(p, _)| uncovered.contains(p))
                    .count();
                // Prefer coverage; tie-break on fewer total fields (cheaper
                // posting lists).
                (coverage, usize::MAX - c.equality_fields.len())
            });
        let best = match best {
            Some(c)
                if !c.equality_fields.is_empty()
                    && c.equality_fields
                        .iter()
                        .all(|(p, _)| !uncovered.contains(p))
                    && !need_first =>
            {
                None
            }
            other => other,
        };
        match best {
            None => {
                let mut fields: Vec<String> =
                    equalities.keys().map(|f| format!("{f} asc")).collect();
                fields.extend(requested_suffix.iter().map(|(f, d)| {
                    format!("{f} {}", if *d == Direction::Asc { "asc" } else { "desc" })
                }));
                return Err(FirestoreError::MissingIndex {
                    suggestion: format!(
                        "composite index on {collection_id} ({})",
                        fields.join(", ")
                    ),
                });
            }
            Some(c) => {
                for (p, _) in &c.equality_fields {
                    uncovered.remove(p);
                }
                if suffix_dirs.is_none() {
                    suffix_dirs = Some(c.suffix_dirs.clone());
                }
                chosen.push(c);
            }
        }
    }

    // Resolve global scan direction: forward iff the stored suffix
    // directions equal the requested ones.
    let stored_dirs = suffix_dirs.unwrap_or_default();
    let reverse = if requested_suffix.is_empty() {
        name_dir == Direction::Desc
    } else {
        stored_dirs
            .iter()
            .zip(&requested_suffix)
            .all(|(stored, (_, want))| *stored == want.reversed())
    };

    // Build scan specs.
    let mut scans = Vec::with_capacity(chosen.len());
    for c in &chosen {
        let mut prefix = index_prefix(dir, c.index);
        for (path, stored_dir) in &c.equality_fields {
            let filter = equalities[path];
            match filter.op {
                FilterOp::ArrayContains => {
                    prefix.push(ARRAY_ELEMENT_TAG);
                    // Element entries are stored ascending (auto indexes).
                    encode_value(&filter.value, Direction::Asc, &mut prefix);
                }
                _ => encode_value(&filter.value, *stored_dir, &mut prefix),
            }
        }
        let (lower, upper) = inequality_bounds(&inequalities, &stored_dirs)?;
        scans.push(ScanSpec {
            index: c.index,
            prefix,
            lower,
            upper,
        });
    }

    Ok(Plan::IndexScans { scans, reverse })
}

/// Translate inequality predicates into suffix bounds in the *stored*
/// direction of the first suffix field.
fn inequality_bounds(
    inequalities: &[&crate::query::FieldFilter],
    stored_dirs: &[Direction],
) -> FirestoreResult<(Option<SuffixBound>, Option<SuffixBound>)> {
    if inequalities.is_empty() {
        return Ok((None, None));
    }
    let stored = *stored_dirs
        .first()
        .ok_or_else(|| FirestoreError::Internal("inequality without a suffix field".into()))?;
    let mut lower: Option<SuffixBound> = None;
    let mut upper: Option<SuffixBound> = None;
    for f in inequalities {
        let mut bytes = Vec::new();
        encode_value(&f.value, stored, &mut bytes);
        // In ascending storage Gt/Ge bound below; descending storage flips.
        let is_lower = match (f.op, stored) {
            (FilterOp::Gt | FilterOp::Ge, Direction::Asc) => true,
            (FilterOp::Lt | FilterOp::Le, Direction::Asc) => false,
            (FilterOp::Gt | FilterOp::Ge, Direction::Desc) => false,
            (FilterOp::Lt | FilterOp::Le, Direction::Desc) => true,
            _ => unreachable!("only inequalities reach here"),
        };
        let inclusive = matches!(f.op, FilterOp::Ge | FilterOp::Le);
        let bound = SuffixBound {
            value_bytes: bytes,
            inclusive,
        };
        let slot = if is_lower { &mut lower } else { &mut upper };
        match slot {
            None => *slot = Some(bound),
            Some(existing) => {
                // Keep the tighter bound.
                let tighter = if is_lower {
                    bound.value_bytes > existing.value_bytes
                        || (bound.value_bytes == existing.value_bytes && !bound.inclusive)
                } else {
                    bound.value_bytes < existing.value_bytes
                        || (bound.value_bytes == existing.value_bytes && !bound.inclusive)
                };
                if tighter {
                    *slot = Some(bound);
                }
            }
        }
    }
    // Fill the missing side with the value's type-class bound: inequalities
    // only match values of the same type (e.g. `n > 2` excludes strings even
    // though strings sort above every number).
    let class = class_tags(&inequalities[0].value);
    let (first, last) = class;
    match stored {
        Direction::Asc => {
            if lower.is_none() {
                lower = Some(SuffixBound {
                    value_bytes: vec![first],
                    inclusive: true,
                });
            }
            if upper.is_none() {
                // Prefix-inclusive on the last tag covers the whole class.
                upper = Some(SuffixBound {
                    value_bytes: vec![last],
                    inclusive: true,
                });
            }
        }
        Direction::Desc => {
            if lower.is_none() {
                lower = Some(SuffixBound {
                    value_bytes: vec![!last],
                    inclusive: true,
                });
            }
            if upper.is_none() {
                upper = Some(SuffixBound {
                    value_bytes: vec![!first],
                    inclusive: true,
                });
            }
        }
    }
    Ok((lower, upper))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexedField;
    use crate::query::Query;

    fn dir() -> DirectoryId {
        DirectoryId(1)
    }

    fn plan(catalog: &mut IndexCatalog, q: Query) -> FirestoreResult<Plan> {
        plan_query(catalog, dir(), &q)
    }

    #[test]
    fn bare_collection_scan_uses_primary() {
        let mut cat = IndexCatalog::new();
        let p = plan(&mut cat, Query::parse("/restaurants").unwrap()).unwrap();
        assert_eq!(p, Plan::PrimaryScan { reverse: false });
    }

    #[test]
    fn single_equality_uses_auto_index() {
        let mut cat = IndexCatalog::new();
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("city", FilterOp::Eq, "SF");
        match plan(&mut cat, q).unwrap() {
            Plan::IndexScans { scans, reverse } => {
                assert_eq!(scans.len(), 1);
                assert!(!reverse);
                assert!(scans[0].lower.is_none() && scans[0].upper.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn two_equalities_zigzag_two_auto_indexes() {
        // Paper: city = "SF" and type = "BBQ" joins (city asc) and (type asc).
        let mut cat = IndexCatalog::new();
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("city", FilterOp::Eq, "SF")
            .filter("type", FilterOp::Eq, "BBQ");
        match plan(&mut cat, q).unwrap() {
            Plan::IndexScans { scans, .. } => assert_eq!(scans.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inequality_with_order_uses_auto_index() {
        // Paper: numRatings > 2 order by numRatings desc → reverse scan of
        // the ascending auto index with a lower bound.
        let mut cat = IndexCatalog::new();
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("numRatings", FilterOp::Gt, 2i64)
            .order_by("numRatings", Direction::Desc);
        match plan(&mut cat, q).unwrap() {
            Plan::IndexScans { scans, reverse } => {
                assert_eq!(scans.len(), 1);
                assert!(reverse);
                let s = &scans[0];
                assert!(s.lower.is_some());
                assert!(!s.lower.as_ref().unwrap().inclusive);
                // The open side is clamped to the number type class.
                let upper = s.upper.as_ref().unwrap();
                assert!(upper.inclusive);
                assert_eq!(upper.value_bytes.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn equality_plus_order_needs_composite() {
        let mut cat = IndexCatalog::new();
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("city", FilterOp::Eq, "SF")
            .order_by("avgRating", Direction::Desc);
        let err = plan(&mut cat, q.clone()).unwrap_err();
        match err {
            FirestoreError::MissingIndex { suggestion } => {
                assert!(suggestion.contains("city asc"), "{suggestion}");
                assert!(suggestion.contains("avgRating desc"), "{suggestion}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Adding the composite fixes it.
        cat.add_composite(
            "restaurants",
            vec![IndexedField::asc("city"), IndexedField::desc("avgRating")],
            IndexState::Ready,
        );
        match plan(&mut cat, q).unwrap() {
            Plan::IndexScans { scans, reverse } => {
                assert_eq!(scans.len(), 1);
                assert!(!reverse, "stored desc matches requested desc");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_zigzag_of_two_composites() {
        // Paper: city="New York" and type="BBQ" order by avgRating desc
        // joins (city asc, avgRating desc) and (type asc, avgRating desc).
        let mut cat = IndexCatalog::new();
        cat.add_composite(
            "restaurants",
            vec![IndexedField::asc("city"), IndexedField::desc("avgRating")],
            IndexState::Ready,
        );
        cat.add_composite(
            "restaurants",
            vec![IndexedField::asc("type"), IndexedField::desc("avgRating")],
            IndexState::Ready,
        );
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("city", FilterOp::Eq, "New York")
            .filter("type", FilterOp::Eq, "BBQ")
            .order_by("avgRating", Direction::Desc);
        match plan(&mut cat, q).unwrap() {
            Plan::IndexScans { scans, reverse } => {
                assert_eq!(scans.len(), 2);
                assert!(!reverse);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn composite_preferred_over_zigzag_when_it_covers_more() {
        // With (city asc, type asc) available, the greedy planner should
        // pick the single composite over joining two auto indexes.
        let mut cat = IndexCatalog::new();
        cat.add_composite(
            "restaurants",
            vec![IndexedField::asc("city"), IndexedField::asc("type")],
            IndexState::Ready,
        );
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("city", FilterOp::Eq, "SF")
            .filter("type", FilterOp::Eq, "BBQ");
        match plan(&mut cat, q).unwrap() {
            Plan::IndexScans { scans, .. } => assert_eq!(scans.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn building_composites_are_not_used() {
        let mut cat = IndexCatalog::new();
        cat.add_composite(
            "restaurants",
            vec![IndexedField::asc("city"), IndexedField::desc("avgRating")],
            IndexState::Building,
        );
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("city", FilterOp::Eq, "SF")
            .order_by("avgRating", Direction::Desc);
        assert!(matches!(
            plan(&mut cat, q),
            Err(FirestoreError::MissingIndex { .. })
        ));
    }

    #[test]
    fn descending_single_order_reverse_scans_auto_index() {
        let mut cat = IndexCatalog::new();
        let q = Query::parse("/restaurants")
            .unwrap()
            .order_by("avgRating", Direction::Desc);
        match plan(&mut cat, q).unwrap() {
            Plan::IndexScans { scans, reverse } => {
                assert_eq!(scans.len(), 1);
                assert!(reverse);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn array_contains_uses_marked_entries() {
        let mut cat = IndexCatalog::new();
        let q =
            Query::parse("/restaurants")
                .unwrap()
                .filter("tags", FilterOp::ArrayContains, "bbq");
        match plan(&mut cat, q).unwrap() {
            Plan::IndexScans { scans, .. } => {
                assert_eq!(scans.len(), 1);
                // Prefix contains the element marker right after dir+id.
                assert_eq!(scans[0].prefix[12], ARRAY_ELEMENT_TAG);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exempted_field_query_fails() {
        // "queries that would need the excluded index then fail" (§III-B).
        let mut cat = IndexCatalog::new();
        cat.add_exemption("restaurants", "time");
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("time", FilterOp::Eq, 5i64);
        assert!(matches!(
            plan(&mut cat, q),
            Err(FirestoreError::MissingIndex { .. })
        ));
    }

    #[test]
    fn range_bounds_combine() {
        let mut cat = IndexCatalog::new();
        let q = Query::parse("/r")
            .unwrap()
            .filter("n", FilterOp::Ge, 2i64)
            .filter("n", FilterOp::Lt, 9i64);
        match plan(&mut cat, q).unwrap() {
            Plan::IndexScans { scans, .. } => {
                let s = &scans[0];
                assert!(s.lower.as_ref().unwrap().inclusive);
                assert!(!s.upper.as_ref().unwrap().inclusive);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn name_desc_primary_scan() {
        let mut cat = IndexCatalog::new();
        let q = Query::parse("/r")
            .unwrap()
            .order_by("__name__", Direction::Desc);
        // __name__ is the implicit tiebreak; explicit name order alone still
        // maps to a primary scan... but our validate() treats it as a value
        // order, so it plans as an auto index on "__name__". Keep the
        // simplest contract: a bare collection query in name order is the
        // primary scan.
        let bare = Query::parse("/r").unwrap();
        assert_eq!(
            plan(&mut cat, bare).unwrap(),
            Plan::PrimaryScan { reverse: false }
        );
        // Explicit __name__ order is uncommon; accept either planning.
        let _ = plan(&mut cat, q);
    }
}
