//! The query planner: greedy index-set selection (§IV-D3).
//!
//! "Selecting the ideal set of indexes to join for a query is intractable,
//! so Firestore's query engine uses a greedy index-set selection algorithm
//! that optimizes for the number of selected indexes. If no such set exists,
//! Firestore returns an error message that includes a link for adding the
//! required index."
//!
//! A query decomposes into *equality* predicates (including
//! `array-contains`), at most one *inequality* field, and the effective sort
//! orders. An index can participate in serving the query iff its fields are
//! `E ++ S` where every field of `E` carries an equality predicate and `S`
//! equals the sort-order fields in order, with all directions either
//! matching (forward scan) or all reversed (backward scan). The planner
//! greedily picks participants until every equality field is covered; one
//! participant is a plain index scan, several form a zig-zag join
//! ([`crate::executor`]).

use crate::encoding::{class_tags, encode_value, Direction};
use crate::error::{FirestoreError, FirestoreResult};
use crate::index::{index_prefix, IndexCatalog, IndexId, IndexState, ARRAY_ELEMENT_TAG};
use crate::path::DocumentName;
use crate::query::{FilterOp, Query};
use spanner::database::DirectoryId;
use std::collections::BTreeMap;

/// One index scan of a plan. All scans of a plan share the same *suffix*
/// structure (sort-order value encodings followed by the document name), so
/// the executor can zig-zag join them by comparing raw suffix bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct ScanSpec {
    /// The index scanned.
    pub index: IndexId,
    /// Full key prefix: directory + index id + equality value encodings (in
    /// the index's field order).
    pub prefix: Vec<u8>,
    /// Inclusive lower bound on the suffix (from a `>=`-style inequality),
    /// as encoded bytes appended to `prefix`.
    pub lower: Option<SuffixBound>,
    /// Upper bound on the suffix (from a `<`-style inequality).
    pub upper: Option<SuffixBound>,
}

/// A bound on the first sort-order value of a scan.
#[derive(Clone, Debug, PartialEq)]
pub struct SuffixBound {
    /// Encoded first-order value (in the index's stored direction).
    pub value_bytes: Vec<u8>,
    /// Whether entries *at* this value are included.
    pub inclusive: bool,
}

/// One participant of a zig-zag join: a single index scan, or — when the
/// query has an `in` filter covered by this index — a *union* of equality
/// scans, one arm per `in` alternative. All arms share the suffix structure,
/// so the union merged in suffix order is itself suffix-ordered (distinct
/// `in` values produce disjoint posting lists).
#[derive(Clone, Debug, PartialEq)]
pub struct IndexScan {
    /// The union arms (exactly one for a plain scan, ≤10 for `in`).
    pub arms: Vec<ScanSpec>,
}

/// The access path of a plan.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanNode {
    /// Scan the `Entities` table over the collection's key range (queries
    /// with no predicates and name-only ordering).
    PrimaryScan {
        /// Scan backwards (descending name order).
        reverse: bool,
    },
    /// Scan one index, or zig-zag join several.
    IndexScans {
        /// The participating scans (one = plain scan, several = zig-zag).
        scans: Vec<IndexScan>,
        /// Scan all participants backwards (sort orders are the reverse of
        /// the stored direction).
        reverse: bool,
    },
}

/// The result window pushed down into the executor: how few index entries
/// the scan can get away with examining. The executor stops pulling from
/// the merged stream once `offset + limit` results past the cursor have
/// been produced (§IV-D3: cost scales with the result set).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Window {
    /// Results to skip after cursor positioning.
    pub offset: usize,
    /// Maximum results to return.
    pub limit: Option<usize>,
    /// Resume cursor: skip results up to and including this document.
    pub start_after: Option<DocumentName>,
}

/// A full query plan: an access path plus the pushdown window.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// The access path.
    pub node: PlanNode,
    /// Offset/limit/cursor bounds the executor enforces while streaming.
    pub window: Window,
}

impl Plan {
    /// Number of indexes joined (0 for a primary scan).
    pub fn joined_indexes(&self) -> usize {
        match &self.node {
            PlanNode::PrimaryScan { .. } => 0,
            PlanNode::IndexScans { scans, .. } => scans.len(),
        }
    }
}

struct Candidate {
    index: IndexId,
    /// Equality fields covered, in the index's field order, with the stored
    /// direction of each.
    equality_fields: Vec<(String, Direction)>,
    /// Stored directions of the suffix fields.
    suffix_dirs: Vec<Direction>,
    /// Direction the implicit `__name__` tiebreak is stored in (the index's
    /// last field direction; ascending for auto indexes).
    name_dir: Direction,
}

/// Plan `query` against `catalog`. `dir` scopes entry keys to the database's
/// directory.
pub fn plan_query(
    catalog: &mut IndexCatalog,
    dir: DirectoryId,
    query: &Query,
) -> FirestoreResult<Plan> {
    let effective_orders = query.validate()?;
    // Split off the implicit final __name__ tiebreak: index suffixes end
    // with the name implicitly (it is part of every entry key).
    let orders: Vec<(String, Direction)> = effective_orders[..effective_orders.len() - 1].to_vec();
    let name_dir = effective_orders.last().expect("always present").1;

    let window = Window {
        offset: query.offset,
        limit: query.limit,
        start_after: query.start_after.clone(),
    };

    // Equality predicates by field (validate() guarantees ≤1 array-contains
    // and a single inequality field).
    let mut equalities: BTreeMap<String, &crate::query::FieldFilter> = BTreeMap::new();
    for f in query.equality_filters() {
        if equalities.insert(f.field.clone(), f).is_some() {
            // Two equalities on one field: contradictory unless equal
            // values; serve via one of them (the executor would return the
            // intersection anyway, but entries are identical only if values
            // match). Reject for clarity.
            return Err(FirestoreError::InvalidArgument(format!(
                "duplicate equality filter on `{}`",
                f.field
            )));
        }
    }
    let inequalities = query.inequality_filters();

    // No predicates and no value orders: the Entities table itself is the
    // name-ordered "index".
    if equalities.is_empty() && inequalities.is_empty() && orders.is_empty() {
        return Ok(Plan {
            node: PlanNode::PrimaryScan {
                reverse: name_dir == Direction::Desc,
            },
            window,
        });
    }

    let collection_id = query.collection.id().to_string();
    let requested_suffix: Vec<(String, Direction)> = orders.clone();

    // Enumerate candidates.
    let mut candidates: Vec<Candidate> = Vec::new();

    // Auto single-field indexes: [field asc]. They can be:
    //  * an equality participant when there are no value orders, or
    //  * the order/inequality provider when the suffix is exactly one field.
    if requested_suffix.is_empty() {
        for field in equalities.keys() {
            if let Some(id) = catalog.auto_index_id(&collection_id, field) {
                candidates.push(Candidate {
                    index: id,
                    equality_fields: vec![(field.clone(), Direction::Asc)],
                    suffix_dirs: vec![],
                    name_dir: Direction::Asc,
                });
            }
        }
    } else if requested_suffix.len() == 1 {
        let field = &requested_suffix[0].0;
        if !equalities.contains_key(field) {
            if let Some(id) = catalog.auto_index_id(&collection_id, field) {
                candidates.push(Candidate {
                    index: id,
                    equality_fields: vec![],
                    suffix_dirs: vec![Direction::Asc],
                    name_dir: Direction::Asc,
                });
            }
        }
    }

    // Composite indexes (only Ready ones are queryable).
    for def in catalog.composites_for(&collection_id, &[IndexState::Ready]) {
        if def.fields.len() < requested_suffix.len() {
            continue;
        }
        let split = def.fields.len() - requested_suffix.len();
        let (eq_part, suffix_part) = def.fields.split_at(split);
        // Every leading field must have an equality predicate — and not an
        // `array-contains` one: per-element entries exist only in the auto
        // single-field indexes (composites store the whole array value).
        if !eq_part.iter().all(|f| {
            equalities
                .get(&f.path)
                .is_some_and(|flt| flt.op != FilterOp::ArrayContains)
        }) {
            continue;
        }
        // Suffix fields must match the requested orders, either all in the
        // stored direction (forward) or all reversed (backward); the
        // executor resolves forward/backward globally, so here we only
        // check paths and record stored directions.
        let paths_match = suffix_part
            .iter()
            .zip(&requested_suffix)
            .all(|(f, (path, _))| &f.path == path);
        if !paths_match {
            continue;
        }
        let forward = suffix_part
            .iter()
            .zip(&requested_suffix)
            .all(|(f, (_, d))| f.direction == *d);
        let backward = suffix_part
            .iter()
            .zip(&requested_suffix)
            .all(|(f, (_, d))| f.direction == d.reversed());
        if !(forward || backward) {
            continue;
        }
        candidates.push(Candidate {
            index: def.id,
            equality_fields: eq_part
                .iter()
                .map(|f| (f.path.clone(), f.direction))
                .collect(),
            suffix_dirs: suffix_part.iter().map(|f| f.direction).collect(),
            name_dir: def.fields.last().expect("composite has fields").direction,
        });
    }

    // Greedy selection: cover all equality fields with the fewest indexes.
    // The zig-zag merge compares raw suffix bytes, so every participant
    // must store the sort-order values *and* the implicit name tiebreak in
    // the same directions. Candidates therefore partition into constraint
    // groups by `(suffix_dirs, name_dir)`; the greedy pass runs once per
    // group and the smallest successful join wins (a single global pass
    // could dead-end by pinning a group that cannot cover the rest).
    let mut groups: Vec<(Vec<Direction>, Direction)> = candidates
        .iter()
        .map(|c| (c.suffix_dirs.clone(), c.name_dir))
        .collect();
    groups.sort();
    groups.dedup();

    let mut best_choice: Option<(Vec<&Candidate>, Direction)> = None;
    for (g_suffix, g_name) in &groups {
        let pool: Vec<&Candidate> = candidates
            .iter()
            .filter(|c| &c.suffix_dirs == g_suffix && c.name_dir == *g_name)
            .collect();
        let mut uncovered: std::collections::BTreeSet<String> =
            equalities.keys().cloned().collect();
        let mut chosen: Vec<&Candidate> = Vec::new();
        let covered = loop {
            let need_first = chosen.is_empty() && !requested_suffix.is_empty();
            if !need_first && uncovered.is_empty() {
                break true;
            }
            let best = pool
                .iter()
                .filter(|c| !chosen.iter().any(|ch| ch.index == c.index))
                .max_by_key(|c| {
                    let coverage = c
                        .equality_fields
                        .iter()
                        .filter(|(p, _)| uncovered.contains(p))
                        .count();
                    // Prefer coverage; tie-break on fewer total fields
                    // (cheaper posting lists).
                    (coverage, usize::MAX - c.equality_fields.len())
                });
            let best = match best {
                Some(c)
                    if !c.equality_fields.is_empty()
                        && c.equality_fields
                            .iter()
                            .all(|(p, _)| !uncovered.contains(p))
                        && !need_first =>
                {
                    None
                }
                other => other.copied(),
            };
            match best {
                None => break false,
                Some(c) => {
                    for (p, _) in &c.equality_fields {
                        uncovered.remove(p);
                    }
                    chosen.push(c);
                }
            }
        };
        if covered && best_choice.as_ref().is_none_or(|(b, _)| chosen.len() < b.len()) {
            best_choice = Some((chosen, *g_name));
        }
    }

    let Some((chosen, chosen_name_dir)) = best_choice else {
        let mut fields: Vec<String> = equalities.keys().map(|f| format!("{f} asc")).collect();
        fields.extend(requested_suffix.iter().map(|(f, d)| {
            format!("{f} {}", if *d == Direction::Asc { "asc" } else { "desc" })
        }));
        return Err(FirestoreError::MissingIndex {
            suggestion: format!("composite index on {collection_id} ({})", fields.join(", ")),
        });
    };

    // Resolve global scan direction. With sort orders: forward iff the
    // stored suffix directions equal the requested ones (the stored name
    // direction follows the last suffix field, so it comes out right in
    // both cases). Without sort orders the suffix is just the name, and
    // the scan runs backwards iff its stored direction disagrees with the
    // requested name order.
    let stored_dirs = chosen
        .first()
        .map(|c| c.suffix_dirs.clone())
        .unwrap_or_default();
    let reverse = if requested_suffix.is_empty() {
        chosen_name_dir != name_dir
    } else {
        stored_dirs
            .iter()
            .zip(&requested_suffix)
            .all(|(stored, (_, want))| *stored == want.reversed())
    };

    // Build scan specs. Each `in` alternative multiplies the prefix set,
    // yielding one union arm per alternative (validate() caps `in` arrays
    // at 10 elements and one `in` per query, so ≤10 arms per index).
    let mut scans = Vec::with_capacity(chosen.len());
    for c in &chosen {
        let mut prefixes = vec![index_prefix(dir, c.index)];
        for (path, stored_dir) in &c.equality_fields {
            let filter = equalities[path];
            match filter.op {
                FilterOp::ArrayContains => {
                    for p in &mut prefixes {
                        p.push(ARRAY_ELEMENT_TAG);
                        // Element entries are stored ascending (auto indexes).
                        encode_value(&filter.value, Direction::Asc, p);
                    }
                }
                FilterOp::In => {
                    let crate::document::Value::Array(alts) = &filter.value else {
                        return Err(FirestoreError::Internal(
                            "validated `in` filter must hold an array".into(),
                        ));
                    };
                    // Dedupe alternatives by encoding (3 and 3.0 are the
                    // same posting list); sort for a deterministic plan.
                    let mut encs: Vec<Vec<u8>> = alts
                        .iter()
                        .map(|v| {
                            let mut b = Vec::new();
                            encode_value(v, *stored_dir, &mut b);
                            b
                        })
                        .collect();
                    encs.sort();
                    encs.dedup();
                    prefixes = prefixes
                        .iter()
                        .flat_map(|p| {
                            encs.iter().map(move |e| {
                                let mut np = p.clone();
                                np.extend_from_slice(e);
                                np
                            })
                        })
                        .collect();
                }
                _ => {
                    for p in &mut prefixes {
                        encode_value(&filter.value, *stored_dir, p);
                    }
                }
            }
        }
        let (lower, mut upper) = inequality_bounds(&inequalities, &stored_dirs)?;
        // An ascending value suffix with no upper bound would sweep past the
        // whole-value entries into the per-element array entries of an auto
        // index (ARRAY_ELEMENT_TAG sorts above every value type tag). Clamp
        // the scan below the marker; descending suffixes are composites,
        // which never store element entries.
        if upper.is_none() && stored_dirs.first() == Some(&Direction::Asc) {
            upper = Some(SuffixBound {
                value_bytes: vec![ARRAY_ELEMENT_TAG],
                inclusive: false,
            });
        }
        let arms = prefixes
            .into_iter()
            .map(|prefix| ScanSpec {
                index: c.index,
                prefix,
                lower: lower.clone(),
                upper: upper.clone(),
            })
            .collect();
        scans.push(IndexScan { arms });
    }

    Ok(Plan {
        node: PlanNode::IndexScans { scans, reverse },
        window,
    })
}

/// Translate inequality predicates into suffix bounds in the *stored*
/// direction of the first suffix field.
fn inequality_bounds(
    inequalities: &[&crate::query::FieldFilter],
    stored_dirs: &[Direction],
) -> FirestoreResult<(Option<SuffixBound>, Option<SuffixBound>)> {
    if inequalities.is_empty() {
        return Ok((None, None));
    }
    let stored = *stored_dirs
        .first()
        .ok_or_else(|| FirestoreError::Internal("inequality without a suffix field".into()))?;
    let mut lower: Option<SuffixBound> = None;
    let mut upper: Option<SuffixBound> = None;
    // Keep the tighter of two bounds on one side. Inclusive bounds are
    // *prefix*-inclusive (they reach past longer encodings starting with the
    // same bytes — that is how `scan_range` realises them), so raw byte
    // comparison misjudges them: `[tag]` inclusive spans a whole type class
    // and is looser than `[tag, …]` despite sorting first. Compare the
    // effective half-open endpoints the executor will scan between instead.
    fn prefix_successor(bytes: &[u8]) -> Option<Vec<u8>> {
        let mut v = bytes.to_vec();
        while let Some(last) = v.last_mut() {
            if *last == 0xFF {
                v.pop();
            } else {
                *last += 1;
                return Some(v);
            }
        }
        None
    }
    fn tighten(slot: &mut Option<SuffixBound>, bound: SuffixBound, is_lower: bool) {
        let Some(existing) = slot else {
            *slot = Some(bound);
            return;
        };
        let tighter = if is_lower {
            // Scan starts at the bound bytes (inclusive) or just past every
            // key prefixed by them (exclusive); higher start is tighter.
            let start = |b: &SuffixBound| {
                if b.inclusive {
                    b.value_bytes.clone()
                } else {
                    prefix_successor(&b.value_bytes).unwrap_or_else(|| vec![0xFF; 64])
                }
            };
            start(&bound) > start(existing)
        } else {
            // Scan ends before the bound bytes (exclusive) or after every
            // key prefixed by them (inclusive); lower end is tighter, and
            // `None` (successor overflow) is unbounded.
            let end = |b: &SuffixBound| {
                if b.inclusive {
                    prefix_successor(&b.value_bytes)
                } else {
                    Some(b.value_bytes.clone())
                }
            };
            match (end(&bound), end(existing)) {
                (Some(new), Some(old)) => new < old,
                (Some(_), None) => true,
                (None, _) => false,
            }
        };
        if tighter {
            *slot = Some(bound);
        }
    }
    for f in inequalities {
        let mut bytes = Vec::new();
        encode_value(&f.value, stored, &mut bytes);
        // In ascending storage Gt/Ge bound below; descending storage flips.
        let is_lower = match (f.op, stored) {
            (FilterOp::Gt | FilterOp::Ge, Direction::Asc) => true,
            (FilterOp::Lt | FilterOp::Le, Direction::Asc) => false,
            (FilterOp::Gt | FilterOp::Ge, Direction::Desc) => false,
            (FilterOp::Lt | FilterOp::Le, Direction::Desc) => true,
            _ => unreachable!("only inequalities reach here"),
        };
        let inclusive = matches!(f.op, FilterOp::Ge | FilterOp::Le);
        tighten(
            if is_lower { &mut lower } else { &mut upper },
            SuffixBound {
                value_bytes: bytes,
                inclusive,
            },
            is_lower,
        );
        // Each inequality also clamps its *other* side to the value's type
        // class: inequalities only match values of the same type (`n > 2`
        // excludes strings even though strings sort above every number).
        // With mixed-type bounds the classes intersect to nothing and the
        // scan range collapses to empty.
        let (first, last) = class_tags(&f.value);
        let (class_lo, class_hi) = match stored {
            Direction::Asc => (vec![first], vec![last]),
            Direction::Desc => (vec![!last], vec![!first]),
        };
        tighten(
            &mut lower,
            SuffixBound {
                value_bytes: class_lo,
                inclusive: true,
            },
            true,
        );
        tighten(
            &mut upper,
            SuffixBound {
                value_bytes: class_hi,
                inclusive: true,
            },
            false,
        );
    }
    Ok((lower, upper))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexedField;
    use crate::query::Query;

    fn dir() -> DirectoryId {
        DirectoryId(1)
    }

    fn plan(catalog: &mut IndexCatalog, q: Query) -> FirestoreResult<Plan> {
        plan_query(catalog, dir(), &q)
    }

    #[test]
    fn bare_collection_scan_uses_primary() {
        let mut cat = IndexCatalog::new();
        let p = plan(&mut cat, Query::parse("/restaurants").unwrap()).unwrap();
        assert_eq!(p.node, PlanNode::PrimaryScan { reverse: false });
        assert_eq!(p.window, Window::default());
    }

    #[test]
    fn single_equality_uses_auto_index() {
        let mut cat = IndexCatalog::new();
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("city", FilterOp::Eq, "SF");
        match plan(&mut cat, q).unwrap().node {
            PlanNode::IndexScans { scans, reverse } => {
                assert_eq!(scans.len(), 1);
                assert!(!reverse);
                assert_eq!(scans[0].arms.len(), 1);
                let arm = &scans[0].arms[0];
                assert!(arm.lower.is_none() && arm.upper.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn two_equalities_zigzag_two_auto_indexes() {
        // Paper: city = "SF" and type = "BBQ" joins (city asc) and (type asc).
        let mut cat = IndexCatalog::new();
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("city", FilterOp::Eq, "SF")
            .filter("type", FilterOp::Eq, "BBQ");
        match plan(&mut cat, q).unwrap().node {
            PlanNode::IndexScans { scans, .. } => assert_eq!(scans.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inequality_with_order_uses_auto_index() {
        // Paper: numRatings > 2 order by numRatings desc → reverse scan of
        // the ascending auto index with a lower bound.
        let mut cat = IndexCatalog::new();
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("numRatings", FilterOp::Gt, 2i64)
            .order_by("numRatings", Direction::Desc);
        match plan(&mut cat, q).unwrap().node {
            PlanNode::IndexScans { scans, reverse } => {
                assert_eq!(scans.len(), 1);
                assert!(reverse);
                let s = &scans[0].arms[0];
                assert!(s.lower.is_some());
                assert!(!s.lower.as_ref().unwrap().inclusive);
                // The open side is clamped to the number type class.
                let upper = s.upper.as_ref().unwrap();
                assert!(upper.inclusive);
                assert_eq!(upper.value_bytes.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn equality_plus_order_needs_composite() {
        let mut cat = IndexCatalog::new();
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("city", FilterOp::Eq, "SF")
            .order_by("avgRating", Direction::Desc);
        let err = plan(&mut cat, q.clone()).unwrap_err();
        match err {
            FirestoreError::MissingIndex { suggestion } => {
                assert!(suggestion.contains("city asc"), "{suggestion}");
                assert!(suggestion.contains("avgRating desc"), "{suggestion}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Adding the composite fixes it.
        cat.add_composite(
            "restaurants",
            vec![IndexedField::asc("city"), IndexedField::desc("avgRating")],
            IndexState::Ready,
        );
        match plan(&mut cat, q).unwrap().node {
            PlanNode::IndexScans { scans, reverse } => {
                assert_eq!(scans.len(), 1);
                assert!(!reverse, "stored desc matches requested desc");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_zigzag_of_two_composites() {
        // Paper: city="New York" and type="BBQ" order by avgRating desc
        // joins (city asc, avgRating desc) and (type asc, avgRating desc).
        let mut cat = IndexCatalog::new();
        cat.add_composite(
            "restaurants",
            vec![IndexedField::asc("city"), IndexedField::desc("avgRating")],
            IndexState::Ready,
        );
        cat.add_composite(
            "restaurants",
            vec![IndexedField::asc("type"), IndexedField::desc("avgRating")],
            IndexState::Ready,
        );
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("city", FilterOp::Eq, "New York")
            .filter("type", FilterOp::Eq, "BBQ")
            .order_by("avgRating", Direction::Desc);
        match plan(&mut cat, q).unwrap().node {
            PlanNode::IndexScans { scans, reverse } => {
                assert_eq!(scans.len(), 2);
                assert!(!reverse);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn composite_preferred_over_zigzag_when_it_covers_more() {
        // With (city asc, type asc) available, the greedy planner should
        // pick the single composite over joining two auto indexes.
        let mut cat = IndexCatalog::new();
        cat.add_composite(
            "restaurants",
            vec![IndexedField::asc("city"), IndexedField::asc("type")],
            IndexState::Ready,
        );
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("city", FilterOp::Eq, "SF")
            .filter("type", FilterOp::Eq, "BBQ");
        match plan(&mut cat, q).unwrap().node {
            PlanNode::IndexScans { scans, .. } => assert_eq!(scans.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn building_composites_are_not_used() {
        let mut cat = IndexCatalog::new();
        cat.add_composite(
            "restaurants",
            vec![IndexedField::asc("city"), IndexedField::desc("avgRating")],
            IndexState::Building,
        );
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("city", FilterOp::Eq, "SF")
            .order_by("avgRating", Direction::Desc);
        assert!(matches!(
            plan(&mut cat, q),
            Err(FirestoreError::MissingIndex { .. })
        ));
    }

    #[test]
    fn descending_single_order_reverse_scans_auto_index() {
        let mut cat = IndexCatalog::new();
        let q = Query::parse("/restaurants")
            .unwrap()
            .order_by("avgRating", Direction::Desc);
        match plan(&mut cat, q).unwrap().node {
            PlanNode::IndexScans { scans, reverse } => {
                assert_eq!(scans.len(), 1);
                assert!(reverse);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn array_contains_uses_marked_entries() {
        let mut cat = IndexCatalog::new();
        let q =
            Query::parse("/restaurants")
                .unwrap()
                .filter("tags", FilterOp::ArrayContains, "bbq");
        match plan(&mut cat, q).unwrap().node {
            PlanNode::IndexScans { scans, .. } => {
                assert_eq!(scans.len(), 1);
                // Prefix contains the element marker right after dir+id.
                assert_eq!(scans[0].arms[0].prefix[12], ARRAY_ELEMENT_TAG);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn composite_never_covers_array_contains() {
        // Composite entries hold the whole array value; only the auto
        // index has per-element entries. A composite must not be chosen to
        // serve `array-contains`, even when its fields line up.
        let mut cat = IndexCatalog::new();
        cat.add_composite(
            "restaurants",
            vec![IndexedField::asc("tags"), IndexedField::asc("city")],
            IndexState::Ready,
        );
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("tags", FilterOp::ArrayContains, "bbq")
            .filter("city", FilterOp::Eq, "SF");
        match plan(&mut cat, q).unwrap().node {
            PlanNode::IndexScans { scans, .. } => {
                assert_eq!(scans.len(), 2, "zig-zag of the two auto indexes");
                assert!(scans
                    .iter()
                    .any(|s| s.arms[0].prefix.contains(&ARRAY_ELEMENT_TAG)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // With an order-by it cannot be served at all (no composite can
        // carry the element entries).
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("tags", FilterOp::ArrayContains, "bbq")
            .order_by("city", Direction::Asc);
        assert!(matches!(
            plan(&mut cat, q),
            Err(FirestoreError::MissingIndex { .. })
        ));
    }

    #[test]
    fn exempted_field_query_fails() {
        // "queries that would need the excluded index then fail" (§III-B).
        let mut cat = IndexCatalog::new();
        cat.add_exemption("restaurants", "time");
        let q = Query::parse("/restaurants")
            .unwrap()
            .filter("time", FilterOp::Eq, 5i64);
        assert!(matches!(
            plan(&mut cat, q),
            Err(FirestoreError::MissingIndex { .. })
        ));
    }

    #[test]
    fn range_bounds_combine() {
        let mut cat = IndexCatalog::new();
        let q = Query::parse("/r")
            .unwrap()
            .filter("n", FilterOp::Ge, 2i64)
            .filter("n", FilterOp::Lt, 9i64);
        match plan(&mut cat, q).unwrap().node {
            PlanNode::IndexScans { scans, .. } => {
                let s = &scans[0].arms[0];
                assert!(s.lower.as_ref().unwrap().inclusive);
                assert!(!s.upper.as_ref().unwrap().inclusive);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn order_by_scan_excludes_array_element_entries() {
        // An unbounded ascending suffix scan must stop before the
        // per-element array entries, or array-valued docs would surface
        // once per element (and out of place) in order-by results.
        let mut cat = IndexCatalog::new();
        let q = Query::parse("/r")
            .unwrap()
            .order_by("v", Direction::Asc);
        match plan(&mut cat, q).unwrap().node {
            PlanNode::IndexScans { scans, .. } => {
                let upper = scans[0].arms[0].upper.as_ref().expect("clamped");
                assert_eq!(upper.value_bytes, vec![ARRAY_ELEMENT_TAG]);
                assert!(!upper.inclusive);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mixed_type_inequalities_collapse_to_empty_range() {
        use crate::document::Value;
        // `a > "y" AND a <= [1]`: inequalities only match same-type values,
        // so the conjunction is unsatisfiable. Each bound carries its type
        // class, and the intersection inverts (upper below lower).
        let mut cat = IndexCatalog::new();
        let q = Query::parse("/r")
            .unwrap()
            .filter("a", FilterOp::Gt, "y")
            .filter("a", FilterOp::Le, Value::Array(vec![Value::Int(1)]))
            .order_by("a", Direction::Asc);
        match plan(&mut cat, q).unwrap().node {
            PlanNode::IndexScans { scans, .. } => {
                let arm = &scans[0].arms[0];
                let lower = arm.lower.as_ref().unwrap();
                let upper = arm.upper.as_ref().unwrap();
                assert!(
                    upper.value_bytes < lower.value_bytes,
                    "range must invert: {lower:?} vs {upper:?}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn in_filter_plans_union_arms() {
        use crate::document::Value;
        let mut cat = IndexCatalog::new();
        // 3 and 3.0 encode identically: arms dedupe to two.
        let q = Query::parse("/r").unwrap().filter(
            "n",
            FilterOp::In,
            Value::Array(vec![Value::Int(3), Value::Int(7), Value::Double(3.0)]),
        );
        match plan(&mut cat, q).unwrap().node {
            PlanNode::IndexScans { scans, .. } => {
                assert_eq!(scans.len(), 1);
                assert_eq!(scans[0].arms.len(), 2);
                assert_ne!(scans[0].arms[0].prefix, scans[0].arms[1].prefix);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn in_filter_joins_with_equality() {
        use crate::document::Value;
        let mut cat = IndexCatalog::new();
        let q = Query::parse("/r")
            .unwrap()
            .filter("city", FilterOp::Eq, "SF")
            .filter(
                "type",
                FilterOp::In,
                Value::Array(vec![Value::from("BBQ"), Value::from("Thai")]),
            );
        match plan(&mut cat, q).unwrap().node {
            PlanNode::IndexScans { scans, .. } => {
                assert_eq!(scans.len(), 2, "zig-zag of city eq with type union");
                let arm_counts: Vec<usize> = scans.iter().map(|s| s.arms.len()).collect();
                let mut sorted = arm_counts.clone();
                sorted.sort();
                assert_eq!(sorted, vec![1, 2], "{arm_counts:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn window_is_pushed_down() {
        let mut cat = IndexCatalog::new();
        let q = Query::parse("/r")
            .unwrap()
            .filter("n", FilterOp::Eq, 1i64)
            .limit(5)
            .offset(2);
        let p = plan(&mut cat, q).unwrap();
        assert_eq!(p.window.limit, Some(5));
        assert_eq!(p.window.offset, 2);
        assert!(p.window.start_after.is_none());
    }

    #[test]
    fn name_desc_primary_scan() {
        let mut cat = IndexCatalog::new();
        let q = Query::parse("/r")
            .unwrap()
            .order_by("__name__", Direction::Desc);
        // __name__ is the implicit tiebreak; explicit name order alone still
        // maps to a primary scan... but our validate() treats it as a value
        // order, so it plans as an auto index on "__name__". Keep the
        // simplest contract: a bare collection query in name order is the
        // primary scan.
        let bare = Query::parse("/r").unwrap();
        assert_eq!(
            plan(&mut cat, bare).unwrap().node,
            PlanNode::PrimaryScan { reverse: false }
        );
        // Explicit __name__ order is uncommon; accept either planning.
        let _ = plan(&mut cat, q);
    }
}
