#![warn(missing_docs)]

//! Firestore core: the paper's primary contribution.
//!
//! This crate implements the Firestore database engine described in
//! *Firestore: The NoSQL Serverless Database for the Application Developer*
//! (ICDE 2023) on top of the [`spanner`] substrate:
//!
//! * [`path`] — hierarchical document names (`/restaurants/one/ratings/2`)
//!   and their order-preserving byte encoding into Spanner row keys.
//! * [`document`] — the schemaless document model: typed field values up to
//!   1 MiB per document, with a compact binary serialization standing in for
//!   the protocol buffer encoding of §IV-D1.
//! * [`encoding`] — order-preserving encoding of field values for the
//!   `IndexEntries` table, covering the full value domain (null < bool <
//!   number < timestamp < string < bytes < reference < array < map) with
//!   int/double sorting together numerically.
//! * [`index`] — automatic single-field indexes, user-defined composite
//!   indexes, exemptions, and index-entry computation (arrays and maps are
//!   flattened to one entry per element, §V-B2).
//! * [`query`] — the restricted query language: predicates with a constant,
//!   conjunctions, one inequality matching the first sort order, orders,
//!   limits, offsets, projections (§III-C).
//! * [`planner`] — greedy index-set selection (§IV-D3) producing either a
//!   single index scan or a zig-zag join of several indexes; queries with no
//!   serving index set fail with the index the user must create.
//! * [`executor`] — index scans / zig-zag joins over `IndexEntries` followed
//!   by document lookups in `Entities`, with no in-memory sort or filter.
//! * [`explain`] — EXPLAIN / EXPLAIN ANALYZE: the chosen plan rendered as a
//!   deterministic text tree, joined with the executor's work counters.
//! * [`matchtree`] — the Query Matcher decision tree: registered queries
//!   indexed by collection prefix, encoded equality values, and encoded
//!   range intervals, so matching a change is a tree descent instead of a
//!   scan over every subscription (§IV-D4).
//! * [`write`] — the commit pipeline of §IV-D2: read+lock, security rules,
//!   index-entry diffs, Prepare/Accept two-phase commit with the Real-time
//!   Cache (via the [`observer::CommitObserver`] trait), and every failure
//!   path the paper enumerates.
//! * [`retry`] — retry policies with deterministic jittered backoff,
//!   per-request deadlines, and retry-token budgets (§III-D auto-retry,
//!   §VI retry-storm avoidance).
//! * [`gate`] — the tenant-gate seam: the serving layer's control plane
//!   installs a [`TenantGate`] on a database so every entry point consults
//!   per-tenant admission/throttle policy before doing engine work.
//! * [`backfill`] — the background index build/removal service.
//! * [`triggers`] — write triggers over the substrate's transactional
//!   messaging (§III-F).
//! * [`database`] — `FirestoreDatabase`, the assembled engine.

pub mod backfill;
pub mod checker;
pub mod database;
pub mod document;
pub mod encoding;
pub mod error;
pub mod executor;
pub mod explain;
pub mod gate;
pub mod index;
pub mod matching;
pub mod matchtree;
pub mod observer;
pub mod path;
pub mod planner;
pub mod query;
pub mod retry;
pub mod triggers;
pub mod write;

pub use database::{Consistency, FirestoreDatabase};
pub use document::{Document, Value};
pub use encoding::Direction;
pub use error::{FirestoreError, FirestoreResult};
pub use executor::{QueryResult, QueryStats};
pub use gate::{GatedOp, RequestClass, TenantGate};
pub use index::{IndexCatalog, IndexDefinition, IndexId};
pub use matchtree::{DescentStep, DescentTrace, MatchStats, MatcherMutation, MatcherTree};
pub use observer::{CommitObserver, CommitOutcome, DocumentChange, NullObserver};
pub use path::{CollectionPath, DocumentName};
pub use query::{FieldFilter, FilterOp, Query};
pub use retry::{Backoff, Deadline, RetryBudget, RetryPolicy};
pub use write::{Caller, Precondition, Write, WriteOp, WriteResult};
