//! Firestore-level errors.

use simkit::Duration;
use spanner::SpannerError;
use std::fmt;

/// Result alias.
pub type FirestoreResult<T> = Result<T, FirestoreError>;

/// Errors returned by the Firestore engine.
#[derive(Clone, Debug, PartialEq)]
pub enum FirestoreError {
    /// The document does not exist (e.g. update precondition).
    NotFound(String),
    /// The document already exists (create precondition).
    AlreadyExists(String),
    /// Security rules denied the request.
    PermissionDenied(String),
    /// A precondition (e.g. `update_time` freshness check) failed.
    FailedPrecondition(String),
    /// Malformed request (bad path, oversized document, invalid query...).
    InvalidArgument(String),
    /// No index set can serve the query; the message names the composite
    /// index to create — mirroring the production error that "includes a
    /// link for adding the required index" (§IV-D3).
    MissingIndex {
        /// Human-readable suggestion.
        suggestion: String,
    },
    /// Transient conflict (lock contention, commit window); retry with
    /// backoff, as the Server SDKs do automatically (§III-D).
    Aborted(String),
    /// A dependency was unavailable (e.g. the Real-time Cache Prepare
    /// failed, §IV-D2: "the write fails and an error is returned").
    Unavailable(String),
    /// The write outcome is unknown (commit timed out).
    Unknown(String),
    /// The tenant exceeded a resource limit (admission slots, traffic
    /// shedding under overload, free-quota exhaustion). Retriable after the
    /// carried `retry_after` hint — clients must wait at least that long
    /// before retrying, so shed load drains instead of multiplying (§VI).
    ResourceExhausted {
        /// What was exhausted.
        message: String,
        /// Server-suggested minimum backoff before the retry.
        retry_after: Duration,
    },
    /// The per-request deadline budget was exhausted. Not retriable: the
    /// caller's budget is spent, so retrying would only amplify load.
    DeadlineExceeded(String),
    /// Internal invariant violation.
    Internal(String),
}

impl FirestoreError {
    /// Whether the Server SDK retry-with-backoff logic should retry.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            FirestoreError::Aborted(_)
                | FirestoreError::Unavailable(_)
                | FirestoreError::ResourceExhausted { .. }
        )
    }

    /// The server's minimum-backoff hint, when the error carries one
    /// (throttle rejections do; the client retry loop must wait at least
    /// this long before the next attempt).
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            FirestoreError::ResourceExhausted { retry_after, .. } => Some(*retry_after),
            _ => None,
        }
    }

    /// Alias for [`FirestoreError::is_retryable`] matching the taxonomy used
    /// across the workspace's error types.
    pub fn is_retriable(&self) -> bool {
        self.is_retryable()
    }

    /// Whether the error reflects a transient condition. Broader than
    /// retriability: an exhausted deadline is transient (the system may
    /// recover) but must not be retried because the budget is spent.
    pub fn is_transient(&self) -> bool {
        self.is_retryable() || matches!(self, FirestoreError::DeadlineExceeded(_))
    }
}

impl fmt::Display for FirestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FirestoreError::NotFound(m) => write!(f, "not found: {m}"),
            FirestoreError::AlreadyExists(m) => write!(f, "already exists: {m}"),
            FirestoreError::PermissionDenied(m) => write!(f, "permission denied: {m}"),
            FirestoreError::FailedPrecondition(m) => write!(f, "failed precondition: {m}"),
            FirestoreError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            FirestoreError::MissingIndex { suggestion } => {
                write!(f, "the query requires an index; create {suggestion}")
            }
            FirestoreError::Aborted(m) => write!(f, "aborted: {m}"),
            FirestoreError::Unavailable(m) => write!(f, "unavailable: {m}"),
            FirestoreError::Unknown(m) => write!(f, "unknown outcome: {m}"),
            FirestoreError::ResourceExhausted {
                message,
                retry_after,
            } => write!(f, "resource exhausted: {message} (retry after {retry_after})"),
            FirestoreError::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
            FirestoreError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for FirestoreError {}

impl From<SpannerError> for FirestoreError {
    fn from(e: SpannerError) -> Self {
        match e {
            SpannerError::LockConflict { .. } => FirestoreError::Aborted(e.to_string()),
            SpannerError::CommitWindowExpired => FirestoreError::Aborted(e.to_string()),
            SpannerError::UnknownOutcome => FirestoreError::Unknown(e.to_string()),
            SpannerError::SnapshotTooOld => FirestoreError::FailedPrecondition(e.to_string()),
            SpannerError::Unavailable(_) => FirestoreError::Unavailable(e.to_string()),
            SpannerError::LockTimeout => FirestoreError::Aborted(e.to_string()),
            other => FirestoreError::Internal(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability() {
        assert!(FirestoreError::Aborted("x".into()).is_retryable());
        assert!(FirestoreError::Unavailable("x".into()).is_retryable());
        assert!(!FirestoreError::NotFound("x".into()).is_retryable());
        assert!(!FirestoreError::PermissionDenied("x".into()).is_retryable());
        // A spent deadline is transient but must not be retried.
        let dl = FirestoreError::DeadlineExceeded("x".into());
        assert!(!dl.is_retriable());
        assert!(dl.is_transient());
    }

    #[test]
    fn resource_exhausted_is_retriable_and_carries_retry_after() {
        let e = FirestoreError::ResourceExhausted {
            message: "per-tenant QPS shed".into(),
            retry_after: Duration::from_millis(250),
        };
        assert!(e.is_retryable());
        assert!(e.is_transient());
        assert_eq!(e.retry_after(), Some(Duration::from_millis(250)));
        assert_eq!(FirestoreError::Aborted("x".into()).retry_after(), None);
        assert!(e.to_string().contains("retry after"));
    }

    #[test]
    fn spanner_error_mapping() {
        assert!(matches!(
            FirestoreError::from(SpannerError::CommitWindowExpired),
            FirestoreError::Aborted(_)
        ));
        assert!(matches!(
            FirestoreError::from(SpannerError::UnknownOutcome),
            FirestoreError::Unknown(_)
        ));
        assert!(matches!(
            FirestoreError::from(SpannerError::NoSuchTable("t".into())),
            FirestoreError::Internal(_)
        ));
        // Chaos-layer faults stay retriable across the mapping.
        assert!(FirestoreError::from(SpannerError::Unavailable("tablet")).is_retryable());
        assert!(FirestoreError::from(SpannerError::LockTimeout).is_retryable());
    }
}
