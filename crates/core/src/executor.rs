//! Query execution: streaming index scans, zig-zag joins, document fetch.
//!
//! "Firestore's query engine executes all queries using either a linear
//! scan over a range of a single secondary index in the Spanner
//! IndexEntries table, or a join of several such secondary indexes, followed
//! by lookup of the corresponding documents in the Entities table, with no
//! in-memory sorting, filtering, etc." (§IV-D3)
//!
//! Every `IndexEntries` row's *value* is the encoded document name, so an
//! entry key never needs to be parsed: the executor compares raw *suffix*
//! bytes (the part of the key after the scan's equality prefix — sort-order
//! values followed by the name) to zig-zag join multiple indexes in order.
//!
//! Execution is *streaming*: each scan is a lazy [`RangeCursor`] pulling
//! bounded batches from storage, the zig-zag join advances the lagging
//! cursor with a seek instead of materializing posting lists, and the whole
//! pipeline stops as soon as the plan's pushed-down window
//! (`offset + limit`) is satisfied. A `limit 10` query over a million-entry
//! index examines O(10) entries per joined index — "the cost of executing a
//! query is proportional to the size of the result set, not the size of the
//! data set".

use crate::document::Document;
use crate::error::{FirestoreError, FirestoreResult};
use crate::path::DocumentName;
use crate::planner::{IndexScan, Plan, PlanNode, ScanSpec, Window};
use crate::query::Query;
use bytes::Bytes;
use simkit::Timestamp;
use spanner::cursor::{RangeCursor, ScanBackend, SnapshotBackend};
use spanner::{Key, KeyRange, ReadWriteTransaction, SpannerDatabase, SpannerResult, TableName};
use std::cmp::Ordering;

/// The Entities table name.
pub const ENTITIES: &str = "Entities";
/// The IndexEntries table name.
pub const INDEX_ENTRIES: &str = "IndexEntries";

/// Smallest cursor refill batch: keeps tiny limits from degenerating into
/// one storage round-trip per row.
const MIN_BATCH: usize = 16;
/// Largest cursor refill batch (unbounded scans stream at this size).
const MAX_BATCH: usize = 256;
/// Documents fetched from `Entities` per batched lookup.
const FETCH_PAGE: usize = 100;

/// Work accounting for a query execution — the quantity the fair-share
/// scheduler charges (§IV-C: "an individual RPC is not a uniform work
/// unit ... one RPC can cost a million times another").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Index entries fetched from storage by the scan cursors. For a
    /// limit-k query this stays O(k · joined indexes) regardless of index
    /// size — the pushdown invariant the regression tests pin.
    pub entries_examined: usize,
    /// Entries that survived the merge (result candidates before the
    /// offset/limit window).
    pub entries_returned: usize,
    /// Zig-zag seek operations (cursor jumps that skipped entries).
    pub seeks: usize,
    /// Documents fetched from `Entities`.
    pub docs_fetched: usize,
    /// Total bytes of returned documents.
    pub bytes_returned: usize,
}

/// How a query reads: lock-free at a timestamp, or inside a read-write
/// transaction (acquiring read locks, §IV-D3).
pub enum ReadAccess<'a> {
    /// Lock-free consistent read at the given timestamp.
    Snapshot(Timestamp),
    /// Locking reads within a transaction.
    Transaction(&'a mut ReadWriteTransaction),
}

/// The result of a query execution.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Matching documents, in query order.
    pub documents: Vec<Document>,
    /// Work accounting.
    pub stats: QueryStats,
    /// Set when the execution stopped early at a per-RPC work limit
    /// (§IV-C: "Firestore APIs support returning partial results for a
    /// query as well as resuming a partially-executed query"): re-issue the
    /// query with `start_after(resume_after)` to continue.
    pub resume_after: Option<DocumentName>,
}

/// The [`ScanBackend`] behind an execution: snapshot scans are lock-free,
/// transactional scans shared-lock each returned row batch by batch.
enum Backend<'d, 't> {
    Snapshot(SnapshotBackend<'d>),
    Transaction {
        db: &'d SpannerDatabase,
        txn: &'t mut ReadWriteTransaction,
    },
}

impl ScanBackend for Backend<'_, '_> {
    fn scan(
        &mut self,
        table: TableName,
        range: &KeyRange,
        limit: usize,
        reverse: bool,
    ) -> SpannerResult<Vec<(Key, Bytes)>> {
        match self {
            Backend::Snapshot(s) => s.scan(table, range, limit, reverse),
            Backend::Transaction { db, txn } => {
                if reverse {
                    db.txn_scan_rev(txn, table, range, limit)
                } else {
                    db.txn_scan(txn, table, range, limit)
                }
            }
        }
    }
}

impl Backend<'_, '_> {
    /// Versioned point lookups of `keys` in `Entities`, one storage round
    /// trip per page under snapshot access.
    fn read_many_versioned(
        &mut self,
        keys: &[Key],
    ) -> FirestoreResult<Vec<Option<(Bytes, Timestamp)>>> {
        match self {
            Backend::Snapshot(s) => Ok(s.db.snapshot_read_many_versioned(ENTITIES, keys, s.ts)?),
            Backend::Transaction { db, txn } => keys
                .iter()
                .map(|k| Ok(db.txn_read_versioned(txn, ENTITIES, k)?))
                .collect(),
        }
    }
}

fn scan_range(spec: &ScanSpec) -> KeyRange {
    let prefix_key = Key::from(spec.prefix.clone());
    let mut start = spec.prefix.clone();
    let mut end: Option<Key> = prefix_key.prefix_end();
    if let Some(lower) = &spec.lower {
        let mut bounded = spec.prefix.clone();
        bounded.extend_from_slice(&lower.value_bytes);
        if lower.inclusive {
            start = bounded;
        } else {
            // Skip every entry whose suffix starts with the bound value.
            match Key::from(bounded).prefix_end() {
                Some(k) => start = k.as_slice().to_vec(),
                None => start = vec![0xFF; 64],
            }
        }
    }
    if let Some(upper) = &spec.upper {
        let mut bounded = spec.prefix.clone();
        bounded.extend_from_slice(&upper.value_bytes);
        end = if upper.inclusive {
            Key::from(bounded).prefix_end()
        } else {
            Some(Key::from(bounded))
        };
    }
    KeyRange::new(Key::from(start), end)
}

/// Scan-order comparison: byte order forward, reversed byte order backward.
fn scan_cmp(a: &[u8], b: &[u8], reverse: bool) -> Ordering {
    if reverse {
        b.cmp(a)
    } else {
        a.cmp(b)
    }
}

/// One streamed posting: the encoded document name carried in the entry's
/// row value (suffix comparison happens before a posting is emitted, so
/// only the name survives the merge).
struct Posting {
    name_bytes: Bytes,
}

/// A lazy posting stream over one equality prefix of one index.
struct PostingCursor {
    cursor: RangeCursor,
    prefix: Vec<u8>,
}

impl PostingCursor {
    fn new(spec: &ScanSpec, reverse: bool, batch: usize) -> PostingCursor {
        PostingCursor {
            cursor: RangeCursor::new(INDEX_ENTRIES, scan_range(spec), reverse, batch),
            prefix: spec.prefix.clone(),
        }
    }

    fn peek_suffix(&mut self, backend: &mut Backend<'_, '_>) -> FirestoreResult<Option<Vec<u8>>> {
        Ok(self
            .cursor
            .peek(backend)?
            .map(|(k, _)| k.as_slice()[self.prefix.len()..].to_vec()))
    }

    fn next(&mut self, backend: &mut Backend<'_, '_>) -> FirestoreResult<Option<Posting>> {
        Ok(self
            .cursor
            .next(backend)?
            .map(|(_, v)| Posting { name_bytes: v }))
    }

    /// Jump (in scan order) to the first posting whose suffix is at or past
    /// `suffix` — the zig-zag advance. Unfetched skipped entries are never
    /// read.
    fn seek_suffix(&mut self, suffix: &[u8]) {
        let mut key = self.prefix.clone();
        key.extend_from_slice(suffix);
        self.cursor.seek(&Key::from(key));
    }

    fn add_stats(&self, stats: &mut QueryStats) {
        stats.entries_examined += self.cursor.rows_read;
        stats.seeks += self.cursor.seeks;
    }
}

/// A union of posting streams: one arm per `in` alternative, merged in
/// suffix scan order (arms have disjoint document sets, so the merge is the
/// sorted union).
struct UnionCursor {
    arms: Vec<PostingCursor>,
    reverse: bool,
}

impl UnionCursor {
    fn new(scan: &IndexScan, reverse: bool, batch: usize) -> UnionCursor {
        UnionCursor {
            arms: scan
                .arms
                .iter()
                .map(|spec| PostingCursor::new(spec, reverse, batch))
                .collect(),
            reverse,
        }
    }

    /// The arm whose head posting comes first in scan order.
    fn best_arm(&mut self, backend: &mut Backend<'_, '_>) -> FirestoreResult<Option<usize>> {
        let mut best: Option<(usize, Vec<u8>)> = None;
        for i in 0..self.arms.len() {
            let Some(suffix) = self.arms[i].peek_suffix(backend)? else {
                continue;
            };
            let better = match &best {
                None => true,
                Some((_, bs)) => scan_cmp(&suffix, bs, self.reverse).is_lt(),
            };
            if better {
                best = Some((i, suffix));
            }
        }
        Ok(best.map(|(i, _)| i))
    }

    fn peek_suffix(&mut self, backend: &mut Backend<'_, '_>) -> FirestoreResult<Option<Vec<u8>>> {
        match self.best_arm(backend)? {
            Some(i) => self.arms[i].peek_suffix(backend),
            None => Ok(None),
        }
    }

    fn next(&mut self, backend: &mut Backend<'_, '_>) -> FirestoreResult<Option<Posting>> {
        match self.best_arm(backend)? {
            Some(i) => self.arms[i].next(backend),
            None => Ok(None),
        }
    }

    fn seek_suffix(&mut self, target: &[u8]) {
        for arm in &mut self.arms {
            arm.seek_suffix(target);
        }
    }

    fn add_stats(&self, stats: &mut QueryStats) {
        for arm in &self.arms {
            arm.add_stats(stats);
        }
    }
}

/// The n-way streaming zig-zag join: repeatedly take the scan-order maximum
/// of the cursor heads as the target, seek every lagging cursor to it, and
/// emit when all heads agree. Joined indexes share the suffix structure, so
/// raw byte comparison suffices.
struct ZigZagMerge {
    cursors: Vec<UnionCursor>,
    reverse: bool,
}

impl ZigZagMerge {
    fn new(scans: &[IndexScan], reverse: bool, batch: usize) -> ZigZagMerge {
        ZigZagMerge {
            cursors: scans
                .iter()
                .map(|s| UnionCursor::new(s, reverse, batch))
                .collect(),
            reverse,
        }
    }

    fn next(&mut self, backend: &mut Backend<'_, '_>) -> FirestoreResult<Option<Posting>> {
        if self.cursors.is_empty() {
            return Ok(None);
        }
        loop {
            // Find the scan-order maximum of the current heads; any
            // exhausted cursor ends the intersection.
            let mut target: Option<Vec<u8>> = None;
            for c in self.cursors.iter_mut() {
                let Some(suffix) = c.peek_suffix(backend)? else {
                    return Ok(None);
                };
                target = Some(match target {
                    None => suffix,
                    Some(t) if scan_cmp(&suffix, &t, self.reverse).is_gt() => suffix,
                    Some(t) => t,
                });
            }
            let target = target.expect("non-empty cursor set");
            // Advance every lagging cursor to the target with a seek.
            let mut all_match = true;
            for c in self.cursors.iter_mut() {
                c.seek_suffix(&target);
                match c.peek_suffix(backend)? {
                    None => return Ok(None),
                    Some(s) if s == target => {}
                    Some(_) => all_match = false,
                }
            }
            if all_match {
                let hit = self.cursors[0].next(backend)?.expect("head just peeked");
                for c in self.cursors[1..].iter_mut() {
                    c.next(backend)?;
                }
                return Ok(Some(hit));
            }
            // Some cursor moved past the target: its (larger) head becomes
            // the next round's target, so progress is guaranteed.
        }
    }

    fn add_stats(&self, stats: &mut QueryStats) {
        for c in &self.cursors {
            c.add_stats(stats);
        }
    }
}

/// Streaming window consumer: applies the plan's start-after cursor, offset
/// and limit while results are produced, so the scans can stop as soon as
/// the window is full.
struct WindowState {
    /// Encoded name of the cursor document; results are dropped until (and
    /// including) it. If it never appears, the result is empty — matching
    /// the contract that a cursor from a deleted document resumes nowhere.
    pending_after: Option<Bytes>,
    to_skip: usize,
    needed: usize,
    rows: Vec<Bytes>,
}

impl WindowState {
    fn new(window: &Window, work_limit: usize) -> WindowState {
        let needed = window
            .limit
            .unwrap_or(usize::MAX)
            .min(work_limit.saturating_add(1));
        WindowState {
            pending_after: window
                .start_after
                .as_ref()
                .map(|n| Bytes::from(n.encode())),
            to_skip: window.offset,
            needed,
            rows: Vec::new(),
        }
    }

    fn full(&self) -> bool {
        self.rows.len() >= self.needed
    }

    fn offer(&mut self, name_bytes: Bytes) {
        if let Some(after) = &self.pending_after {
            if name_bytes == *after {
                self.pending_after = None;
            }
            return;
        }
        if self.to_skip > 0 {
            self.to_skip -= 1;
            return;
        }
        if self.rows.len() < self.needed {
            self.rows.push(name_bytes);
        }
    }

    /// Close the window: truncate to the per-RPC work cap and report the
    /// resume point if anything was cut.
    fn finish(self, work_limit: usize) -> FirestoreResult<(Vec<Bytes>, Option<DocumentName>)> {
        let mut rows = self.rows;
        let mut resume_after = None;
        if rows.len() > work_limit {
            rows.truncate(work_limit);
            let last = rows.last().expect("work_limit > 0 rows remain");
            resume_after = Some(
                DocumentName::decode(last)
                    .ok_or_else(|| FirestoreError::Internal("corrupt index entry".into()))?,
            );
        }
        Ok((rows, resume_after))
    }
}

/// Refill batch size for a windowed scan: just past the window for small
/// limits, capped for streaming unbounded scans.
fn pick_batch(window: &Window, work_limit: usize) -> usize {
    let goal = window
        .limit
        .map(|l| window.offset.saturating_add(l))
        .unwrap_or(usize::MAX)
        .min(work_limit.saturating_add(1));
    goal.saturating_add(1).clamp(MIN_BATCH, MAX_BATCH)
}

/// Execute `plan` for `query` with no per-RPC work limit.
pub fn execute(
    db: &SpannerDatabase,
    dir: spanner::database::DirectoryId,
    plan: &Plan,
    query: &Query,
    access: ReadAccess<'_>,
) -> FirestoreResult<QueryResult> {
    execute_limited(db, dir, plan, query, access, usize::MAX)
}

/// Execute `plan` for `query`, returning at most `work_limit` documents —
/// the per-RPC result cap that "protects the system against problematic
/// workloads" (§IV-C). A truncated result carries `resume_after`.
pub fn execute_limited(
    db: &SpannerDatabase,
    dir: spanner::database::DirectoryId,
    plan: &Plan,
    query: &Query,
    access: ReadAccess<'_>,
    work_limit: usize,
) -> FirestoreResult<QueryResult> {
    let mut stats = QueryStats::default();
    let mut backend = match access {
        ReadAccess::Snapshot(ts) => Backend::Snapshot(SnapshotBackend { db, ts }),
        ReadAccess::Transaction(txn) => Backend::Transaction { db, txn },
    };
    let mut win = WindowState::new(&plan.window, work_limit);
    let batch = pick_batch(&plan.window, work_limit);

    match &plan.node {
        PlanNode::PrimaryScan { reverse } => {
            let range = collection_range(dir, query);
            let want_segments = query.collection.segments().len() + 1;
            let mut cursor = RangeCursor::new(ENTITIES, range, *reverse, batch);
            while !win.full() {
                let Some((k, _)) = cursor.next(&mut backend)? else {
                    break;
                };
                let name_bytes = &k.as_slice()[4..]; // strip directory prefix
                let Some(name) = DocumentName::decode(name_bytes) else {
                    return Err(FirestoreError::Internal("corrupt entity key".into()));
                };
                // The collection's key range also covers sub-collection
                // documents; keep only direct children.
                if name.segments().len() != want_segments {
                    continue;
                }
                stats.entries_returned += 1;
                win.offer(Bytes::copy_from_slice(name_bytes));
            }
            stats.entries_examined += cursor.rows_read;
            stats.seeks += cursor.seeks;
        }
        PlanNode::IndexScans { scans, reverse } => {
            let mut merge = ZigZagMerge::new(scans, *reverse, batch);
            while !win.full() {
                let Some(p) = merge.next(&mut backend)? else {
                    break;
                };
                stats.entries_returned += 1;
                win.offer(p.name_bytes);
            }
            merge.add_stats(&mut stats);
        }
    }

    let (rows, resume_after) = win.finish(work_limit)?;

    // Fetch the documents, one batched Entities lookup per page.
    let mut documents = Vec::with_capacity(rows.len());
    for page in rows.chunks(FETCH_PAGE) {
        let keys: Vec<Key> = page.iter().map(|nb| dir.key(nb)).collect();
        let fetched = backend.read_many_versioned(&keys)?;
        stats.docs_fetched += page.len();
        for (nb, raw) in page.iter().zip(fetched) {
            let Some(name) = DocumentName::decode(nb) else {
                return Err(FirestoreError::Internal("corrupt index entry".into()));
            };
            // An entry without a document would indicate index corruption;
            // the write path keeps them strongly consistent, so treat it as
            // fatal.
            let Some((bytes, version_ts)) = raw else {
                return Err(FirestoreError::Internal(format!(
                    "dangling index entry for {name}"
                )));
            };
            let Some(mut doc) = crate::write::decode_from_storage(name.clone(), &bytes, version_ts)
            else {
                return Err(FirestoreError::Internal(format!("corrupt document {name}")));
            };
            if let Some(projection) = &query.projection {
                doc.fields.retain(|k, _| projection.iter().any(|p| p == k));
            }
            stats.bytes_returned += doc.approx_size();
            documents.push(doc);
        }
    }

    Ok(QueryResult {
        documents,
        stats,
        resume_after,
    })
}

/// Count the documents matching `query` without fetching them (the COUNT
/// aggregation of paper §VIII): index entries are streamed and intersected
/// exactly like a normal execution, but the `Entities` lookups are skipped
/// and the scan stops at the window's edge (`offset + limit`).
pub fn count(
    db: &SpannerDatabase,
    dir: spanner::database::DirectoryId,
    plan: &Plan,
    query: &Query,
    ts: Timestamp,
) -> FirestoreResult<(usize, QueryStats)> {
    let mut stats = QueryStats::default();
    let mut backend = Backend::Snapshot(SnapshotBackend { db, ts });
    let window = &plan.window;
    let mut pending_after: Option<Vec<u8>> = window.start_after.as_ref().map(|n| n.encode());
    // Counting needs at most offset + limit matches.
    let stop_at = window
        .limit
        .map(|l| window.offset.saturating_add(l))
        .unwrap_or(usize::MAX);
    let mut matched = 0usize;

    match &plan.node {
        PlanNode::PrimaryScan { reverse } => {
            let range = collection_range(dir, query);
            let want_segments = query.collection.segments().len() + 1;
            let mut cursor = RangeCursor::new(ENTITIES, range, *reverse, MAX_BATCH);
            while matched < stop_at {
                let Some((k, _)) = cursor.next(&mut backend)? else {
                    break;
                };
                let name_bytes = &k.as_slice()[4..];
                let Some(name) = DocumentName::decode(name_bytes) else {
                    continue;
                };
                if name.segments().len() != want_segments {
                    continue;
                }
                if let Some(after) = &pending_after {
                    if name_bytes == &after[..] {
                        pending_after = None;
                    }
                    continue;
                }
                matched += 1;
            }
            stats.entries_examined += cursor.rows_read;
            stats.seeks += cursor.seeks;
        }
        PlanNode::IndexScans { scans, reverse } => {
            let mut merge = ZigZagMerge::new(scans, *reverse, MAX_BATCH);
            while matched < stop_at {
                let Some(p) = merge.next(&mut backend)? else {
                    break;
                };
                if let Some(after) = &pending_after {
                    if p.name_bytes.as_ref() == after.as_slice() {
                        pending_after = None;
                    }
                    continue;
                }
                matched += 1;
            }
            merge.add_stats(&mut stats);
        }
    }
    stats.entries_returned = matched;
    let windowed = matched
        .saturating_sub(window.offset)
        .min(window.limit.unwrap_or(usize::MAX));
    Ok((windowed, stats))
}

/// The Entities-table key range of a query's collection.
pub fn collection_range(dir: spanner::database::DirectoryId, query: &Query) -> KeyRange {
    let prefix = dir.key(&query.collection.encode_prefix());
    KeyRange::prefix(&prefix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner::SpannerOptions;

    #[test]
    fn scan_range_without_bounds_covers_prefix() {
        let spec = ScanSpec {
            index: crate::index::IndexId(3),
            prefix: vec![1, 2, 3],
            lower: None,
            upper: None,
        };
        let r = scan_range(&spec);
        assert!(r.contains(&Key::from(vec![1, 2, 3, 9, 9])));
        assert!(!r.contains(&Key::from(vec![1, 2, 4])));
    }

    #[test]
    fn scan_range_bounds() {
        use crate::planner::SuffixBound;
        let mk = |lower: Option<(u8, bool)>, upper: Option<(u8, bool)>| ScanSpec {
            index: crate::index::IndexId(0),
            prefix: vec![7],
            lower: lower.map(|(b, inclusive)| SuffixBound {
                value_bytes: vec![b],
                inclusive,
            }),
            upper: upper.map(|(b, inclusive)| SuffixBound {
                value_bytes: vec![b],
                inclusive,
            }),
        };
        // > 5 (exclusive lower): entries with value byte 5 excluded.
        let r = scan_range(&mk(Some((5, false)), None));
        assert!(!r.contains(&Key::from(vec![7, 5, 200])));
        assert!(r.contains(&Key::from(vec![7, 6, 0])));
        // >= 5: included.
        let r = scan_range(&mk(Some((5, true)), None));
        assert!(r.contains(&Key::from(vec![7, 5, 0])));
        // < 9: value 9 excluded.
        let r = scan_range(&mk(None, Some((9, false))));
        assert!(r.contains(&Key::from(vec![7, 8, 255])));
        assert!(!r.contains(&Key::from(vec![7, 9, 0])));
        // <= 9: value 9 included, 10 excluded.
        let r = scan_range(&mk(None, Some((9, true))));
        assert!(r.contains(&Key::from(vec![7, 9, 77])));
        assert!(!r.contains(&Key::from(vec![7, 10])));
    }

    /// A database seeded with raw IndexEntries rows: `(prefix, suffix)`
    /// keys whose value is the suffix itself (standing in for the encoded
    /// name).
    fn seeded(rows: &[(&[u8], &[u8])]) -> SpannerDatabase {
        let clock = simkit::SimClock::new();
        clock.advance(simkit::Duration::from_secs(1));
        let db = SpannerDatabase::with_options(clock, SpannerOptions::default());
        db.create_table(INDEX_ENTRIES);
        let mut txn = db.begin();
        for (prefix, suffix) in rows {
            let mut key = prefix.to_vec();
            key.extend_from_slice(suffix);
            db.txn_put(
                &mut txn,
                INDEX_ENTRIES,
                Key::from(key),
                Bytes::copy_from_slice(suffix),
            )
            .unwrap();
        }
        db.commit(txn, Timestamp::ZERO, Timestamp::MAX).unwrap();
        db
    }

    fn spec(prefix: &[u8]) -> ScanSpec {
        ScanSpec {
            index: crate::index::IndexId(0),
            prefix: prefix.to_vec(),
            lower: None,
            upper: None,
        }
    }

    fn drain(
        merge: &mut ZigZagMerge,
        backend: &mut Backend<'_, '_>,
        max: usize,
    ) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while out.len() < max {
            match merge.next(backend).unwrap() {
                Some(p) => out.push(p.name_bytes.to_vec()),
                None => break,
            }
        }
        out
    }

    #[test]
    fn zigzag_intersects_streams() {
        let db = seeded(&[
            (b"A", b"a"),
            (b"A", b"c"),
            (b"A", b"e"),
            (b"A", b"g"),
            (b"B", b"b"),
            (b"B", b"c"),
            (b"B", b"d"),
            (b"B", b"g"),
            (b"B", b"h"),
        ]);
        let ts = db.strong_read_ts();
        let mut backend = Backend::Snapshot(SnapshotBackend { db: &db, ts });
        let scans = vec![
            IndexScan {
                arms: vec![spec(b"A")],
            },
            IndexScan {
                arms: vec![spec(b"B")],
            },
        ];
        let mut merge = ZigZagMerge::new(&scans, false, 4);
        assert_eq!(
            drain(&mut merge, &mut backend, usize::MAX),
            vec![b"c".to_vec(), b"g".to_vec()]
        );
        let mut stats = QueryStats::default();
        merge.add_stats(&mut stats);
        assert!(stats.seeks > 0, "zig-zag must seek the lagging cursor");
    }

    #[test]
    fn zigzag_reverse_order() {
        let db = seeded(&[
            (b"A", b"a"),
            (b"A", b"c"),
            (b"A", b"e"),
            (b"A", b"g"),
            (b"B", b"c"),
            (b"B", b"d"),
            (b"B", b"g"),
            (b"B", b"h"),
        ]);
        let ts = db.strong_read_ts();
        let mut backend = Backend::Snapshot(SnapshotBackend { db: &db, ts });
        let scans = vec![
            IndexScan {
                arms: vec![spec(b"A")],
            },
            IndexScan {
                arms: vec![spec(b"B")],
            },
        ];
        let mut merge = ZigZagMerge::new(&scans, true, 4);
        assert_eq!(
            drain(&mut merge, &mut backend, usize::MAX),
            vec![b"g".to_vec(), b"c".to_vec()]
        );
    }

    #[test]
    fn union_arms_merge_in_order() {
        // Two `in` arms with interleaved suffixes stream as one sorted
        // union.
        let db = seeded(&[
            (b"A", b"b"),
            (b"A", b"d"),
            (b"A", b"f"),
            (b"B", b"a"),
            (b"B", b"c"),
            (b"B", b"e"),
        ]);
        let ts = db.strong_read_ts();
        let mut backend = Backend::Snapshot(SnapshotBackend { db: &db, ts });
        let scans = vec![IndexScan {
            arms: vec![spec(b"A"), spec(b"B")],
        }];
        let mut merge = ZigZagMerge::new(&scans, false, 4);
        let got = drain(&mut merge, &mut backend, usize::MAX);
        assert_eq!(
            got,
            vec![
                b"a".to_vec(),
                b"b".to_vec(),
                b"c".to_vec(),
                b"d".to_vec(),
                b"e".to_vec(),
                b"f".to_vec()
            ]
        );
        // Reverse union too.
        let mut merge = ZigZagMerge::new(&scans, true, 4);
        let mut rev = drain(&mut merge, &mut backend, usize::MAX);
        rev.reverse();
        assert_eq!(got, rev);
    }

    #[test]
    fn merge_stops_reading_at_consumer_limit() {
        // 400 entries per index; pulling 5 intersection results must not
        // stream either index to the end.
        let rows: Vec<(Vec<u8>, Vec<u8>)> = (0..400u32)
            .flat_map(|i| {
                let s = format!("s{i:04}").into_bytes();
                vec![(b"A".to_vec(), s.clone()), (b"B".to_vec(), s)]
            })
            .collect();
        let borrowed: Vec<(&[u8], &[u8])> = rows
            .iter()
            .map(|(p, s)| (p.as_slice(), s.as_slice()))
            .collect();
        let db = seeded(&borrowed);
        let ts = db.strong_read_ts();
        let mut backend = Backend::Snapshot(SnapshotBackend { db: &db, ts });
        let scans = vec![
            IndexScan {
                arms: vec![spec(b"A")],
            },
            IndexScan {
                arms: vec![spec(b"B")],
            },
        ];
        let mut merge = ZigZagMerge::new(&scans, false, 16);
        let got = drain(&mut merge, &mut backend, 5);
        assert_eq!(got.len(), 5);
        let mut stats = QueryStats::default();
        merge.add_stats(&mut stats);
        assert!(
            stats.entries_examined <= 64,
            "limit-5 join must stream O(limit), examined {}",
            stats.entries_examined
        );
    }

    #[test]
    fn empty_cursor_set_yields_nothing() {
        let db = seeded(&[(b"A", b"a")]);
        let ts = db.strong_read_ts();
        let mut backend = Backend::Snapshot(SnapshotBackend { db: &db, ts });
        let mut merge = ZigZagMerge::new(&[], false, 4);
        assert!(merge.next(&mut backend).unwrap().is_none());
        // One empty participant empties the intersection.
        let scans = vec![
            IndexScan {
                arms: vec![spec(b"A")],
            },
            IndexScan {
                arms: vec![spec(b"Z")],
            },
        ];
        let mut merge = ZigZagMerge::new(&scans, false, 4);
        assert!(merge.next(&mut backend).unwrap().is_none());
    }

    #[test]
    fn window_state_cursor_offset_limit() {
        let nb = |s: &str| Bytes::from(s.as_bytes().to_vec());
        // offset 1, limit 2 over a..e.
        let mut win = WindowState::new(
            &Window {
                offset: 1,
                limit: Some(2),
                start_after: None,
            },
            usize::MAX,
        );
        for s in ["a", "b", "c", "d", "e"] {
            if win.full() {
                break;
            }
            win.offer(nb(s));
        }
        let (rows, resume) = win.finish(usize::MAX).unwrap();
        assert_eq!(rows, vec![nb("b"), nb("c")]);
        assert!(resume.is_none());
    }
}
