//! Query execution: index scans, zig-zag joins, document fetch.
//!
//! "Firestore's query engine executes all queries using either a linear
//! scan over a range of a single secondary index in the Spanner
//! IndexEntries table, or a join of several such secondary indexes, followed
//! by lookup of the corresponding documents in the Entities table, with no
//! in-memory sorting, filtering, etc." (§IV-D3)
//!
//! Every `IndexEntries` row's *value* is the encoded document name, so an
//! entry key never needs to be parsed: the executor compares raw *suffix*
//! bytes (the part of the key after the scan's equality prefix — sort-order
//! values followed by the name) to zig-zag join multiple indexes in order.

use crate::document::Document;
use crate::error::{FirestoreError, FirestoreResult};
use crate::path::DocumentName;
use crate::planner::{Plan, ScanSpec};
use crate::query::Query;
use bytes::Bytes;
use simkit::Timestamp;
use spanner::{Key, KeyRange, ReadWriteTransaction, SpannerDatabase};

/// The Entities table name.
pub const ENTITIES: &str = "Entities";
/// The IndexEntries table name.
pub const INDEX_ENTRIES: &str = "IndexEntries";

/// Work accounting for a query execution — the quantity the fair-share
/// scheduler charges (§IV-C: "an individual RPC is not a uniform work
/// unit ... one RPC can cost a million times another").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Index entries read from storage.
    pub entries_scanned: usize,
    /// Zig-zag seek operations.
    pub seeks: usize,
    /// Documents fetched from `Entities`.
    pub docs_fetched: usize,
    /// Total bytes of returned documents.
    pub bytes_returned: usize,
}

/// How a query reads: lock-free at a timestamp, or inside a read-write
/// transaction (acquiring read locks, §IV-D3).
pub enum ReadAccess<'a> {
    /// Lock-free consistent read at the given timestamp.
    Snapshot(Timestamp),
    /// Locking reads within a transaction.
    Transaction(&'a mut ReadWriteTransaction),
}

/// The result of a query execution.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Matching documents, in query order.
    pub documents: Vec<Document>,
    /// Work accounting.
    pub stats: QueryStats,
    /// Set when the execution stopped early at a per-RPC work limit
    /// (§IV-C: "Firestore APIs support returning partial results for a
    /// query as well as resuming a partially-executed query"): re-issue the
    /// query with `start_after(resume_after)` to continue.
    pub resume_after: Option<DocumentName>,
}

fn scan_range(spec: &ScanSpec) -> KeyRange {
    let prefix_key = Key::from(spec.prefix.clone());
    let mut start = spec.prefix.clone();
    let mut end: Option<Key> = prefix_key.prefix_end();
    if let Some(lower) = &spec.lower {
        let mut bounded = spec.prefix.clone();
        bounded.extend_from_slice(&lower.value_bytes);
        if lower.inclusive {
            start = bounded;
        } else {
            // Skip every entry whose suffix starts with the bound value.
            match Key::from(bounded).prefix_end() {
                Some(k) => start = k.as_slice().to_vec(),
                None => start = vec![0xFF; 64],
            }
        }
    }
    if let Some(upper) = &spec.upper {
        let mut bounded = spec.prefix.clone();
        bounded.extend_from_slice(&upper.value_bytes);
        end = if upper.inclusive {
            Key::from(bounded).prefix_end()
        } else {
            Some(Key::from(bounded))
        };
    }
    KeyRange::new(Key::from(start), end)
}

/// One scanned posting: the suffix bytes (order values + name) and the
/// document name carried in the row value.
struct Posting {
    suffix: Vec<u8>,
    name_bytes: Bytes,
}

fn scan_postings(
    db: &SpannerDatabase,
    access: &mut ReadAccess<'_>,
    spec: &ScanSpec,
    reverse: bool,
    cap: usize,
    stats: &mut QueryStats,
) -> FirestoreResult<Vec<Posting>> {
    let range = scan_range(spec);
    let rows = match access {
        ReadAccess::Snapshot(ts) => {
            if reverse {
                db.snapshot_scan_rev(INDEX_ENTRIES, &range, *ts, cap)?
            } else {
                db.snapshot_scan(INDEX_ENTRIES, &range, *ts, cap)?
            }
        }
        ReadAccess::Transaction(txn) => {
            let mut rows = db.txn_scan(txn, INDEX_ENTRIES, &range, cap.min(1_000_000))?;
            if reverse {
                rows.reverse();
            }
            rows
        }
    };
    stats.entries_scanned += rows.len();
    Ok(rows
        .into_iter()
        .map(|(k, v)| Posting {
            suffix: k.as_slice()[spec.prefix.len()..].to_vec(),
            name_bytes: v,
        })
        .collect())
}

/// Zig-zag intersect postings lists by suffix. Lists are in scan order
/// (already reversed when scanning descending); intersection preserves that
/// order. `cmp` handles forward/backward comparison.
fn zigzag_intersect(lists: Vec<Vec<Posting>>, reverse: bool, stats: &mut QueryStats) -> Vec<Bytes> {
    if lists.is_empty() {
        return Vec::new();
    }
    if lists.len() == 1 {
        return lists
            .into_iter()
            .next()
            .unwrap()
            .into_iter()
            .map(|p| p.name_bytes)
            .collect();
    }
    let fwd = |a: &[u8], b: &[u8]| if reverse { b.cmp(a) } else { a.cmp(b) };
    let mut idx = vec![0usize; lists.len()];
    let mut out = Vec::new();
    'outer: loop {
        // Find the maximum current suffix across lists.
        let mut target: Option<&[u8]> = None;
        for (li, list) in lists.iter().enumerate() {
            let Some(p) = list.get(idx[li]) else {
                break 'outer;
            };
            target = Some(match target {
                None => &p.suffix,
                Some(t) if fwd(&p.suffix, t).is_gt() => &p.suffix,
                Some(t) => t,
            });
        }
        let target = target.expect("non-empty lists").to_vec();
        // Advance every list to the target (binary search = zig-zag seek).
        let mut all_match = true;
        for (li, list) in lists.iter().enumerate() {
            let slice = &list[idx[li]..];
            let pos = slice.partition_point(|p| fwd(&p.suffix, &target).is_lt());
            if pos > 0 {
                stats.seeks += 1;
            }
            idx[li] += pos;
            match list.get(idx[li]) {
                None => break 'outer,
                Some(p) if p.suffix == target => {}
                Some(_) => all_match = false,
            }
        }
        if all_match {
            out.push(lists[0][idx[0]].name_bytes.clone());
            for i in idx.iter_mut() {
                *i += 1;
            }
        }
    }
    out
}

fn fetch_document(
    db: &SpannerDatabase,
    access: &mut ReadAccess<'_>,
    dir_key: &Key,
    name: &DocumentName,
    stats: &mut QueryStats,
) -> FirestoreResult<Option<Document>> {
    let raw = match access {
        ReadAccess::Snapshot(ts) => db.snapshot_read_versioned(ENTITIES, dir_key, *ts)?,
        ReadAccess::Transaction(txn) => db.txn_read_versioned(txn, ENTITIES, dir_key)?,
    };
    stats.docs_fetched += 1;
    match raw {
        None => Ok(None),
        Some((bytes, version_ts)) => {
            crate::write::decode_from_storage(name.clone(), &bytes, version_ts)
                .map(Some)
                .ok_or_else(|| FirestoreError::Internal(format!("corrupt document {name}")))
        }
    }
}

/// Execute `plan` for `query` with no per-RPC work limit.
pub fn execute(
    db: &SpannerDatabase,
    dir: spanner::database::DirectoryId,
    plan: &Plan,
    query: &Query,
    access: ReadAccess<'_>,
) -> FirestoreResult<QueryResult> {
    execute_limited(db, dir, plan, query, access, usize::MAX)
}

/// Execute `plan` for `query`, returning at most `work_limit` documents —
/// the per-RPC result cap that "protects the system against problematic
/// workloads" (§IV-C). A truncated result carries `resume_after`.
pub fn execute_limited(
    db: &SpannerDatabase,
    dir: spanner::database::DirectoryId,
    plan: &Plan,
    query: &Query,
    mut access: ReadAccess<'_>,
    work_limit: usize,
) -> FirestoreResult<QueryResult> {
    let mut stats = QueryStats::default();
    let limit_cap = match (query.limit, &query.start_after) {
        // With a limit and no cursor we can cap single-scan reads.
        (Some(l), None) => query.offset.saturating_add(l),
        _ => usize::MAX,
    };

    let name_keys: Vec<(Key, DocumentName, Option<Document>)> = match plan {
        Plan::PrimaryScan { reverse } => {
            let range = collection_range(dir, query);
            let rows = match &mut access {
                ReadAccess::Snapshot(ts) => {
                    db.snapshot_scan_versioned(ENTITIES, &range, *ts, usize::MAX, *reverse)?
                }
                ReadAccess::Transaction(txn) => {
                    let mut rows: Vec<(Key, bytes::Bytes, Timestamp)> = db
                        .txn_scan(txn, ENTITIES, &range, usize::MAX)?
                        .into_iter()
                        .map(|(k, v)| (k, v, Timestamp::ZERO))
                        .collect();
                    // Transactional scans re-read versions per row for the
                    // timestamp (the scan itself already holds the locks).
                    for (k, _, ts) in rows.iter_mut() {
                        if let Some((_, version_ts)) =
                            db.txn_read_versioned(txn, ENTITIES, k)?
                        {
                            *ts = version_ts;
                        }
                    }
                    if *reverse {
                        rows.reverse();
                    }
                    rows
                }
            };
            stats.entries_scanned += rows.len();
            let want_segments = query.collection.segments().len() + 1;
            let mut out = Vec::new();
            for (k, bytes, version_ts) in rows {
                let name_bytes = &k.as_slice()[4..]; // strip directory prefix
                let Some(name) = DocumentName::decode(name_bytes) else {
                    return Err(FirestoreError::Internal("corrupt entity key".into()));
                };
                // The collection's key range also covers sub-collection
                // documents; keep only direct children.
                if name.segments().len() != want_segments {
                    continue;
                }
                stats.docs_fetched += 1;
                let Some(doc) = crate::write::decode_from_storage(name.clone(), &bytes, version_ts)
                else {
                    return Err(FirestoreError::Internal(format!("corrupt document {name}")));
                };
                out.push((k.clone(), name, Some(doc)));
            }
            out
        }
        Plan::IndexScans { scans, reverse } => {
            let single = scans.len() == 1;
            let cap = if single { limit_cap } else { usize::MAX };
            let mut lists = Vec::with_capacity(scans.len());
            for s in scans {
                lists.push(scan_postings(
                    db,
                    &mut access,
                    s,
                    *reverse,
                    cap,
                    &mut stats,
                )?);
            }
            let names = zigzag_intersect(lists, *reverse, &mut stats);
            let mut out = Vec::with_capacity(names.len());
            for nb in names {
                let Some(name) = DocumentName::decode(&nb) else {
                    return Err(FirestoreError::Internal("corrupt index entry".into()));
                };
                out.push((dir.key(&nb), name, None));
            }
            out
        }
    };

    // Cursor, offset, limit.
    let mut iter: Box<dyn Iterator<Item = (Key, DocumentName, Option<Document>)>> =
        Box::new(name_keys.into_iter());
    if let Some(after) = &query.start_after {
        let after = after.clone();
        let mut seen = false;
        iter = Box::new(iter.skip_while(move |(_, n, _)| {
            if seen {
                return false;
            }
            if *n == after {
                seen = true;
            }
            true
        }));
    }
    let iter = iter.skip(query.offset);
    let mut limited: Vec<(Key, DocumentName, Option<Document>)> = match query.limit {
        Some(l) => iter.take(l).collect(),
        None => iter.collect(),
    };
    // Per-RPC work cap: truncate and report the resume point.
    let mut resume_after = None;
    if limited.len() > work_limit {
        limited.truncate(work_limit);
        resume_after = limited.last().map(|(_, n, _)| n.clone());
    }

    let mut documents = Vec::with_capacity(limited.len());
    for (key, name, prefetched) in limited {
        let doc = match prefetched {
            Some(d) => Some(d),
            None => fetch_document(db, &mut access, &key, &name, &mut stats)?,
        };
        // An entry without a document would indicate index corruption; the
        // write path keeps them strongly consistent, so treat it as fatal.
        let Some(mut doc) = doc else {
            return Err(FirestoreError::Internal(format!(
                "dangling index entry for {name}"
            )));
        };
        if let Some(projection) = &query.projection {
            doc.fields.retain(|k, _| projection.iter().any(|p| p == k));
        }
        stats.bytes_returned += doc.approx_size();
        documents.push(doc);
    }

    Ok(QueryResult {
        documents,
        stats,
        resume_after,
    })
}

/// Count the documents matching `query` without fetching them (the COUNT
/// aggregation of paper §VIII): index entries are scanned and intersected
/// exactly like a normal execution, but the `Entities` lookups are skipped.
/// Respects the query's offset/limit window.
pub fn count(
    db: &SpannerDatabase,
    dir: spanner::database::DirectoryId,
    plan: &Plan,
    query: &Query,
    ts: Timestamp,
) -> FirestoreResult<(usize, QueryStats)> {
    let mut stats = QueryStats::default();
    let mut access = ReadAccess::Snapshot(ts);
    let total = match plan {
        Plan::PrimaryScan { .. } => {
            let range = collection_range(dir, query);
            let rows = db.snapshot_scan(ENTITIES, &range, ts, usize::MAX)?;
            stats.entries_scanned += rows.len();
            let want_segments = query.collection.segments().len() + 1;
            rows.iter()
                .filter(|(k, _)| {
                    DocumentName::decode(&k.as_slice()[4..])
                        .is_some_and(|n| n.segments().len() == want_segments)
                })
                .count()
        }
        Plan::IndexScans { scans, reverse } => {
            let mut lists = Vec::with_capacity(scans.len());
            for s in scans {
                lists.push(scan_postings(
                    db,
                    &mut access,
                    s,
                    *reverse,
                    usize::MAX,
                    &mut stats,
                )?);
            }
            zigzag_intersect(lists, *reverse, &mut stats).len()
        }
    };
    let windowed = total
        .saturating_sub(query.offset)
        .min(query.limit.unwrap_or(usize::MAX));
    Ok((windowed, stats))
}

/// The Entities-table key range of a query's collection.
pub fn collection_range(dir: spanner::database::DirectoryId, query: &Query) -> KeyRange {
    let prefix = dir.key(&query.collection.encode_prefix());
    KeyRange::prefix(&prefix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_range_without_bounds_covers_prefix() {
        let spec = ScanSpec {
            index: crate::index::IndexId(3),
            prefix: vec![1, 2, 3],
            lower: None,
            upper: None,
        };
        let r = scan_range(&spec);
        assert!(r.contains(&Key::from(vec![1, 2, 3, 9, 9])));
        assert!(!r.contains(&Key::from(vec![1, 2, 4])));
    }

    #[test]
    fn scan_range_bounds() {
        use crate::planner::SuffixBound;
        let mk = |lower: Option<(u8, bool)>, upper: Option<(u8, bool)>| ScanSpec {
            index: crate::index::IndexId(0),
            prefix: vec![7],
            lower: lower.map(|(b, inclusive)| SuffixBound {
                value_bytes: vec![b],
                inclusive,
            }),
            upper: upper.map(|(b, inclusive)| SuffixBound {
                value_bytes: vec![b],
                inclusive,
            }),
        };
        // > 5 (exclusive lower): entries with value byte 5 excluded.
        let r = scan_range(&mk(Some((5, false)), None));
        assert!(!r.contains(&Key::from(vec![7, 5, 200])));
        assert!(r.contains(&Key::from(vec![7, 6, 0])));
        // >= 5: included.
        let r = scan_range(&mk(Some((5, true)), None));
        assert!(r.contains(&Key::from(vec![7, 5, 0])));
        // < 9: value 9 excluded.
        let r = scan_range(&mk(None, Some((9, false))));
        assert!(r.contains(&Key::from(vec![7, 8, 255])));
        assert!(!r.contains(&Key::from(vec![7, 9, 0])));
        // <= 9: value 9 included, 10 excluded.
        let r = scan_range(&mk(None, Some((9, true))));
        assert!(r.contains(&Key::from(vec![7, 9, 77])));
        assert!(!r.contains(&Key::from(vec![7, 10])));
    }

    #[test]
    fn zigzag_intersects_sorted_lists() {
        let mk = |suffixes: &[&[u8]]| {
            suffixes
                .iter()
                .map(|s| Posting {
                    suffix: s.to_vec(),
                    name_bytes: Bytes::copy_from_slice(s),
                })
                .collect::<Vec<_>>()
        };
        let mut stats = QueryStats::default();
        let a = mk(&[b"a", b"c", b"e", b"g"]);
        let b = mk(&[b"b", b"c", b"d", b"g", b"h"]);
        let out = zigzag_intersect(vec![a, b], false, &mut stats);
        let got: Vec<&[u8]> = out.iter().map(|b| b.as_ref()).collect();
        assert_eq!(got, vec![b"c".as_ref(), b"g".as_ref()]);
        assert!(stats.seeks > 0);
    }

    #[test]
    fn zigzag_reverse_order() {
        let mk = |suffixes: &[&[u8]]| {
            suffixes
                .iter()
                .map(|s| Posting {
                    suffix: s.to_vec(),
                    name_bytes: Bytes::copy_from_slice(s),
                })
                .collect::<Vec<_>>()
        };
        let mut stats = QueryStats::default();
        // Reverse-scanned lists arrive in descending order.
        let a = mk(&[b"g", b"e", b"c", b"a"]);
        let b = mk(&[b"h", b"g", b"d", b"c"]);
        let out = zigzag_intersect(vec![a, b], true, &mut stats);
        let got: Vec<&[u8]> = out.iter().map(|b| b.as_ref()).collect();
        assert_eq!(got, vec![b"g".as_ref(), b"c".as_ref()]);
    }

    #[test]
    fn zigzag_single_list_passthrough() {
        let mut stats = QueryStats::default();
        let list = vec![Posting {
            suffix: b"x".to_vec(),
            name_bytes: Bytes::from_static(b"x"),
        }];
        let out = zigzag_intersect(vec![list], false, &mut stats);
        assert_eq!(out.len(), 1);
        assert_eq!(stats.seeks, 0);
    }

    #[test]
    fn zigzag_empty_inputs() {
        let mut stats = QueryStats::default();
        assert!(zigzag_intersect(vec![], false, &mut stats).is_empty());
        let empty: Vec<Posting> = vec![];
        let nonempty = vec![Posting {
            suffix: b"a".to_vec(),
            name_bytes: Bytes::from_static(b"a"),
        }];
        assert!(zigzag_intersect(vec![empty, nonempty], false, &mut stats).is_empty());
    }
}
