//! The query model.
//!
//! "Both modes support the same query features: projections, predicate
//! comparisons with a constant, conjunctions, orders, limits, offsets. A
//! query can have at most one inequality predicate, which must match the
//! first sort order. These restrictions allow Firestore's queries to be
//! directly satisfied from its secondary indexes." (§III-C)

use crate::document::Value;
use crate::encoding::Direction;
use crate::error::{FirestoreError, FirestoreResult};
use crate::path::{CollectionPath, DocumentName};

/// The comparison operators supported by predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterOp {
    /// Equality with a constant.
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Array membership (`array-contains`).
    ArrayContains,
    /// Disjunctive equality (`in`): the field equals any element of the
    /// filter's array constant. Served as a union of equality index scans
    /// (one arm per element) merged in suffix order, so results stay in
    /// query order without in-memory sorting.
    In,
}

impl FilterOp {
    /// Whether this operator is an inequality (range) operator.
    pub fn is_inequality(&self) -> bool {
        matches!(
            self,
            FilterOp::Lt | FilterOp::Le | FilterOp::Gt | FilterOp::Ge
        )
    }
}

/// One predicate: `field op constant`.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldFilter {
    /// Dot-separated field path.
    pub field: String,
    /// Operator.
    pub op: FilterOp,
    /// The constant.
    pub value: Value,
}

/// A query over a single collection.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// The collection scanned.
    pub collection: CollectionPath,
    /// Conjunction of predicates.
    pub filters: Vec<FieldFilter>,
    /// Explicit sort orders.
    pub order_by: Vec<(String, Direction)>,
    /// Maximum results.
    pub limit: Option<usize>,
    /// Results skipped before returning.
    pub offset: usize,
    /// If set, only these fields are returned (projection).
    pub projection: Option<Vec<String>>,
    /// Resume cursor: return only documents after this name in result
    /// order. Supports the paper's "resuming a partially-executed query"
    /// (§IV-C); exact for name-ordered queries.
    pub start_after: Option<DocumentName>,
}

impl Query {
    /// A query returning every document of `collection`.
    pub fn collection(collection: CollectionPath) -> Query {
        Query {
            collection,
            filters: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: 0,
            projection: None,
            start_after: None,
        }
    }

    /// Parse the collection path and build a query.
    pub fn parse(path: &str) -> FirestoreResult<Query> {
        CollectionPath::parse(path)
            .map(Query::collection)
            .map_err(|e| FirestoreError::InvalidArgument(e.to_string()))
    }

    /// Add a predicate.
    pub fn filter(
        mut self,
        field: impl Into<String>,
        op: FilterOp,
        value: impl Into<Value>,
    ) -> Query {
        self.filters.push(FieldFilter {
            field: field.into(),
            op,
            value: value.into(),
        });
        self
    }

    /// Add a sort order.
    pub fn order_by(mut self, field: impl Into<String>, direction: Direction) -> Query {
        self.order_by.push((field.into(), direction));
        self
    }

    /// Limit the result count.
    pub fn limit(mut self, n: usize) -> Query {
        self.limit = Some(n);
        self
    }

    /// Skip the first `n` results.
    pub fn offset(mut self, n: usize) -> Query {
        self.offset = n;
        self
    }

    /// Project to the given fields.
    pub fn select(mut self, fields: impl IntoIterator<Item = impl Into<String>>) -> Query {
        self.projection = Some(fields.into_iter().map(Into::into).collect());
        self
    }

    /// Resume after the given document.
    pub fn start_after(mut self, name: DocumentName) -> Query {
        self.start_after = Some(name);
        self
    }

    /// The same query with limit/offset/cursor removed. Real-time query
    /// views are seeded with the *unwindowed* result set so a document
    /// leaving a limited window can be backfilled from below without a
    /// requery (the Frontend over-fetches, the view applies the window).
    pub fn without_window(&self) -> Query {
        Query {
            limit: None,
            offset: 0,
            start_after: None,
            ..self.clone()
        }
    }

    /// The equality-like filters (Eq and ArrayContains).
    pub fn equality_filters(&self) -> Vec<&FieldFilter> {
        self.filters
            .iter()
            .filter(|f| !f.op.is_inequality())
            .collect()
    }

    /// The inequality filters (all must be on one field).
    pub fn inequality_filters(&self) -> Vec<&FieldFilter> {
        self.filters
            .iter()
            .filter(|f| f.op.is_inequality())
            .collect()
    }

    /// Validate the query's structural restrictions and return the
    /// *effective* sort orders: the explicit orders, preceded by the
    /// inequality field if not explicitly first, and always followed by the
    /// document name as the final tiebreak.
    ///
    /// Errors mirror production Firestore's validation.
    pub fn validate(&self) -> FirestoreResult<Vec<(String, Direction)>> {
        let inequalities = self.inequality_filters();
        let ineq_field: Option<&str> = match inequalities.as_slice() {
            [] => None,
            fs => {
                let field = fs[0].field.as_str();
                if fs.iter().any(|f| f.field != field) {
                    return Err(FirestoreError::InvalidArgument(
                        "a query can have at most one inequality field".into(),
                    ));
                }
                Some(field)
            }
        };
        // Multiple array-contains are disallowed (one index entry list per
        // query), matching production.
        if self
            .filters
            .iter()
            .filter(|f| f.op == FilterOp::ArrayContains)
            .count()
            > 1
        {
            return Err(FirestoreError::InvalidArgument(
                "at most one array-contains filter is allowed".into(),
            ));
        }
        // At most one `in` (a single disjunction per query, matching
        // production), with a non-empty array constant of at most 10
        // elements.
        let ins: Vec<&FieldFilter> = self.filters.iter().filter(|f| f.op == FilterOp::In).collect();
        if ins.len() > 1 {
            return Err(FirestoreError::InvalidArgument(
                "at most one `in` filter is allowed".into(),
            ));
        }
        if let Some(f) = ins.first() {
            match &f.value {
                Value::Array(items) if items.is_empty() => {
                    return Err(FirestoreError::InvalidArgument(
                        "`in` requires a non-empty array of candidate values".into(),
                    ));
                }
                Value::Array(items) if items.len() > 10 => {
                    return Err(FirestoreError::InvalidArgument(
                        "`in` supports at most 10 candidate values".into(),
                    ));
                }
                Value::Array(_) => {}
                _ => {
                    return Err(FirestoreError::InvalidArgument(
                        "`in` requires an array of candidate values".into(),
                    ));
                }
            }
        }
        let mut orders = self.order_by.clone();
        if let Some(field) = ineq_field {
            match orders.first() {
                None => orders.insert(0, (field.to_string(), Direction::Asc)),
                Some((first, _)) if first == field => {}
                Some((first, _)) => {
                    return Err(FirestoreError::InvalidArgument(format!(
                        "inequality on `{field}` must match the first sort order (got `{first}`)"
                    )));
                }
            }
        }
        // An equality on an order-by field makes the order redundant but is
        // legal; duplicate order fields are not.
        let mut seen = std::collections::HashSet::new();
        for (f, _) in &orders {
            if !seen.insert(f.clone()) {
                return Err(FirestoreError::InvalidArgument(format!(
                    "duplicate order-by field `{f}`"
                )));
            }
        }
        // Final implicit tiebreak: document name, in the direction of the
        // last explicit order (ascending when none).
        let name_dir = orders.last().map(|(_, d)| *d).unwrap_or(Direction::Asc);
        orders.push(("__name__".to_string(), name_dir));
        Ok(orders)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Query {
        Query::parse("/restaurants").unwrap()
    }

    #[test]
    fn builder_accumulates() {
        let q = base()
            .filter("city", FilterOp::Eq, "SF")
            .filter("numRatings", FilterOp::Gt, 2i64)
            .order_by("numRatings", Direction::Asc)
            .limit(10)
            .offset(5)
            .select(["city"]);
        assert_eq!(q.filters.len(), 2);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, 5);
        assert_eq!(q.projection.as_deref(), Some(&["city".to_string()][..]));
    }

    #[test]
    fn validate_simple_query() {
        let orders = base()
            .filter("city", FilterOp::Eq, "SF")
            .validate()
            .unwrap();
        assert_eq!(orders, vec![("__name__".to_string(), Direction::Asc)]);
    }

    #[test]
    fn inequality_implies_leading_order() {
        let orders = base()
            .filter("numRatings", FilterOp::Gt, 2i64)
            .validate()
            .unwrap();
        assert_eq!(orders[0], ("numRatings".to_string(), Direction::Asc));
        assert_eq!(orders[1].0, "__name__");
    }

    #[test]
    fn two_inequality_fields_rejected() {
        let err = base()
            .filter("a", FilterOp::Gt, 1i64)
            .filter("b", FilterOp::Lt, 2i64)
            .validate()
            .unwrap_err();
        assert!(matches!(err, FirestoreError::InvalidArgument(_)));
    }

    #[test]
    fn range_on_one_field_allowed() {
        // a > 1 AND a <= 5 is a single-field range: fine.
        let orders = base()
            .filter("a", FilterOp::Gt, 1i64)
            .filter("a", FilterOp::Le, 5i64)
            .validate()
            .unwrap();
        assert_eq!(orders[0].0, "a");
    }

    #[test]
    fn inequality_must_match_first_order() {
        let err = base()
            .filter("numRatings", FilterOp::Gt, 2i64)
            .order_by("avgRating", Direction::Desc)
            .validate()
            .unwrap_err();
        assert!(matches!(err, FirestoreError::InvalidArgument(_)));
        // Matching first order is fine (the paper's example query).
        let ok = base()
            .filter("numRatings", FilterOp::Gt, 2i64)
            .order_by("numRatings", Direction::Desc)
            .order_by("avgRating", Direction::Desc)
            .validate()
            .unwrap();
        assert_eq!(ok[0], ("numRatings".to_string(), Direction::Desc));
    }

    #[test]
    fn name_tiebreak_follows_last_order_direction() {
        let orders = base()
            .order_by("avgRating", Direction::Desc)
            .validate()
            .unwrap();
        assert_eq!(
            orders.last().unwrap(),
            &("__name__".to_string(), Direction::Desc)
        );
    }

    #[test]
    fn duplicate_order_fields_rejected() {
        let err = base()
            .order_by("a", Direction::Asc)
            .order_by("a", Direction::Desc)
            .validate()
            .unwrap_err();
        assert!(matches!(err, FirestoreError::InvalidArgument(_)));
    }

    #[test]
    fn multiple_array_contains_rejected() {
        let err = base()
            .filter("tags", FilterOp::ArrayContains, "a")
            .filter("tags", FilterOp::ArrayContains, "b")
            .validate()
            .unwrap_err();
        assert!(matches!(err, FirestoreError::InvalidArgument(_)));
    }

    #[test]
    fn in_filter_validation() {
        // Well-formed `in` passes.
        base()
            .filter(
                "city",
                FilterOp::In,
                Value::Array(vec![Value::from("SF"), Value::from("NY")]),
            )
            .validate()
            .unwrap();
        // Non-array constant rejected.
        assert!(base()
            .filter("city", FilterOp::In, "SF")
            .validate()
            .is_err());
        // Empty array rejected.
        assert!(base()
            .filter("city", FilterOp::In, Value::Array(vec![]))
            .validate()
            .is_err());
        // More than 10 candidates rejected.
        let big = Value::Array((0..11).map(Value::Int).collect());
        assert!(base().filter("n", FilterOp::In, big).validate().is_err());
        // Two `in` filters rejected.
        assert!(base()
            .filter("a", FilterOp::In, Value::Array(vec![Value::Int(1)]))
            .filter("b", FilterOp::In, Value::Array(vec![Value::Int(2)]))
            .validate()
            .is_err());
    }

    #[test]
    fn filter_classification() {
        let q = base()
            .filter("city", FilterOp::Eq, "SF")
            .filter("n", FilterOp::Ge, 1i64)
            .filter("tags", FilterOp::ArrayContains, "bbq");
        assert_eq!(q.equality_filters().len(), 2);
        assert_eq!(q.inequality_filters().len(), 1);
    }
}
