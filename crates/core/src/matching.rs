//! Query ↔ document matching and result ordering, shared by the Query
//! Matcher (real-time, §IV-D4) and the client SDK's local query engine
//! (§IV-E).
//!
//! Semantics are defined *by the index encoding*: a document matches a
//! query iff the index executor would return it, and result order is the
//! byte order of the encoded sort tuple. Using the same encoding guarantees
//! the Real-time Cache and the local cache agree with the Backend.

use crate::document::{Document, Value};
use crate::encoding::{class_tags, encode_value, encoded, Direction};
use crate::query::{FilterOp, Query};

/// Whether `doc` is in `query`'s result set (ignoring limit/offset, which
/// are applied to the ordered set by the caller).
pub fn matches_document(query: &Query, doc: &Document) -> bool {
    // Direct membership in the queried collection.
    if !query.collection.contains(&doc.name) {
        return false;
    }
    // Every filter must hold.
    for f in &query.filters {
        let Some(value) = doc.get(&f.field) else {
            return false;
        };
        let ok = match f.op {
            FilterOp::Eq => encoded(value) == encoded(&f.value),
            FilterOp::ArrayContains => match value {
                Value::Array(items) => {
                    let want = encoded(&f.value);
                    items.iter().any(|i| encoded(i) == want)
                }
                _ => false,
            },
            FilterOp::In => match &f.value {
                Value::Array(candidates) => {
                    let have = encoded(value);
                    candidates.iter().any(|c| encoded(c) == have)
                }
                _ => false,
            },
            FilterOp::Lt | FilterOp::Le | FilterOp::Gt | FilterOp::Ge => {
                // Inequalities only match values of the same type class.
                if class_tags(value) != class_tags(&f.value) {
                    false
                } else {
                    let a = encoded(value);
                    let b = encoded(&f.value);
                    match f.op {
                        FilterOp::Lt => a < b,
                        FilterOp::Le => a <= b,
                        FilterOp::Gt => a > b,
                        FilterOp::Ge => a >= b,
                        _ => unreachable!(),
                    }
                }
            }
        };
        if !ok {
            return false;
        }
    }
    // Every order-by field must be present (documents without the field
    // have no index entry and are not returned).
    match query.validate() {
        Ok(orders) => orders
            .iter()
            .filter(|(f, _)| f != "__name__")
            .all(|(f, _)| doc.get(f).is_some()),
        Err(_) => false,
    }
}

/// The byte key that sorts `doc` within `query`'s results: the encoded sort
/// tuple followed by the (direction-adjusted) encoded name. Returns `None`
/// for invalid queries or documents missing a sort field.
pub fn order_key(query: &Query, doc: &Document) -> Option<Vec<u8>> {
    let orders = query.validate().ok()?;
    let mut key = Vec::new();
    for (field, dir) in &orders {
        if field == "__name__" {
            let name_enc = doc.name.encode();
            match dir {
                Direction::Asc => key.extend_from_slice(&name_enc),
                Direction::Desc => key.extend(name_enc.iter().map(|b| !b)),
            }
        } else {
            let v = doc.get(field)?;
            encode_value(v, *dir, &mut key);
        }
    }
    Some(key)
}

/// Apply offset/limit to an ordered result list (a helper shared by views).
pub fn apply_window<T>(items: Vec<T>, offset: usize, limit: Option<usize>) -> Vec<T> {
    let it = items.into_iter().skip(offset);
    match limit {
        Some(l) => it.take(l).collect(),
        None => it.collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::DocumentName;

    fn doc(path: &str, fields: Vec<(&'static str, Value)>) -> Document {
        Document::new(DocumentName::parse(path).unwrap(), fields)
    }

    fn q(path: &str) -> Query {
        Query::parse(path).unwrap()
    }

    #[test]
    fn collection_membership() {
        let d = doc("/restaurants/one", vec![("city", Value::from("SF"))]);
        assert!(matches_document(&q("/restaurants"), &d));
        assert!(!matches_document(&q("/reviews"), &d));
        // Sub-collection documents are not direct members.
        let sub = doc("/restaurants/one/ratings/2", vec![("r", Value::Int(5))]);
        assert!(!matches_document(&q("/restaurants"), &sub));
        assert!(matches_document(&q("/restaurants/one/ratings"), &sub));
    }

    #[test]
    fn equality_crosses_int_double() {
        let d = doc("/c/d", vec![("n", Value::Double(3.0))]);
        assert!(matches_document(
            &q("/c").filter("n", FilterOp::Eq, 3i64),
            &d
        ));
        assert!(!matches_document(
            &q("/c").filter("n", FilterOp::Eq, 4i64),
            &d
        ));
    }

    #[test]
    fn inequality_respects_type_class() {
        let num = doc("/c/a", vec![("n", Value::Int(5))]);
        let string = doc("/c/b", vec![("n", Value::from("zzz"))]);
        let gt = q("/c").filter("n", FilterOp::Gt, 2i64);
        assert!(matches_document(&gt, &num));
        assert!(
            !matches_document(&gt, &string),
            "inequalities never match other types (strings sort above numbers but are excluded)"
        );
    }

    #[test]
    fn array_contains() {
        let d = doc(
            "/c/d",
            vec![(
                "tags",
                Value::Array(vec![Value::from("a"), Value::from("b")]),
            )],
        );
        assert!(matches_document(
            &q("/c").filter("tags", FilterOp::ArrayContains, "a"),
            &d
        ));
        assert!(!matches_document(
            &q("/c").filter("tags", FilterOp::ArrayContains, "z"),
            &d
        ));
        // array-contains on a non-array never matches.
        let scalar = doc("/c/d", vec![("tags", Value::from("a"))]);
        assert!(!matches_document(
            &q("/c").filter("tags", FilterOp::ArrayContains, "a"),
            &scalar
        ));
    }

    #[test]
    fn in_matches_any_candidate() {
        let d = doc("/c/d", vec![("city", Value::from("SF"))]);
        let hit = q("/c").filter(
            "city",
            FilterOp::In,
            Value::Array(vec![Value::from("NY"), Value::from("SF")]),
        );
        assert!(matches_document(&hit, &d));
        let miss = q("/c").filter(
            "city",
            FilterOp::In,
            Value::Array(vec![Value::from("NY"), Value::from("LA")]),
        );
        assert!(!matches_document(&miss, &d));
        // Int/double unify inside `in` like plain equality.
        let num = doc("/c/d", vec![("n", Value::Double(3.0))]);
        let q_in = q("/c").filter("n", FilterOp::In, Value::Array(vec![Value::Int(3)]));
        assert!(matches_document(&q_in, &num));
    }

    #[test]
    fn missing_order_field_excludes() {
        let with = doc("/c/a", vec![("r", Value::Int(1))]);
        let without = doc("/c/b", vec![("other", Value::Int(1))]);
        let ordered = q("/c").order_by("r", Direction::Desc);
        assert!(matches_document(&ordered, &with));
        assert!(!matches_document(&ordered, &without));
    }

    #[test]
    fn order_key_sorts_like_query() {
        let query = q("/c").order_by("r", Direction::Desc);
        let hi = doc("/c/z", vec![("r", Value::Int(9))]);
        let lo = doc("/c/a", vec![("r", Value::Int(1))]);
        let kh = order_key(&query, &hi).unwrap();
        let kl = order_key(&query, &lo).unwrap();
        assert!(kh < kl, "desc: higher rating sorts first");
        // Name tiebreak (desc direction follows the last order).
        let a = doc("/c/a", vec![("r", Value::Int(5))]);
        let b = doc("/c/b", vec![("r", Value::Int(5))]);
        let ka = order_key(&query, &a).unwrap();
        let kb = order_key(&query, &b).unwrap();
        assert!(kb < ka, "name tiebreak is desc too");
    }

    #[test]
    fn order_key_none_for_missing_field() {
        let query = q("/c").order_by("r", Direction::Asc);
        let d = doc("/c/a", vec![("other", Value::Int(1))]);
        assert!(order_key(&query, &d).is_none());
    }

    #[test]
    fn window_application() {
        let items = vec![1, 2, 3, 4, 5];
        assert_eq!(apply_window(items.clone(), 0, Some(2)), vec![1, 2]);
        assert_eq!(apply_window(items.clone(), 2, Some(2)), vec![3, 4]);
        assert_eq!(apply_window(items.clone(), 4, None), vec![5]);
        assert_eq!(apply_window(items, 9, Some(2)), Vec::<i32>::new());
    }
}
