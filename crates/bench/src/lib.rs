#![warn(missing_docs)]

//! Shared utilities for the figure-regeneration binaries.
//!
//! Every binary under `src/bin/` reproduces one table or figure of the
//! paper's evaluation section (see `EXPERIMENTS.md` at the workspace root),
//! printing the series to stdout and writing CSV under
//! `target/experiments/`.

pub mod gate;
pub mod report;

use simkit::stats::LatencySeries;
use std::fs;
use std::path::PathBuf;

/// The directory experiment CSVs are written to.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Write an experiment's CSV output.
pub fn write_csv(name: &str, header: &str, body: &str) {
    let path = experiments_dir().join(name);
    let contents = format!("{header}\n{body}");
    fs::write(&path, contents).expect("write experiment CSV");
    println!("(wrote {})", path.display());
}

/// Print and persist a set of latency series for one figure.
pub fn emit_figure(figure: &str, title: &str, series: &[LatencySeries]) {
    println!("=== {figure}: {title} ===");
    let mut body = String::new();
    for s in series {
        println!("{}", s.to_table());
        body.push_str(&s.to_csv());
    }
    write_csv(&format!("{figure}.csv"), "series,x,p50_ms,p99_ms", &body);
}

/// Standard experiment banner with the reproduction caveat.
pub fn banner(figure: &str, paper_setup: &str) {
    println!("# Reproducing {figure}");
    println!("# Paper setup: {paper_setup}");
    println!(
        "# This run executes the full Firestore engine in-process with modeled\n\
         # network/replication latency; compare *shapes*, not absolute numbers.\n"
    );
}
