//! Figure 6: production-statistics boxplots.
//!
//! The paper presents median-normalized boxplots of per-database storage
//! size, QPS, and active real-time queries across all active Firestore
//! databases, each spanning ~9 orders of magnitude. We synthesize a fleet
//! from heavy-tailed distributions (see `workloads::production`), *host a
//! sample of it on the real multi-tenant service* to validate that the
//! metering pipeline reports what the generator intended, and print the
//! same normalized five-number summaries the paper plots.

use bench::{banner, write_csv};
use firestore_core::database::doc;
use firestore_core::{Caller, Value, Write};
use server::{FirestoreService, ServiceOptions};
use simkit::stats::Boxplot;
use simkit::{Duration, SimClock, SimRng};
use workloads::production::{fleet_boxplots, spike_factor, synthesize_fleet, FleetConfig};

fn print_boxplot(name: &str, b: &Boxplot) {
    let n = b.normalized();
    println!(
        "{name:>22}: min={:.2e} p1={:.2e} q1={:.2e} median=1 q3={:.2e} p99={:.2e} max={:.2e}  ({:.1} OoM median→max)",
        n.min, n.p1, n.q1, n.q3, n.p99, n.max, b.orders_of_magnitude()
    );
}

fn main() {
    banner(
        "Figure 6",
        "variance across all active production databases, normalized to the median",
    );
    let mut rng = SimRng::new(6);
    let cfg = FleetConfig {
        databases: 50_000,
        ..FleetConfig::default()
    };
    let fleet = synthesize_fleet(&cfg, &mut rng);
    let plots = fleet_boxplots(&fleet);

    println!("synthesized fleet of {} databases:", cfg.databases);
    print_boxplot("storage size", &plots.storage);
    print_boxplot("QPS", &plots.qps);
    print_boxplot("active realtime queries", &plots.active_queries);

    // Daily spike check: "active query count ... grows twenty-fold within
    // minutes" for many databases each day.
    let spikes = (0..fleet.len())
        .filter(|_| spike_factor(&mut rng) > 15.0)
        .count();
    println!("\ndatabases with a >15x realtime-query spike today: {spikes}");

    // Host a sample of the fleet on the actual multi-tenant service and
    // verify the billing meters observe the same spread.
    let clock = SimClock::new();
    clock.advance(Duration::from_secs(1));
    let svc = FirestoreService::new(clock, ServiceOptions::default());
    let sample = 200;
    let mut meter_storage = simkit::stats::Samples::new();
    for (i, profile) in fleet.iter().take(sample).enumerate() {
        let id = format!("db{i:05}");
        let db = svc.create_database(&id);
        // Store documents approximating the profile's storage (compressed
        // 1e6:1 so the in-process sample stays laptop-sized).
        let docs = ((profile.storage_bytes / 1e6).ceil() as usize).clamp(1, 200);
        for d in 0..docs {
            db.commit_writes(
                vec![Write::set(
                    doc(&format!("/data/d{d:05}")),
                    [("payload", Value::Str("x".repeat(64)))],
                )],
                &Caller::Service,
            )
            .unwrap();
        }
        let (_, bytes) = db.storage_stats().unwrap();
        svc.billing.set_storage(&id, bytes as u64);
        meter_storage.push(bytes as f64);
    }
    let hosted = meter_storage.boxplot().unwrap();
    println!(
        "\nhosted sample of {sample} dbs on one multi-tenant service: storage spread {:.1} OoM (metered)",
        hosted.orders_of_magnitude()
    );

    let body = format!(
        "storage,{},{},{},{},{}\nqps,{},{},{},{},{}\nactive_queries,{},{},{},{},{}\n",
        plots.storage.p1,
        plots.storage.q1,
        plots.storage.median,
        plots.storage.q3,
        plots.storage.p99,
        plots.qps.p1,
        plots.qps.q1,
        plots.qps.median,
        plots.qps.q3,
        plots.qps.p99,
        plots.active_queries.p1,
        plots.active_queries.q1,
        plots.active_queries.median,
        plots.active_queries.q3,
        plots.active_queries.p99,
    );
    write_csv(
        "fig6_production_stats.csv",
        "metric,p1,q1,median,q3,p99",
        &body,
    );
}
