//! Query Matcher fan-out trajectory: per-change matching cost across
//! registered-query populations (§V).
//!
//! The paper's matching claim is that the Query Matcher routes each
//! document change to the affected listeners without consulting every
//! registered query. This harness registers 10³ / 10⁴ / 10⁵ random
//! queries in the decision-tree matcher (`firestore_core::matchtree`) and
//! in a naive per-change linear scan, then probes both with the same
//! random document changes. The tree's per-change cost must grow far
//! slower than the query population — the linear baseline is the shape
//! the tree replaced.
//!
//! Output: `BENCH_matcher_scaling.json` at the workspace root (CI uploads
//! it as an artifact; see EXPERIMENTS.md for regeneration instructions).
//!
//! Set `MATCHER_SCALING_SMOKE=1` (or pass `--smoke`) for a seconds-long
//! run with smaller populations, used by CI's smoke job.

use bench::banner;
use firestore_core::database::doc;
use firestore_core::matching::matches_document;
use firestore_core::{
    Direction, Document, DocumentChange, FilterOp, MatcherTree, Query, Value,
};
use simkit::SimRng;
use spanner::database::DirectoryId;
use std::time::Instant;

/// Collections the registered queries watch; changes land in the same set,
/// so every probe descends into a populated bucket.
const COLLS: usize = 32;
/// Equality/range values are drawn from this domain.
const DOMAIN: i64 = 1024;
const DIR: DirectoryId = DirectoryId(7);
/// Changes probed against the tree per population size.
const TREE_PROBES: usize = 2_000;
/// Changes probed against the linear baseline (it is the slow side).
const LINEAR_PROBES: usize = 100;

struct Row {
    queries: usize,
    engine: &'static str,
    probes: usize,
    wall_ns_per_change: u128,
    candidates_per_change: f64,
    tokens_per_change: f64,
    shapes: usize,
}

/// A registered query: mostly single-value equalities, some narrow
/// intervals — the shapes the decision tree dispatches on. (A production
/// mix also has rare unindexable conjunctions; those degrade to the
/// bucket's scan list and are covered by the differential suite.)
fn gen_query(rng: &mut SimRng) -> Query {
    let coll = format!("c{:02}", rng.gen_range(COLLS as u64));
    let q = Query::parse(&format!("/{coll}")).unwrap();
    if rng.gen_bool(0.8) {
        q.filter("v", FilterOp::Eq, Value::Int(rng.gen_range(DOMAIN as u64) as i64))
    } else {
        let lo = rng.gen_range(DOMAIN as u64) as i64;
        q.filter("v", FilterOp::Ge, Value::Int(lo))
            .filter("v", FilterOp::Lt, Value::Int(lo + 4))
            .order_by("v", Direction::Asc)
    }
}

fn gen_change(rng: &mut SimRng) -> DocumentChange {
    let coll = format!("c{:02}", rng.gen_range(COLLS as u64));
    let name = doc(&format!("/{coll}/d{:04}", rng.gen_range(10_000)));
    let fields = [
        ("v".to_string(), Value::Int(rng.gen_range(DOMAIN as u64) as i64)),
        ("w".to_string(), Value::Int(rng.gen_range(8) as i64)),
    ];
    DocumentChange {
        name: name.clone(),
        old: None,
        new: Some(Document::new(name, fields)),
    }
}

fn linear_scan(regs: &[(usize, Query)], change: &DocumentChange) -> Vec<usize> {
    let docs: Vec<&Document> = change.old.iter().chain(change.new.iter()).collect();
    regs.iter()
        .filter(|(_, q)| docs.iter().any(|d| matches_document(q, d)))
        .map(|(t, _)| *t)
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("MATCHER_SCALING_SMOKE").is_ok_and(|v| v != "0");
    let sizes: &[usize] = if smoke {
        &[200, 1_000, 5_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    banner(
        "matcher scaling trajectory",
        "per-change match cost over 10^3/10^4/10^5 registered queries; \
         tree cost must not track the population",
    );
    if smoke {
        println!("(smoke mode: sizes {sizes:?})");
    }

    let mut rows: Vec<Row> = Vec::new();
    for &n in sizes {
        let mut rng = SimRng::new(0xF1DE_0000 + n as u64);
        // Register the same population in both engines. The unwindowed
        // query is what both engines match on.
        let regs: Vec<(usize, Query)> = (0..n)
            .map(|t| (t, gen_query(&mut rng).without_window()))
            .collect();
        let mut tree: MatcherTree<usize> = MatcherTree::new(1);
        let t = Instant::now();
        for (token, q) in &regs {
            tree.register(*token, &[0], DIR, q);
        }
        eprintln!(
            "{n} queries registered in {:.2}s ({} shapes)",
            t.elapsed().as_secs_f64(),
            tree.shape_count()
        );
        tree.debug_validate().expect("matcher invariants");

        let changes: Vec<DocumentChange> =
            (0..TREE_PROBES).map(|_| gen_change(&mut rng)).collect();

        // Correctness spot-check before timing: both engines agree.
        for change in changes.iter().take(50) {
            let mut got = tree.match_change(0, DIR, change);
            got.sort_unstable();
            assert_eq!(got, linear_scan(&regs, change), "engines diverged");
        }

        let before = tree.stats();
        let t = Instant::now();
        let mut tokens = 0usize;
        for change in &changes {
            tokens += tree.match_change(0, DIR, change).len();
        }
        let tree_wall = t.elapsed().as_nanos();
        let after = tree.stats();
        let probed = (after.changes - before.changes) as f64;
        rows.push(Row {
            queries: n,
            engine: "tree",
            probes: TREE_PROBES,
            wall_ns_per_change: tree_wall / TREE_PROBES as u128,
            candidates_per_change: (after.candidates - before.candidates) as f64 / probed,
            tokens_per_change: tokens as f64 / TREE_PROBES as f64,
            shapes: tree.shape_count(),
        });

        let t = Instant::now();
        let mut tokens = 0usize;
        let mut candidates = 0usize;
        for change in changes.iter().take(LINEAR_PROBES) {
            candidates += regs.len();
            tokens += linear_scan(&regs, change).len();
        }
        let linear_wall = t.elapsed().as_nanos();
        rows.push(Row {
            queries: n,
            engine: "linear",
            probes: LINEAR_PROBES,
            wall_ns_per_change: linear_wall / LINEAR_PROBES as u128,
            candidates_per_change: candidates as f64 / LINEAR_PROBES as f64,
            tokens_per_change: tokens as f64 / LINEAR_PROBES as f64,
            shapes: regs.len(),
        });
    }

    println!(
        "{:>9} {:>7} {:>7} {:>12} {:>12} {:>10} {:>8}",
        "queries", "engine", "probes", "ns/change", "cand/change", "tok/change", "shapes"
    );
    for r in &rows {
        println!(
            "{:>9} {:>7} {:>7} {:>12} {:>12.2} {:>10.3} {:>8}",
            r.queries, r.engine, r.probes, r.wall_ns_per_change, r.candidates_per_change,
            r.tokens_per_change, r.shapes
        );
    }

    // The trajectory checks: across a `growth`× larger population the
    // tree's per-change cost must grow by a small fraction of that, and at
    // the top size it must beat the linear scan by a wide margin.
    let tree_small = rows.first().expect("rows");
    let tree_large = &rows[rows.len() - 2];
    let linear_large = rows.last().expect("rows");
    assert_eq!(tree_small.engine, "tree");
    assert_eq!(tree_large.engine, "tree");
    assert_eq!(linear_large.engine, "linear");
    let growth = (tree_large.queries / tree_small.queries) as u128;
    // Floor the base cost at 1µs so machine noise on a ~100ns probe can't
    // fail the ratio check.
    let base = tree_small.wall_ns_per_change.max(1_000);
    assert!(
        tree_large.wall_ns_per_change < base * growth / 3,
        "tree per-change cost grew {}ns -> {}ns over a {growth}x population — not sublinear",
        tree_small.wall_ns_per_change,
        tree_large.wall_ns_per_change
    );
    assert!(
        linear_large.wall_ns_per_change > tree_large.wall_ns_per_change * 10,
        "tree ({}, ns/change) must be >10x faster than the linear scan ({}) at {} queries",
        tree_large.wall_ns_per_change,
        linear_large.wall_ns_per_change,
        tree_large.queries
    );
    println!(
        "\nsublinear: tree {}ns -> {}ns per change over {growth}x more queries \
         (linear baseline: {}ns)",
        tree_small.wall_ns_per_change, tree_large.wall_ns_per_change,
        linear_large.wall_ns_per_change
    );

    let mut report = bench::report::BenchReport::new("matcher_scaling")
        .field("smoke", smoke.to_string())
        .field(
            "sizes",
            format!(
                "[{}]",
                sizes.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(", ")
            ),
        );
    for r in &rows {
        report.row(format!(
            "{{\"queries\": {}, \"engine\": \"{}\", \"probes\": {}, \
             \"wall_ns_per_change\": {}, \"candidates_per_change\": {:.2}, \
             \"tokens_per_change\": {:.3}, \"shapes\": {}}}",
            r.queries, r.engine, r.probes, r.wall_ns_per_change, r.candidates_per_change,
            r.tokens_per_change, r.shapes
        ));
    }
    report.write();
}
