//! Figure 11: isolation via fair CPU scheduling.
//!
//! Paper setup: a small fixed-capacity Firestore environment (no
//! auto-scaling) with fair CPU scheduling enabled or disabled. A "culprit"
//! database sends CPU-intensive, inefficiently-indexed queries linearly
//! ramping to 500 QPS; a "bystander" sends a steady 100 QPS of single-
//! document fetches. Expected shape (log-scale y): without fairness the
//! bystander's p50/p99 explode by orders of magnitude once capacity is
//! exhausted halfway through; with fair sharing only a small p99 bump
//! remains.

use bench::{banner, emit_figure, write_csv};
use firestore_core::Caller;
use server::fairshare::SchedulingMode;
use server::{FirestoreService, ServiceOptions};
use simkit::stats::{LatencySeries, Samples};
use simkit::{Duration, SimClock, SimRng, Timestamp};
use workloads::driver::LoadDriver;
use workloads::isolation::{
    bystander_doc, culprit_qps_at, culprit_query, setup_bystander, setup_culprit, BYSTANDER,
    CULPRIT,
};

const DURATION_S: f64 = 200.0;
const BUCKET_S: u64 = 10;
const BYSTANDER_QPS: f64 = 100.0;
const CULPRIT_PEAK_QPS: f64 = 500.0;
const CULPRIT_DOCS: usize = 2_000;
const BYSTANDER_DOCS: usize = 200;

struct RunResult {
    /// (bucket end second, p50 ms, p99 ms) of bystander latency.
    timeline: Vec<(f64, f64, f64)>,
}

fn run(mode: SchedulingMode) -> RunResult {
    let clock = SimClock::new();
    clock.advance(Duration::from_secs(1));
    let svc = FirestoreService::new(
        clock,
        ServiceOptions {
            backend_tasks: 2,
            autoscaling: false, // fixed capacity, per the paper
            scheduling: mode,
            ..ServiceOptions::default()
        },
    );
    svc.create_database(CULPRIT);
    svc.create_database(BYSTANDER);
    let mut rng = SimRng::new(11);
    setup_culprit(&svc.database(CULPRIT).unwrap(), CULPRIT_DOCS, &mut rng).unwrap();
    setup_bystander(&svc.database(BYSTANDER).unwrap(), BYSTANDER_DOCS).unwrap();

    // Calibrate CPU costs from real executions.
    let culprit_db = svc.database(CULPRIT).unwrap();
    let (culprit_cpu, bystander_cpu) = {
        let q = culprit_query(&mut rng);
        let result = culprit_db
            .run_query(&q, firestore_core::Consistency::Strong, &Caller::Service)
            .unwrap();
        let c = svc.cost_model().query_cost(
            result.stats.entries_examined + result.stats.seeks * 4,
            result.stats.docs_fetched,
            result.stats.bytes_returned,
        );
        let b = svc.cost_model().query_cost(1, 1, 256);
        (c, b)
    };
    eprintln!(
        "  [{:?}] culprit query cpu={culprit_cpu}, bystander fetch cpu={bystander_cpu}",
        mode
    );

    let start = svc.clock().now();
    let mut driver = LoadDriver::new(&svc);
    let mut timeline = Vec::new();
    let mut bucket = Samples::new();
    let mut next_real_bystander = 0u64;

    for sec in 0..DURATION_S as u64 {
        let t0 = start + Duration::from_secs(sec);
        let t1 = start + Duration::from_secs(sec + 1);
        // Gather this second's arrivals from both databases, in time order.
        let mut arrivals: Vec<(Timestamp, bool)> = Vec::new(); // (at, is_culprit)
        let culprit_qps = culprit_qps_at(sec as f64, DURATION_S, CULPRIT_PEAK_QPS);
        for (qps, is_culprit) in [(culprit_qps, true), (BYSTANDER_QPS, false)] {
            if qps <= 0.0 {
                continue;
            }
            let mut t = 0.0;
            loop {
                t += rng.exponential(1.0 / qps);
                if t >= 1.0 {
                    break;
                }
                arrivals.push((t0 + Duration::from_millis_f64(t * 1000.0), is_culprit));
            }
        }
        arrivals.sort_by_key(|(at, _)| *at);
        let mut cursor = t0;
        for (at, is_culprit) in arrivals {
            if at > cursor {
                driver.advance(cursor, at, Duration::from_millis(1));
                cursor = at;
            }
            if is_culprit {
                let cpu = culprit_cpu.mul_f64(rng.lognormal(0.0, 0.2));
                let storage = svc.latency_model().spanner_read(200, &mut rng);
                driver.submit(CULPRIT, true, cpu, storage, at);
            } else {
                next_real_bystander += 1;
                if next_real_bystander.is_multiple_of(200) {
                    // Keep a trickle of real engine executions flowing.
                    let name = bystander_doc(BYSTANDER_DOCS, &mut rng);
                    let _ = svc.get_document(BYSTANDER, &name, &Caller::Service, &mut rng);
                }
                let cpu = bystander_cpu.mul_f64(rng.lognormal(0.0, 0.2));
                let storage = svc.latency_model().spanner_read(1, &mut rng);
                driver.submit(BYSTANDER, true, cpu, storage, at);
            }
        }
        driver.advance(cursor, t1, Duration::from_millis(1));
        for (db, _, _, latency) in driver.outcomes.drain(..) {
            if db == BYSTANDER {
                bucket.push_duration(latency);
            }
        }
        if (sec + 1) % BUCKET_S == 0 {
            let p50 = bucket.percentile(0.5).unwrap_or(f64::NAN);
            let p99 = bucket.percentile(0.99).unwrap_or(f64::NAN);
            timeline.push(((sec + 1) as f64, p50, p99));
            bucket = Samples::new();
        }
    }
    RunResult { timeline }
}

fn main() {
    banner(
        "Figure 11",
        "fixed-capacity environment; culprit ramps inefficient queries 0→500 QPS, bystander runs 100 QPS of single-document fetches; fair CPU scheduling on vs off",
    );
    let fair = run(SchedulingMode::FairShare);
    let fifo = run(SchedulingMode::Fifo);

    let mut fair_series = LatencySeries::new("bystander latency, fair scheduling");
    fair_series.points = fair.timeline.clone();
    let mut fifo_series = LatencySeries::new("bystander latency, no fairness (FIFO)");
    fifo_series.points = fifo.timeline.clone();
    emit_figure(
        "fig11_isolation",
        "bystander p50/p99 over time while the culprit ramps (log y in the paper)",
        &[fair_series, fifo_series],
    );

    // Headline comparison at the end of the ramp.
    let tail = |r: &RunResult| {
        r.timeline
            .iter()
            .rev()
            .take(5)
            .map(|p| p.2)
            .fold(0.0, f64::max)
    };
    let fair_tail = tail(&fair);
    let fifo_tail = tail(&fifo);
    println!(
        "\npeak bystander p99 during saturation: fair={fair_tail:.1}ms, fifo={fifo_tail:.1}ms ({}x degradation without fairness)",
        (fifo_tail / fair_tail).round()
    );
    write_csv(
        "fig11_summary.csv",
        "mode,peak_bystander_p99_ms",
        &format!("fair,{fair_tail}\nfifo,{fifo_tail}\n"),
    );
}
