//! Ablations of the design choices DESIGN.md calls out.
//!
//! A1 — query plans: zig-zag join of single-field indexes vs a dedicated
//!      composite index vs a naive primary scan, for the same conjunction
//!      (§IV-D3: slow index joins "are remediated by defining additional
//!      indexes").
//! A2 — commit wait: write latency as a function of the TrueTime
//!      uncertainty ε (the external-consistency tax the Real-time Cache's
//!      ordering relies on).
//! A3 — index-everything: per-write index entries and commit cost with
//!      automatic indexing of all fields vs with exemptions (§III-B's
//!      write-amplification trade).
//! A4 — frontend auto-scaling: the Fig 9 fan-out point at 10 000 listeners
//!      with the auto-scaler enabled vs frozen (what "flat" costs).

use bench::{banner, write_csv};
use firestore_core::database::{create_index_blocking, doc};
use firestore_core::index::IndexedField;
use firestore_core::{
    Caller, Consistency, Direction, FilterOp, FirestoreDatabase, Query, Value, Write,
};
use server::{FirestoreService, ServiceOptions};
use simkit::{Duration, SimClock, SimRng, TrueTime};
use spanner::SpannerDatabase;

fn fresh_db() -> FirestoreDatabase {
    let clock = SimClock::new();
    clock.advance(Duration::from_secs(1));
    FirestoreDatabase::create_default(SpannerDatabase::new(clock))
}

fn seed_restaurants(db: &FirestoreDatabase, n: usize, rng: &mut SimRng) {
    for i in 0..n {
        let w = Write::set(
            doc(&format!("/restaurants/r{i:05}")),
            [
                (
                    "city",
                    Value::from(if rng.gen_bool(0.5) { "SF" } else { "NY" }),
                ),
                (
                    "type",
                    Value::from(if rng.gen_bool(0.5) { "BBQ" } else { "Deli" }),
                ),
                ("avgRating", Value::Double(rng.gen_range(50) as f64 / 10.0)),
            ],
        );
        db.commit_writes(vec![w], &Caller::Service).unwrap();
    }
}

fn ablation_query_plans() -> String {
    println!("\n--- A1: zig-zag join vs composite index vs primary scan ---");
    let mut rng = SimRng::new(21);
    let db = fresh_db();
    seed_restaurants(&db, 4_000, &mut rng);
    let conjunction = Query::parse("/restaurants")
        .unwrap()
        .filter("city", FilterOp::Eq, "SF")
        .filter("type", FilterOp::Eq, "BBQ")
        .order_by("avgRating", Direction::Desc);

    // Plan 1: zig-zag join of two partial composites.
    create_index_blocking(
        &db,
        "restaurants",
        vec![IndexedField::asc("city"), IndexedField::desc("avgRating")],
    )
    .unwrap();
    create_index_blocking(
        &db,
        "restaurants",
        vec![IndexedField::asc("type"), IndexedField::desc("avgRating")],
    )
    .unwrap();
    let zigzag = db
        .run_query(&conjunction, Consistency::Strong, &Caller::Service)
        .unwrap();

    // Plan 2: one dedicated composite covering the whole query.
    create_index_blocking(
        &db,
        "restaurants",
        vec![
            IndexedField::asc("city"),
            IndexedField::asc("type"),
            IndexedField::desc("avgRating"),
        ],
    )
    .unwrap();
    let composite = db
        .run_query(&conjunction, Consistency::Strong, &Caller::Service)
        .unwrap();

    // Plan 3: what a naive engine would do — scan the collection and filter
    // in memory (Firestore never does this; measured via the primary scan
    // plus client-side matching).
    let all = db
        .run_query(
            &Query::parse("/restaurants").unwrap(),
            Consistency::Strong,
            &Caller::Service,
        )
        .unwrap();
    let naive_matches = all
        .documents
        .iter()
        .filter(|d| firestore_core::matching::matches_document(&conjunction, d))
        .count();

    assert_eq!(zigzag.documents.len(), composite.documents.len());
    assert_eq!(zigzag.documents.len(), naive_matches);
    println!(
        "{:>28} {:>10} {:>8} {:>8}",
        "plan", "entries", "seeks", "results"
    );
    println!(
        "{:>28} {:>10} {:>8} {:>8}",
        "zig-zag (2 indexes)",
        zigzag.stats.entries_examined,
        zigzag.stats.seeks,
        zigzag.documents.len()
    );
    println!(
        "{:>28} {:>10} {:>8} {:>8}",
        "dedicated composite",
        composite.stats.entries_examined,
        composite.stats.seeks,
        composite.documents.len()
    );
    println!(
        "{:>28} {:>10} {:>8} {:>8}",
        "naive scan + filter", all.stats.entries_examined, 0, naive_matches
    );
    println!(
        "→ the composite scans {:.1}x fewer entries than the zig-zag and {:.1}x fewer than a scan",
        zigzag.stats.entries_examined as f64 / composite.stats.entries_examined.max(1) as f64,
        all.stats.entries_examined as f64 / composite.stats.entries_examined.max(1) as f64,
    );
    format!(
        "zigzag,{},{}\ncomposite,{},{}\nnaive,{},{}\n",
        zigzag.stats.entries_examined,
        zigzag.stats.seeks,
        composite.stats.entries_examined,
        composite.stats.seeks,
        all.stats.entries_examined,
        0
    )
}

fn ablation_commit_wait() -> String {
    println!("\n--- A2: commit latency vs TrueTime uncertainty ε ---");
    println!("{:>10} {:>14}", "ε (ms)", "mean wait (ms)");
    let mut body = String::new();
    for eps_ms in [0u64, 1, 2, 4, 8] {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        let tt = TrueTime::new(clock.clone(), Duration::from_millis(eps_ms));
        // Measure the commit-wait component directly: assign then wait.
        let mut total = Duration::ZERO;
        let n = 200;
        for _ in 0..n {
            clock.advance(Duration::from_millis(10)); // writes 100/s apart
            let ts = tt
                .assign_commit_timestamp(simkit::Timestamp::ZERO, simkit::Timestamp::MAX)
                .unwrap();
            total += tt.commit_wait(ts);
        }
        let mean = total.as_millis_f64() / n as f64;
        println!("{eps_ms:>10} {mean:>14.3}");
        body.push_str(&format!("{eps_ms},{mean}\n"));
    }
    println!("→ commit wait ≈ 2ε (assign at now+ε, wait until earliest > ts): the price of external consistency");
    body
}

fn ablation_index_everything() -> String {
    println!("\n--- A3: automatic index-everything vs exemptions ---");
    let mut rng = SimRng::new(23);
    let wide_fields = |rng: &mut SimRng| {
        (0..20)
            .map(|i| (format!("f{i:02}"), Value::Int(rng.gen_range(1000) as i64)))
            .collect::<Vec<_>>()
    };
    // All fields indexed.
    let db_all = fresh_db();
    let w = Write {
        op: firestore_core::WriteOp::Set {
            name: doc("/logs/1"),
            fields: wide_fields(&mut rng).into_iter().collect(),
        },
        precondition: firestore_core::Precondition::None,
    };
    let full = db_all.commit_writes(vec![w], &Caller::Service).unwrap();

    // All but two fields exempted (§III-B's remedy for hot or unqueried
    // fields).
    let db_exempt = fresh_db();
    for i in 2..20 {
        db_exempt.add_index_exemption("logs", &format!("f{i:02}"));
    }
    let w = Write {
        op: firestore_core::WriteOp::Set {
            name: doc("/logs/1"),
            fields: wide_fields(&mut rng).into_iter().collect(),
        },
        precondition: firestore_core::Precondition::None,
    };
    let exempted = db_exempt.commit_writes(vec![w], &Caller::Service).unwrap();

    println!(
        "{:>24} {:>14} {:>14}",
        "configuration", "index entries", "2PC participants"
    );
    println!(
        "{:>24} {:>14} {:>14}",
        "index everything", full.stats.index_entries_touched, full.stats.participants
    );
    println!(
        "{:>24} {:>14} {:>14}",
        "18/20 fields exempt", exempted.stats.index_entries_touched, exempted.stats.participants
    );
    println!(
        "→ exemptions cut write amplification {:.0}x; queries on exempted fields now fail",
        full.stats.index_entries_touched as f64
            / exempted.stats.index_entries_touched.max(1) as f64
    );
    // And indeed the trade-off: the query fails.
    let q = Query::parse("/logs")
        .unwrap()
        .filter("f10", FilterOp::Eq, 1i64);
    assert!(db_exempt
        .run_query(&q, Consistency::Strong, &Caller::Service)
        .is_err());
    format!(
        "index_everything,{}\nexempted,{}\n",
        full.stats.index_entries_touched, exempted.stats.index_entries_touched
    )
}

fn ablation_autoscaling() -> String {
    println!("\n--- A4: Fig 9's 10k-listener point with vs without frontend auto-scaling ---");
    let run = |autoscaling: bool| {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        let svc = FirestoreService::new(
            clock,
            ServiceOptions {
                autoscaling,
                ..ServiceOptions::default()
            },
        );
        svc.create_database("scores");
        let mut fixture = workloads::fanout::FanoutFixture::new(&svc, "scores", 10_000).unwrap();
        for _ in 0..30 {
            svc.clock().advance(Duration::from_secs(10));
            svc.autoscale_frontends(svc.clock().now());
        }
        let mut rng = SimRng::new(29);
        let mut worst = Duration::ZERO;
        for _ in 0..10 {
            svc.clock().advance(Duration::from_secs(1));
            fixture.write_once(&svc).unwrap();
            svc.realtime().tick();
            fixture.poll_all();
            let delays = svc.fanout_delays(10_000, &mut rng);
            worst = worst.max(delays.into_iter().fold(Duration::ZERO, Duration::max));
        }
        (svc.frontend_tasks(), worst)
    };
    let (tasks_on, worst_on) = run(true);
    let (tasks_off, worst_off) = run(false);
    println!(
        "{:>18} {:>10} {:>22}",
        "autoscaling", "tasks", "worst notify (ms)"
    );
    println!(
        "{:>18} {:>10} {:>22.3}",
        "enabled",
        tasks_on,
        worst_on.as_millis_f64()
    );
    println!(
        "{:>18} {:>10} {:>22.3}",
        "frozen",
        tasks_off,
        worst_off.as_millis_f64()
    );
    println!("→ the paper's flat Fig 9 curve is bought by the pool scaling out");
    format!(
        "enabled,{},{}\nfrozen,{},{}\n",
        tasks_on,
        worst_on.as_millis_f64(),
        tasks_off,
        worst_off.as_millis_f64()
    )
}

fn main() {
    banner(
        "Ablations",
        "A/B studies of the design choices: query plans, commit wait, index-everything, auto-scaling",
    );
    let a1 = ablation_query_plans();
    let a2 = ablation_commit_wait();
    let a3 = ablation_index_everything();
    let a4 = ablation_autoscaling();
    write_csv("ablation_query_plans.csv", "plan,entries,seeks", &a1);
    write_csv("ablation_commit_wait.csv", "epsilon_ms,mean_wait_ms", &a2);
    write_csv("ablation_index_everything.csv", "config,index_entries", &a3);
    write_csv("ablation_autoscaling.csv", "mode,tasks,worst_ms", &a4);
}
