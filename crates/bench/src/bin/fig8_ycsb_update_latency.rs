//! Figure 8: YCSB update latency (p50/p99) vs target throughput, workloads
//! A and B.
//!
//! Same runs as Figure 7, reporting the update-side latency. Expected
//! shape: updates sit well above reads (quorum commit + commit wait); p50
//! flat; p99 grows with throughput, most on the write-heavy workload A
//! whose rapid ramp outpaces auto-scaling and load-based splitting.

use bench::{banner, emit_figure};
use server::{FirestoreService, ServiceOptions};
use simkit::stats::LatencySeries;
use simkit::{Duration, SimClock};
use workloads::driver::{run_ycsb, DriverConfig};
use workloads::ycsb::{YcsbConfig, YcsbGenerator, YcsbWorkload};

fn main() {
    banner(
        "Figure 8 (update half of the YCSB scalability study)",
        "YCSB A (50/50) and B (95/5), uniform keys, 900B docs, nam5 multi-region",
    );
    let qps_sweep = [500.0, 1000.0, 2000.0, 4000.0, 8000.0];
    let mut all_series = Vec::new();
    for workload in [YcsbWorkload::A, YcsbWorkload::B] {
        let mut p_series = LatencySeries::new(format!("workload {} update", workload.label()));
        for &qps in &qps_sweep {
            let clock = SimClock::new();
            clock.advance(Duration::from_secs(1));
            let svc = FirestoreService::new(
                clock,
                ServiceOptions {
                    backend_tasks: 4,
                    ..ServiceOptions::default()
                },
            );
            svc.create_database("ycsb");
            let generator = YcsbGenerator::new(YcsbConfig {
                workload,
                records: 5_000,
                field_size: 900,
            });
            let mut rng = simkit::SimRng::new(8);
            generator
                .load(&svc.database("ycsb").unwrap(), &mut rng)
                .unwrap();
            let report = run_ycsb(
                &svc,
                "ycsb",
                &generator,
                &DriverConfig {
                    target_qps: qps,
                    duration: Duration::from_secs(600),
                    warmup: Duration::from_secs(300),
                    sample_every: 200,
                    ..DriverConfig::default()
                },
            );
            p_series.add_point_hist(qps, &report.update_latency);
            eprintln!(
                "  workload {} @ {qps:>6} QPS: {} update samples",
                workload.label(),
                report.update_latency.total()
            );
        }
        all_series.push(p_series);
    }
    emit_figure(
        "fig8_ycsb_update_latency",
        "YCSB update latency vs target QPS",
        &all_series,
    );
}
