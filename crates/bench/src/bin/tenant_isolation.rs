//! Tenant-fleet isolation benchmark (E13): the Fig 11 property at fleet
//! scale.
//!
//! Runs the tenant-fleet chaos workload twice — a quiet fleet of conforming
//! databases, then the same fleet with four adversarial tenants (hotspot
//! hammer, unbounded-fanout batch scanner, free-tier quota edge, 500/50/5-
//! violating ramp) — and reports the conforming majority's latency profile
//! side by side with the adversaries' throttle/shed accounting. The paper's
//! §IV-C promise is the headline row: conforming p99 under abuse within a
//! small band of the quiet baseline while every rejection lands on an
//! adversary.
//!
//! `FLEET_SEED=<u64>` overrides the workload seed; `--smoke` shrinks the
//! fleet for a fast CI sanity pass.

use bench::banner;
use bench::report::BenchReport;
use workloads::fleet::{run_fleet, FleetConfig, FleetReport, FleetWorld};

fn fleet_seed() -> u64 {
    match std::env::var("FLEET_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("FLEET_SEED must be a u64, got {s:?}")),
        Err(_) => FleetConfig::default().seed,
    }
}

fn config(adversaries: bool, smoke: bool) -> FleetConfig {
    let base = if smoke {
        FleetConfig {
            quiet_databases: 25,
            tracked: 2,
            duration: simkit::Duration::from_secs(6),
            warmup: simkit::Duration::from_secs(2),
            hammer_qps: 400.0,
            scan_qps: 40.0,
            ramp_peak_qps: 400.0,
            free_qps: 20.0,
            backend_tasks: 1,
            shed_watermark: 64,
            ..FleetConfig::default()
        }
    } else {
        FleetConfig::default()
    };
    FleetConfig {
        seed: fleet_seed(),
        adversaries,
        ..base
    }
}

fn quantile_ms(report: &FleetReport, conforming: bool, q: f64) -> f64 {
    let hist = if conforming {
        &report.conforming_latency
    } else {
        &report.adversary_latency
    };
    hist.quantile(q).unwrap_or(0.0)
}

fn throttle_json(report: &FleetReport) -> String {
    let mut reasons: Vec<(&str, u64)> = report
        .throttle_counts
        .iter()
        .map(|(k, v)| (*k, *v))
        .collect();
    reasons.sort();
    let items: Vec<String> = reasons
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();
    format!("{{{}}}", items.join(", "))
}

fn row(run: &str, report: &FleetReport) -> String {
    format!(
        "{{\"run\": \"{run}\", \
          \"conforming_p50_ms\": {:.3}, \"conforming_p99_ms\": {:.3}, \
          \"conforming_samples\": {}, \
          \"adversary_p50_ms\": {:.3}, \"adversary_p99_ms\": {:.3}, \
          \"operations\": {}, \"admitted\": {}, \"rejected\": {}, \
          \"rejected_conforming\": {}, \"crashes\": {}, \
          \"pending_after_quiesce\": {}, \"throttles\": {}}}",
        quantile_ms(report, true, 0.50),
        quantile_ms(report, true, 0.99),
        report.conforming_latency.total(),
        quantile_ms(report, false, 0.50),
        quantile_ms(report, false, 0.99),
        report.operations,
        report.admitted,
        report.rejected,
        report.rejected_conforming,
        report.crashes,
        report.pending_after_quiesce,
        throttle_json(report),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("FLEET_SMOKE").is_ok_and(|v| v != "0");
    let seed = fleet_seed();
    banner(
        "tenant-fleet isolation (E13)",
        "conforming-majority latency under adversarial tenants vs a quiet fleet baseline",
    );
    if smoke {
        eprintln!("(smoke mode: reduced fleet)");
    }
    eprintln!("seed {seed:#x}");

    let quiet_cfg = config(false, smoke);
    let quiet_world = FleetWorld::build(&quiet_cfg);
    let quiet = run_fleet(&quiet_world, &quiet_cfg);

    let abuse_cfg = config(true, smoke);
    let abuse_world = FleetWorld::build(&abuse_cfg);
    let abuse = run_fleet(&abuse_world, &abuse_cfg);

    println!(
        "{:>7} {:>12} {:>12} {:>10} {:>10} {:>12}",
        "run", "conf p50 ms", "conf p99 ms", "admitted", "rejected", "rej conform"
    );
    for (name, report) in [("quiet", &quiet), ("abusive", &abuse)] {
        println!(
            "{:>7} {:>12.3} {:>12.3} {:>10} {:>10} {:>12}",
            name,
            quantile_ms(report, true, 0.50),
            quantile_ms(report, true, 0.99),
            report.admitted,
            report.rejected,
            report.rejected_conforming,
        );
    }
    let quiet_p99 = quantile_ms(&quiet, true, 0.99);
    let abuse_p99 = quantile_ms(&abuse, true, 0.99);
    println!(
        "isolation band: abusive conforming p99 = {:.2}x quiet baseline",
        if quiet_p99 > 0.0 {
            abuse_p99 / quiet_p99
        } else {
            0.0
        }
    );
    println!("abusive-run throttles: {}", throttle_json(&abuse));

    let mut report = BenchReport::new("tenant_isolation")
        .field("smoke", smoke.to_string())
        .field("seed", seed.to_string())
        .field(
            "databases",
            abuse_world.svc.database_count().to_string(),
        )
        .field("p99_ratio", {
            if quiet_p99 > 0.0 {
                format!("{:.4}", abuse_p99 / quiet_p99)
            } else {
                "null".to_string()
            }
        })
        .metrics(&abuse_world.svc.obs().metrics.snapshot());
    report.row(row("quiet", &quiet));
    report.row(row("abusive", &abuse));
    report.write();
}
