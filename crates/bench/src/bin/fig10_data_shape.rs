//! Figure 10: commit latency vs document size and vs indexed-field count.
//!
//! Paper setup (§V-B2): 10 QPS of single-document commits against a
//! pre-populated database (so commits span multiple tablets). Sweep 1:
//! a single string field from 10 KB to almost 1 MiB. Sweep 2: 1 → 500
//! numeric fields (index entries grow linearly, and with them the number of
//! 2PC participant groups). Expected shape: latency grows roughly linearly
//! in both document size and field count.

use bench::{banner, emit_figure};
use firestore_core::database::doc;
use firestore_core::Caller;
use server::{FirestoreService, ServiceOptions};
use simkit::stats::{LatencySeries, Samples};
use simkit::{Duration, SimClock, SimRng};
use workloads::datashape::{
    field_sweep, many_fields_write, prepopulate, single_large_field_write, size_sweep,
};

const COMMITS_PER_POINT: usize = 120; // 10 QPS × 12s measurement window

fn setup() -> (FirestoreService, SimRng) {
    let clock = SimClock::new();
    clock.advance(Duration::from_secs(1));
    let svc = FirestoreService::new(clock, ServiceOptions::default());
    svc.create_database("shapes");
    let mut rng = SimRng::new(10);
    let db = svc.database("shapes").unwrap();
    prepopulate(&db, 300, &mut rng).unwrap();
    // The paper pre-loads enough data that "commits spanned multiple
    // tablets": split the IndexEntries key space by index id (one tablet
    // per ~8 automatic indexes) and the Entities space at the directory.
    let dir = db.directory();
    let index_boundaries: Vec<spanner::Key> = (0..64u64)
        .map(|i| {
            spanner::Key::from(firestore_core::index::index_prefix(
                dir,
                firestore_core::IndexId(i * 8),
            ))
        })
        .collect();
    svc.spanner()
        .pre_split("IndexEntries", index_boundaries)
        .unwrap();
    // Keep load-based splitting active too.
    for _ in 0..5 {
        svc.clock().advance(Duration::from_secs(2));
        svc.spanner().maintain(simkit::Timestamp::ZERO);
    }
    (svc, rng)
}

fn main() {
    banner(
        "Figure 10",
        "10 QPS single-document commits; sweep document size 10KB→1MiB and field count 1→500",
    );

    // Sweep 1: document size.
    let (svc, mut rng) = setup();
    let mut size_series = LatencySeries::new("commit latency vs document size (KiB)");
    for &size in &size_sweep() {
        let mut lat = Samples::new();
        for i in 0..COMMITS_PER_POINT {
            svc.clock().advance(Duration::from_millis(100)); // 10 QPS
            let w = single_large_field_write(doc(&format!("/bigdocs/s{size}-{i}")), size);
            let (_, served) = svc
                .commit("shapes", vec![w], &Caller::Service, &mut rng)
                .unwrap();
            lat.push_duration(served.storage_latency + served.cpu_cost);
        }
        size_series.add_point(size as f64 / 1024.0, &mut lat);
        eprintln!("  doc size {:>5} KiB done", size / 1024);
    }

    // Sweep 2: indexed field count.
    let (svc, mut rng) = setup();
    let mut field_series = LatencySeries::new("commit latency vs indexed fields");
    for &fields in &field_sweep() {
        let mut lat = Samples::new();
        let mut participants = 0usize;
        for i in 0..COMMITS_PER_POINT {
            svc.clock().advance(Duration::from_millis(100));
            let w = many_fields_write(doc(&format!("/widedocs/f{fields}-{i}")), fields, &mut rng);
            let (result, served) = svc
                .commit("shapes", vec![w], &Caller::Service, &mut rng)
                .unwrap();
            participants = participants.max(result.stats.participants);
            lat.push_duration(served.storage_latency + served.cpu_cost);
        }
        field_series.add_point(fields as f64, &mut lat);
        eprintln!("  {fields:>3} fields done (up to {participants} 2PC participants)");
    }

    emit_figure(
        "fig10_data_shape",
        "commit latency vs document size (10a) and field count (10b)",
        &[size_series, field_series],
    );
    println!(
        "note: per §V-B2, N fields ≈ an array/map with N elements — index\n\
         flattening makes their write cost equivalent (see the index tests)."
    );
}
