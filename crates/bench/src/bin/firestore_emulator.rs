//! The standalone Firestore emulator (paper §I: "a standalone emulator
//! allows developers to safely experiment").
//!
//! An interactive REPL over the full engine — documents, queries, composite
//! indexes, security rules, real-time listeners, triggers and billing all
//! behave exactly as in the library, with no cloud anywhere.
//!
//! ```text
//! cargo run -p bench --bin firestore_emulator
//! > set /restaurants/one city="SF" rating=4.5
//! > get /restaurants/one
//! > query /restaurants where city == "SF" order rating desc limit 10
//! > listen /restaurants
//! > set /restaurants/two city="SF" rating=5
//! > poll
//! ```
//!
//! `help` lists every command. Also scriptable: `firestore_emulator < script.txt`.

use firestore_core::database::doc;
use firestore_core::{Caller, Consistency, Direction, FilterOp, FirestoreError, Query, Value};
use realtime::{Connection, ListenEvent, QueryId};
use rules::AuthContext;
use server::{FirestoreService, ServiceOptions};
use simkit::{Duration, SimClock};
use std::collections::HashMap;
use std::io::{BufRead, Write as _};

struct Emulator {
    service: FirestoreService,
    database: firestore_core::FirestoreDatabase,
    caller: Caller,
    conn: Connection,
    listeners: HashMap<String, QueryId>,
    rng: simkit::SimRng,
}

fn parse_value(token: &str) -> Result<Value, String> {
    if token == "null" {
        return Ok(Value::Null);
    }
    if token == "true" {
        return Ok(Value::Bool(true));
    }
    if token == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(stripped) = token.strip_prefix('"') {
        return Ok(Value::Str(stripped.trim_end_matches('"').to_string()));
    }
    if let Ok(i) = token.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = token.parse::<f64>() {
        return Ok(Value::Double(f));
    }
    // Bare words are strings, like the console's convenience parsing.
    Ok(Value::Str(token.to_string()))
}

fn parse_fields(tokens: &[&str]) -> Result<Vec<(String, Value)>, String> {
    tokens
        .iter()
        .map(|t| {
            let (k, v) = t
                .split_once('=')
                .ok_or_else(|| format!("expected field=value, got `{t}`"))?;
            Ok((k.to_string(), parse_value(v)?))
        })
        .collect()
}

fn parse_op(op: &str) -> Result<FilterOp, String> {
    match op {
        "==" | "=" => Ok(FilterOp::Eq),
        "<" => Ok(FilterOp::Lt),
        "<=" => Ok(FilterOp::Le),
        ">" => Ok(FilterOp::Gt),
        ">=" => Ok(FilterOp::Ge),
        "contains" => Ok(FilterOp::ArrayContains),
        other => Err(format!("unknown operator `{other}`")),
    }
}

fn parse_query(tokens: &[&str]) -> Result<Query, String> {
    let mut it = tokens.iter().peekable();
    let path = it.next().ok_or("query needs a collection path")?;
    let mut q = Query::parse(path).map_err(|e| e.to_string())?;
    while let Some(&tok) = it.next() {
        match tok {
            "where" => {
                let field = it.next().ok_or("where needs: field op value")?;
                let op = parse_op(it.next().ok_or("where needs an operator")?)?;
                let value = parse_value(it.next().ok_or("where needs a value")?)?;
                q = q.filter(*field, op, value);
            }
            "order" => {
                let field = it.next().ok_or("order needs a field")?;
                let dir = match it.peek() {
                    Some(&&"desc") => {
                        it.next();
                        Direction::Desc
                    }
                    Some(&&"asc") => {
                        it.next();
                        Direction::Asc
                    }
                    _ => Direction::Asc,
                };
                q = q.order_by(*field, dir);
            }
            "limit" => {
                let n: usize = it
                    .next()
                    .ok_or("limit needs a number")?
                    .parse()
                    .map_err(|_| "limit needs a number")?;
                q = q.limit(n);
            }
            "offset" => {
                let n: usize = it
                    .next()
                    .ok_or("offset needs a number")?
                    .parse()
                    .map_err(|_| "offset needs a number")?;
                q = q.offset(n);
            }
            other => return Err(format!("unknown query clause `{other}`")),
        }
    }
    Ok(q)
}

impl Emulator {
    fn new() -> Emulator {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        let service = FirestoreService::new(clock, ServiceOptions::default());
        let database = service.create_database("emulator");
        let conn = service.connect();
        Emulator {
            service,
            database,
            caller: Caller::Service,
            conn,
            listeners: HashMap::new(),
            rng: simkit::SimRng::new(0xE1),
        }
    }

    fn run_line(&mut self, line: &str) -> Result<String, String> {
        let tokens = tokenize(line);
        let tokens: Vec<&str> = tokens.iter().map(String::as_str).collect();
        let Some(&cmd) = tokens.first() else {
            return Ok(String::new());
        };
        let args = &tokens[1..];
        match cmd {
            "help" => Ok(HELP.to_string()),
            "set" | "create" | "update" => {
                let path = args.first().ok_or("set needs a document path")?;
                let fields = parse_fields(&args[1..])?;
                let name = doc(path);
                let w = match cmd {
                    "create" => firestore_core::Write::create(name, fields),
                    "update" => firestore_core::Write::update(name, fields),
                    _ => firestore_core::Write::set(name, fields),
                };
                let (result, served) = self
                    .service
                    .commit("emulator", vec![w], &self.caller, &mut self.rng)
                    .map_err(|e| e.to_string())?;
                self.service.realtime().tick();
                Ok(format!(
                    "committed at {}\nphases: {}",
                    result.commit_ts,
                    served.breakdown.render()
                ))
            }
            "delete" => {
                let path = args.first().ok_or("delete needs a document path")?;
                let (_, served) = self
                    .service
                    .commit(
                        "emulator",
                        vec![firestore_core::Write::delete(doc(path))],
                        &self.caller,
                        &mut self.rng,
                    )
                    .map_err(|e| e.to_string())?;
                self.service.realtime().tick();
                Ok(format!("deleted\nphases: {}", served.breakdown.render()))
            }
            "get" => {
                let path = args.first().ok_or("get needs a document path")?;
                let (d, served) = self
                    .service
                    .get_document("emulator", &doc(path), &self.caller, &mut self.rng)
                    .map_err(|e| e.to_string())?;
                let body = match d {
                    Some(d) => format!("{d}"),
                    None => "(not found)".to_string(),
                };
                Ok(format!("{body}\nphases: {}", served.breakdown.render()))
            }
            "query" => {
                let q = parse_query(args)?;
                match self
                    .service
                    .run_query("emulator", &q, &self.caller, &mut self.rng)
                {
                    Ok((result, served)) => {
                        let stats = served.query_stats.unwrap_or(result.stats);
                        let mut out = format!(
                            "{} result(s); stats: entries_examined={} entries_returned={} \
                             seeks={} docs_fetched={} bytes_returned={}\n",
                            result.documents.len(),
                            stats.entries_examined,
                            stats.entries_returned,
                            stats.seeks,
                            stats.docs_fetched,
                            stats.bytes_returned,
                        );
                        for d in &result.documents {
                            out.push_str(&format!("  {d}\n"));
                        }
                        out.push_str(&format!("phases: {}", served.breakdown.render()));
                        Ok(out)
                    }
                    Err(FirestoreError::MissingIndex { suggestion }) => Err(format!(
                        "missing index — create it with: index {suggestion}"
                    )),
                    Err(e) => Err(e.to_string()),
                }
            }
            "explain" => {
                // explain [analyze] <query...>
                let (analyze, rest) = match args.first() {
                    Some(&"analyze") => (true, &args[1..]),
                    _ => (false, args),
                };
                let q = parse_query(rest)?;
                let rendered = if analyze {
                    self.database
                        .explain_analyze(&q, Consistency::Strong, &self.caller)
                        .map(|(text, _)| text)
                } else {
                    self.database.explain(&q)
                };
                match rendered {
                    Ok(text) => Ok(text),
                    Err(FirestoreError::MissingIndex { suggestion }) => Err(format!(
                        "missing index — create it with: index {suggestion}"
                    )),
                    Err(e) => Err(e.to_string()),
                }
            }
            "metrics" => Ok(self.service.obs().metrics.snapshot().to_text()),
            "trace" => Ok(self.service.obs().tracer.render()),
            "profile" => {
                // profile [folded] — the weighted call tree over every span
                // so far, or the collapsed-stack (flamegraph) export.
                let profile = simkit::FoldedProfile::fold(
                    &self.service.obs().tracer.finished_since(0),
                );
                match args.first() {
                    Some(&"folded") => Ok(profile.collapsed()),
                    None => Ok(profile.render()),
                    Some(other) => Err(format!("unknown profile mode `{other}`")),
                }
            }
            "count" => {
                let q = parse_query(args)?;
                let (n, stats) = self
                    .database
                    .run_count(&q, Consistency::Strong, &self.caller)
                    .map_err(|e| e.to_string())?;
                Ok(format!(
                    "count = {n} ({} entries examined)",
                    stats.entries_examined
                ))
            }
            "index" => {
                // index <collection_id> field:asc field:desc ...
                let coll = args.first().ok_or("index needs a collection id")?;
                let mut fields = Vec::new();
                for spec in &args[1..] {
                    let (f, d) = spec.split_once(':').unwrap_or((*spec, "asc"));
                    fields.push(match d {
                        "desc" => firestore_core::index::IndexedField::desc(f),
                        _ => firestore_core::index::IndexedField::asc(f),
                    });
                }
                if fields.is_empty() {
                    return Err("index needs at least one field:dir".into());
                }
                let id =
                    firestore_core::database::create_index_blocking(&self.database, coll, fields)
                        .map_err(|e| e.to_string())?;
                Ok(format!("built composite index {id:?} on {coll}"))
            }
            "exempt" => {
                let coll = args.first().ok_or("exempt needs a collection id")?;
                let field = args.get(1).ok_or("exempt needs a field")?;
                self.database.add_index_exemption(coll, field);
                Ok(format!("{coll}.{field} exempted from automatic indexing"))
            }
            "listen" => {
                let q = parse_query(args)?;
                let key = args.join(" ");
                let qid = self
                    .service
                    .listen("emulator", &self.conn, q, &self.caller)
                    .map_err(|e| e.to_string())?;
                self.listeners.insert(key.clone(), qid);
                Ok(format!("listening: {key} (poll to receive snapshots)"))
            }
            "unlisten" => {
                let key = args.join(" ");
                match self.listeners.remove(&key) {
                    Some(qid) => {
                        self.conn.unlisten(qid);
                        Ok("unlistened".to_string())
                    }
                    None => Err(format!("no listener for `{key}`")),
                }
            }
            "poll" => {
                self.service.realtime().tick();
                let events = self.conn.poll();
                if events.is_empty() {
                    return Ok("(no events)".to_string());
                }
                let mut out = String::new();
                for e in events {
                    match e {
                        ListenEvent::Snapshot {
                            query,
                            at,
                            changes,
                            is_initial,
                        } => {
                            out.push_str(&format!(
                                "snapshot {query:?} at {at}{}:\n",
                                if is_initial { " (initial)" } else { "" }
                            ));
                            for c in changes {
                                out.push_str(&format!("  {:?}: {}\n", c.kind, c.doc));
                            }
                        }
                        ListenEvent::Reset { query, .. } => {
                            out.push_str(&format!("reset {query:?}: re-run the query\n"));
                        }
                    }
                }
                Ok(out)
            }
            "rules" => {
                // Inline rules until a lone `.` line are handled by the REPL
                // loop; `rules clear` drops them.
                if args.first() == Some(&"clear") {
                    self.database.clear_rules();
                    Ok("rules cleared (third-party access now denied)".to_string())
                } else {
                    Err("use `rules-begin` then lines then `.`, or `rules clear`".into())
                }
            }
            "auth" => match args.first() {
                None | Some(&"service") => {
                    self.caller = Caller::Service;
                    Ok("caller: privileged service".to_string())
                }
                Some(&"anon") => {
                    self.caller = Caller::EndUser(None);
                    Ok("caller: unauthenticated end user".to_string())
                }
                Some(uid) => {
                    self.caller = Caller::EndUser(Some(AuthContext::uid(*uid)));
                    Ok(format!("caller: end user `{uid}`"))
                }
            },
            "stats" => {
                let (docs, bytes) = self.database.storage_stats().map_err(|e| e.to_string())?;
                let rt = self.service.realtime().stats();
                let usage = self.service.billing.usage("emulator");
                Ok(format!(
                    "documents: {docs} ({bytes} bytes)\nactive listeners: {}\nsnapshots sent: {}\nbilled reads/writes/deletes: {}/{}/{}",
                    rt.active_queries, rt.snapshots, usage.total_reads(), usage.writes, usage.deletes
                ))
            }
            other => Err(format!("unknown command `{other}` (try `help`)")),
        }
    }
}

const HELP: &str = "\
commands:
  set    /coll/doc field=value ...     write (create or replace)
  create /coll/doc field=value ...     write that must not overwrite
  update /coll/doc field=value ...     write that must exist
  delete /coll/doc                     delete
  get    /coll/doc                     point read
  query  /coll [where f op v]... [order f asc|desc]... [limit n] [offset n]
  count  /coll [where ...]             COUNT aggregation
  explain [analyze] /coll [where ...]  render the chosen query plan
                                       (analyze: also execute and join stats)
  index  <collection> f:asc g:desc     build a composite index (with backfill)
  exempt <collection> <field>          exclude a field from auto-indexing
  listen /coll [where ...]             register a real-time query
  unlisten /coll [where ...]           stop it
  poll                                 drain real-time snapshots
  rules-begin ... .                    install security rules (end with a lone .)
  rules clear                          remove rules
  auth <uid>|anon|service              switch the caller identity
  stats                                storage / realtime / billing counters
  metrics                              observability metrics snapshot
  trace                                render the deterministic trace so far
  profile [folded]                     folded span profile (self/cum time);
                                       `folded`: collapsed flamegraph stacks
  quit
values: 42, 4.5, true, false, null, \"quoted string\", bareword";

fn main() {
    let mut emulator = Emulator::new();
    let interactive = atty_stdin();
    if interactive {
        println!("firestore-rs emulator — `help` for commands, `quit` to exit");
    }
    let stdin = std::io::stdin();
    let mut collecting_rules: Option<String> = None;
    loop {
        if interactive {
            print!("> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim_end();
        if let Some(buf) = &mut collecting_rules {
            if line.trim() == "." {
                let src = std::mem::take(buf);
                collecting_rules = None;
                match emulator.database.set_rules(&src) {
                    Ok(()) => println!("rules installed"),
                    Err(e) => println!("error: {e}"),
                }
            } else {
                buf.push_str(line);
                buf.push('\n');
            }
            continue;
        }
        match line.trim() {
            "" => continue,
            "quit" | "exit" => break,
            "rules-begin" => {
                collecting_rules = Some(String::new());
                if interactive {
                    println!("(enter rules; finish with a line containing only `.`)");
                }
                continue;
            }
            other => match emulator.run_line(other) {
                Ok(out) if out.is_empty() => {}
                Ok(out) => println!("{out}"),
                Err(e) => println!("error: {e}"),
            },
        }
    }
}

/// Split a command line into tokens, keeping double-quoted spans (which may
/// contain spaces) as single tokens with their quotes preserved for
/// `parse_value`.
fn tokenize(line: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for ch in line.chars() {
        match ch {
            '"' => {
                in_quotes = !in_quotes;
                cur.push('"');
            }
            c if c.is_whitespace() && !in_quotes => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Crude interactivity check without extra dependencies: scripts pipe stdin.
fn atty_stdin() -> bool {
    use std::os::unix::fs::FileTypeExt;
    std::fs::metadata("/dev/stdin")
        .map(|m| {
            let ft = m.file_type();
            ft.is_char_device() && !ft.is_fifo()
        })
        .unwrap_or(false)
}
