//! Query-cost trajectory: limit-k queries across index sizes (§IV-D3).
//!
//! The paper's core query claim is that "the cost of a query scales with
//! the size of the result set, not the size of the data set". This harness
//! pins the trajectory: it seeds indexes of 10k / 100k / 1M entries and
//! runs the same limit-k queries against each, recording wall-clock time,
//! `entries_examined`, and the modeled storage latency. Flat rows across
//! sizes — for both a single-index scan and a width-2 zig-zag join — are
//! the expected shape; anything growing with the index size is a pushdown
//! regression.
//!
//! Output: `BENCH_query_scaling.json` at the workspace root (CI uploads it
//! as an artifact; see EXPERIMENTS.md for regeneration instructions).
//!
//! Set `QUERY_SCALING_SMOKE=1` (or pass `--smoke`) for a seconds-long run
//! with smaller sizes, used by CI's smoke job.

use bench::banner;
use firestore_core::database::{create_index_blocking, doc};
use firestore_core::index::IndexedField;
use firestore_core::{Caller, Direction, FilterOp, Query, Value, Write};
use server::{FirestoreService, ServiceOptions};
use simkit::{Duration, SimClock, SimRng};
use std::time::Instant;

const REPEATS: usize = 5;

struct Row {
    index_size: usize,
    query: &'static str,
    limit: usize,
    join_width: usize,
    wall_us_p50: u128,
    entries_examined: usize,
    entries_returned: usize,
    seeks: usize,
    docs_fetched: usize,
    model_storage_us: u64,
}

fn build(svc: &FirestoreService, n: usize) -> firestore_core::database::FirestoreDatabase {
    let db = svc.create_database(&format!("scaling{n}"));
    create_index_blocking(
        &db,
        "c",
        vec![IndexedField::asc("tag"), IndexedField::asc("v")],
    )
    .unwrap();
    create_index_blocking(
        &db,
        "c",
        vec![IndexedField::asc("flag"), IndexedField::asc("v")],
    )
    .unwrap();
    let mut writes = Vec::with_capacity(500);
    for i in 0..n {
        writes.push(Write::set(
            doc(&format!("/c/d{i:07}")),
            [
                ("v".to_string(), Value::Int(i as i64)),
                ("tag".to_string(), Value::Str("all".into())),
                ("flag".to_string(), Value::Str("on".into())),
            ],
        ));
        if writes.len() == 500 {
            db.commit_writes(std::mem::take(&mut writes), &Caller::Service)
                .unwrap();
        }
    }
    if !writes.is_empty() {
        db.commit_writes(writes, &Caller::Service).unwrap();
    }
    db
}

fn measure(
    svc: &FirestoreService,
    database: &str,
    rng: &mut SimRng,
    index_size: usize,
    label: &'static str,
    join_width: usize,
    q: &Query,
) -> Row {
    let mut walls = Vec::with_capacity(REPEATS);
    let mut stats = firestore_core::executor::QueryStats::default();
    let mut storage = Duration::ZERO;
    let mut returned = 0usize;
    for _ in 0..REPEATS {
        let t = Instant::now();
        let (result, served) = svc
            .run_query(database, q, &Caller::Service, rng)
            .expect("bench query");
        walls.push(t.elapsed().as_micros());
        stats = result.stats;
        storage = served.storage_latency;
        returned = result.documents.len();
    }
    walls.sort_unstable();
    let limit = q.limit.unwrap_or(0);
    assert_eq!(returned, limit.min(index_size), "bench query must fill its limit");
    Row {
        index_size,
        query: label,
        limit,
        join_width,
        wall_us_p50: walls[walls.len() / 2],
        entries_examined: stats.entries_examined,
        entries_returned: stats.entries_returned,
        seeks: stats.seeks,
        docs_fetched: stats.docs_fetched,
        model_storage_us: storage.as_nanos() / 1_000,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("QUERY_SCALING_SMOKE").is_ok_and(|v| v != "0");
    let sizes: &[usize] = if smoke {
        &[2_000, 10_000, 50_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    banner(
        "query scaling trajectory",
        "limit-k queries over 10k/100k/1M-entry indexes; cost must track the result set",
    );
    if smoke {
        println!("(smoke mode: sizes {sizes:?})");
    }

    let clock = SimClock::new();
    clock.advance(Duration::from_secs(1));
    let svc = FirestoreService::new(clock, ServiceOptions::default());
    let mut rng = SimRng::new(42);
    let mut rows: Vec<Row> = Vec::new();

    for &n in sizes {
        let database = format!("scaling{n}");
        eprintln!("seeding {n} documents…");
        let t = Instant::now();
        build(&svc, n);
        eprintln!("  seeded in {:.1}s", t.elapsed().as_secs_f64());

        for limit in [1usize, 10, 100] {
            let q = Query::parse("/c")
                .unwrap()
                .order_by("v", Direction::Asc)
                .limit(limit);
            rows.push(measure(&svc, &database, &mut rng, n, "scan", 1, &q));
        }
        let zz = Query::parse("/c")
            .unwrap()
            .filter("tag", FilterOp::Eq, Value::Str("all".into()))
            .filter("flag", FilterOp::Eq, Value::Str("on".into()))
            .order_by("v", Direction::Asc)
            .limit(10);
        rows.push(measure(&svc, &database, &mut rng, n, "zigzag", 2, &zz));
    }

    println!(
        "{:>10} {:>7} {:>6} {:>6} {:>9} {:>9} {:>6} {:>6} {:>9}",
        "index", "query", "limit", "width", "wall_us", "examined", "ret", "seeks", "model_us"
    );
    for r in &rows {
        println!(
            "{:>10} {:>7} {:>6} {:>6} {:>9} {:>9} {:>6} {:>6} {:>9}",
            r.index_size,
            r.query,
            r.limit,
            r.join_width,
            r.wall_us_p50,
            r.entries_examined,
            r.entries_returned,
            r.seeks,
            r.model_storage_us
        );
    }

    // The trajectory check the suite pins as a test, repeated here so a full
    // run fails loudly if pushdown regresses at the 1M point.
    for r in rows.iter().filter(|r| r.limit == 10) {
        assert!(
            r.entries_examined <= 64 * r.join_width,
            "limit(10) {} over {} entries examined {} — not O(limit · width)",
            r.query,
            r.index_size,
            r.entries_examined
        );
    }

    let mut report = bench::report::BenchReport::new("query_scaling")
        .field("smoke", smoke.to_string())
        .metrics(&svc.obs().metrics.snapshot())
        .field(
            "sizes",
            format!(
                "[{}]",
                sizes
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        );
    for r in &rows {
        report.row(format!(
            "{{\"index_size\": {}, \"query\": \"{}\", \"limit\": {}, \"join_width\": {}, \
             \"wall_us_p50\": {}, \"entries_examined\": {}, \"entries_returned\": {}, \
             \"seeks\": {}, \"docs_fetched\": {}, \"model_storage_us\": {}}}",
            r.index_size,
            r.query,
            r.limit,
            r.join_width,
            r.wall_us_p50,
            r.entries_examined,
            r.entries_returned,
            r.seeks,
            r.docs_fetched,
            r.model_storage_us,
        ));
    }
    report.write();

    // Profile artifact: the whole sweep ran under the service's tracer, so
    // fold the span stream into the deterministic call tree and write the
    // collapsed stacks next to the bench JSON (flamegraph-ready).
    let profile = simkit::FoldedProfile::fold(&svc.obs().tracer.finished_since(0));
    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write("target/PROFILE_query_scaling.txt", profile.render())
        .expect("write profile tree");
    std::fs::write("target/PROFILE_query_scaling.folded", profile.collapsed())
        .expect("write folded profile");
    println!(
        "\nprofile: {} spans folded -> target/PROFILE_query_scaling.{{txt,folded}}",
        profile.spans
    );
}
