//! Figure 9: real-time notification latency vs number of listeners.
//!
//! Paper setup: one document written once per second while an exponentially
//! growing number of clients (1 → 10k Listen connections) hold a real-time
//! query over it; notification latency is "the delay from when the
//! Firestore Backend receives an acknowledgement from Spanner denoting a
//! write is committed until the corresponding notification is sent to all
//! clients by the Frontend". Expected shape: latency stays roughly flat
//! because the Frontend pool auto-scales with the listener count,
//! independently of the write path.

use bench::{banner, emit_figure};
use server::{FirestoreService, ServiceOptions};
use simkit::stats::{LatencySeries, Samples};
use simkit::{Duration, SimClock, SimRng};
use workloads::fanout::FanoutFixture;

fn main() {
    banner(
        "Figure 9",
        "1 write/s to one document; 1→10000 real-time listeners; notification latency to the last client",
    );
    let listener_sweep = [1usize, 10, 100, 1_000, 10_000];
    let mut to_all = LatencySeries::new("notify all listeners");
    let mut per_client = LatencySeries::new("per-client delivery");
    for &n in &listener_sweep {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        let svc = FirestoreService::new(clock, ServiceOptions::default());
        svc.create_database("scores");
        let mut fixture = FanoutFixture::new(&svc, "scores", n).unwrap();
        let mut rng = SimRng::new(9 + n as u64);

        // Let the Frontend auto-scaler see the registered listeners and
        // react (its reaction delay and 2x step limit are part of the
        // model: reaching the pool size for 10k listeners takes several
        // decisions).
        for _ in 0..30 {
            svc.clock().advance(Duration::from_secs(10));
            svc.autoscale_frontends(svc.clock().now());
        }

        let mut all_latency = Samples::new();
        let mut client_latency = Samples::new();
        // 30 scoreboard writes, one per second.
        for _ in 0..30 {
            svc.clock().advance(Duration::from_secs(1));
            fixture.write_once(&svc).unwrap();
            svc.realtime().tick();
            let delivered = fixture.poll_all();
            assert_eq!(delivered, n, "every listener must hear the write");
            // Commit→client delays: Real-time Cache processing (changelog →
            // matcher → frontend hops) plus the Frontend pool's fan-out.
            let rtc_hops = svc.latency_model().hop(&mut rng) + svc.latency_model().hop(&mut rng);
            let delays = svc.fanout_delays(n, &mut rng);
            let mut slowest = Duration::ZERO;
            for d in &delays {
                let total = rtc_hops + *d;
                client_latency.push_duration(total);
                slowest = slowest.max(total);
            }
            all_latency.push_duration(slowest);
        }
        to_all.add_point(n as f64, &mut all_latency);
        per_client.add_point(n as f64, &mut client_latency);
        eprintln!(
            "  {n:>6} listeners: frontend pool scaled to {} tasks, {} notifications delivered",
            svc.frontend_tasks(),
            svc.realtime().stats().notifications
        );
    }
    emit_figure(
        "fig9_fanout_latency",
        "notification latency vs number of Listen connections (log-scale x)",
        &[to_all, per_client],
    );
}
