//! Figure 7: YCSB read latency (p50/p99) vs target throughput, workloads A
//! and B.
//!
//! Paper setup: YCSB against a production database in the `nam5`
//! multi-region; uniform keys, 900-byte single-field documents; 10-minute
//! runs per target QPS measuring the last 5 minutes. Expected shape: p50
//! roughly flat across throughputs; p99 rises at high QPS (more on the
//! write-heavy workload A) until auto-scaling catches up.

use bench::{banner, emit_figure};
use server::{FirestoreService, ServiceOptions};
use simkit::stats::LatencySeries;
use simkit::{Duration, SimClock};
use workloads::driver::{run_ycsb, DriverConfig};
use workloads::ycsb::{YcsbConfig, YcsbGenerator, YcsbWorkload};

fn main() {
    banner(
        "Figure 7 (and the read half of the YCSB scalability study)",
        "YCSB A (50/50) and B (95/5), uniform keys, 900B docs, nam5 multi-region",
    );
    let qps_sweep = [500.0, 1000.0, 2000.0, 4000.0, 8000.0];
    let mut all_series = Vec::new();
    for workload in [YcsbWorkload::A, YcsbWorkload::B] {
        let mut p_series = LatencySeries::new(format!("workload {} read", workload.label()));
        for &qps in &qps_sweep {
            let clock = SimClock::new();
            clock.advance(Duration::from_secs(1));
            // Fresh service per point: the paper also ramps each target
            // level separately; the pool starts small and must auto-scale.
            let svc = FirestoreService::new(
                clock,
                ServiceOptions {
                    backend_tasks: 4,
                    ..ServiceOptions::default()
                },
            );
            svc.create_database("ycsb");
            let generator = YcsbGenerator::new(YcsbConfig {
                workload,
                records: 5_000,
                field_size: 900,
            });
            let mut rng = simkit::SimRng::new(7);
            generator
                .load(&svc.database("ycsb").unwrap(), &mut rng)
                .unwrap();
            let report = run_ycsb(
                &svc,
                "ycsb",
                &generator,
                &DriverConfig {
                    target_qps: qps,
                    duration: Duration::from_secs(600),
                    warmup: Duration::from_secs(300),
                    sample_every: 200,
                    ..DriverConfig::default()
                },
            );
            p_series.add_point_hist(qps, &report.read_latency);
            eprintln!(
                "  workload {} @ {qps:>6} QPS: {} ops, {} real, backend scaled to {} tasks",
                workload.label(),
                report.operations,
                report.real_executions,
                svc.backend.lock().cores()
            );
        }
        all_series.push(p_series);
    }
    emit_figure(
        "fig7_ycsb_read_latency",
        "YCSB read latency vs target QPS",
        &all_series,
    );
}
