//! Recovery-time trajectory (E10): crash–restart replay cost vs redo-log
//! size.
//!
//! Durable redo logs buy crash safety; the price is paid at restart, when
//! `recover()` replays every committed transaction in the per-tablet logs.
//! This harness seeds databases whose logs hold increasing numbers of
//! committed transactions, crashes them, and times recovery. The expected
//! shape is *linear* in replayed mutations — a superlinear trajectory means
//! replay is re-sorting or re-scanning something it shouldn't.
//!
//! Output: `BENCH_recovery.json` at the workspace root (see EXPERIMENTS.md
//! E10 for regeneration instructions).
//!
//! Set `RECOVERY_SMOKE=1` (or pass `--smoke`) for a seconds-long run with
//! smaller sizes, used by CI's smoke job.

use bench::banner;
use firestore_core::database::{doc, FirestoreDatabase};
use firestore_core::{Caller, Consistency, Value, Write};
use simkit::{Duration, SimClock, SimDisk};
use spanner::SpannerDatabase;
use std::time::Instant;

struct Row {
    commits: usize,
    replayed_txns: usize,
    replayed_mutations: usize,
    logs_scanned: usize,
    wall_ms: f64,
    per_txn_us: f64,
}

fn run_one(commits: usize) -> Row {
    let clock = SimClock::new();
    clock.advance(Duration::from_secs(1));
    let spanner = SpannerDatabase::new(clock);
    spanner.attach_durability(SimDisk::new());
    let db = FirestoreDatabase::create_default(spanner.clone());

    for i in 0..commits {
        db.commit_writes(
            vec![Write::set(
                doc(&format!("/c/d{i:07}")),
                [("v", Value::Int(i as i64)), ("tag", Value::Int(i as i64 % 7))],
            )],
            &Caller::Service,
        )
        .expect("seed commit");
    }

    spanner.crash();
    let t = Instant::now();
    let report = spanner.recover();
    let wall = t.elapsed();

    assert_eq!(
        report.replayed_txns, commits,
        "every committed transaction must replay"
    );
    assert_eq!(report.discarded_prepares, 0);
    // Spot-check the recovered world.
    let got = db
        .get_document(&doc("/c/d0000000"), Consistency::Strong, &Caller::Service)
        .expect("recovered read")
        .expect("recovered doc");
    assert_eq!(got.fields["v"], Value::Int(0));

    Row {
        commits,
        replayed_txns: report.replayed_txns,
        replayed_mutations: report.replayed_mutations,
        logs_scanned: report.logs_scanned,
        wall_ms: wall.as_secs_f64() * 1e3,
        per_txn_us: wall.as_secs_f64() * 1e6 / commits.max(1) as f64,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("RECOVERY_SMOKE").is_ok_and(|v| v != "0");
    let sizes: &[usize] = if smoke {
        &[200, 1_000, 3_000]
    } else {
        &[1_000, 5_000, 20_000]
    };
    banner(
        "recovery time vs redo-log size (E10)",
        "crash–restart replay over logs of increasing committed-transaction counts",
    );
    if smoke {
        println!("(smoke mode: sizes {sizes:?})");
    }

    let mut rows: Vec<Row> = Vec::new();
    for &n in sizes {
        eprintln!("seeding {n} commits…");
        rows.push(run_one(n));
    }

    println!(
        "{:>9} {:>9} {:>11} {:>6} {:>10} {:>10}",
        "commits", "txns", "mutations", "logs", "wall_ms", "per_txn_us"
    );
    for r in &rows {
        println!(
            "{:>9} {:>9} {:>11} {:>6} {:>10.2} {:>10.2}",
            r.commits, r.replayed_txns, r.replayed_mutations, r.logs_scanned, r.wall_ms, r.per_txn_us
        );
    }

    let mut report =
        bench::report::BenchReport::new("recovery").field("smoke", smoke.to_string());
    for r in &rows {
        report.row(format!(
            "{{\"commits\": {}, \"replayed_txns\": {}, \"replayed_mutations\": {}, \
             \"logs_scanned\": {}, \"wall_ms\": {:.3}, \"per_txn_us\": {:.3}}}",
            r.commits, r.replayed_txns, r.replayed_mutations, r.logs_scanned, r.wall_ms, r.per_txn_us,
        ));
    }
    report.write();
}
