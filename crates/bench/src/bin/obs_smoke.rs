//! Observability smoke run (E11): seeded workload, trace + metrics artifacts.
//!
//! Drives a short YCSB-A mix plus a handful of queries through the full
//! service, then writes the deterministic trace and the metrics snapshot to
//! an output directory and prints the per-phase latency breakdown table
//! (queue / plan / execute / lock-wait / commit-wait / fanout).
//!
//! Fixed-seed runs are byte-identical: CI runs this binary twice with the
//! same `--seed` and `diff`s the two `trace.txt` files — any divergence is
//! a determinism regression in the engine or the tracer.
//!
//! ```text
//! cargo run -p bench --bin obs_smoke -- --seed 181 --out target/obs_smoke
//! ```

use bench::banner;
use firestore_core::{Caller, Direction, Query};
use server::{FirestoreService, ServiceOptions};
use simkit::{Duration, FoldedProfile, SimClock, SimDisk, SimRng};
use workloads::driver::{run_ycsb, DriverConfig};
use workloads::ycsb::{YcsbConfig, YcsbGenerator, YcsbWorkload};

const DATABASE: &str = "obs";

fn main() {
    let mut seed: u64 = 0xB5;
    let mut out = String::from("target/obs_smoke");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--out" => {
                out = it.next().expect("--out needs a directory").clone();
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    banner(
        "observability smoke (E11)",
        "seeded YCSB-A mix; per-phase latency breakdown, trace and metrics artifacts",
    );
    println!("(seed {seed}, output dir {out})");

    let clock = SimClock::new();
    clock.advance(Duration::from_secs(1));
    let svc = FirestoreService::new(
        clock,
        ServiceOptions {
            obs_seed: seed,
            ..ServiceOptions::default()
        },
    );
    // A simulated redo-log disk, so the durability spans (redo append/fsync)
    // appear in the trace and the folded profile.
    svc.spanner().attach_durability(SimDisk::new());
    let db = svc.create_database(DATABASE);

    // Load a small YCSB table and run the mix at modest QPS: enough traffic
    // to exercise every instrumented site, small enough for a CI smoke job.
    let generator = YcsbGenerator::new(YcsbConfig {
        workload: YcsbWorkload::A,
        records: 400,
        field_size: 64,
    });
    let mut rng = SimRng::new(seed ^ 0x5EED);
    generator.load(&db, &mut rng).expect("ycsb load");
    let report = run_ycsb(
        &svc,
        DATABASE,
        &generator,
        &DriverConfig {
            target_qps: 200.0,
            duration: Duration::from_secs(20),
            warmup: Duration::from_secs(5),
            sample_every: 5,
            quantum: Duration::from_micros(250),
            seed,
        },
    );
    println!(
        "ycsb: {} ops offered, {} real executions, read p50 {:.2}ms",
        report.operations,
        report.real_executions,
        report.read_latency.quantile(0.5).unwrap_or(0.0)
    );

    // A few planner-visible queries so the `op=query` phase rows exist.
    for limit in [1usize, 5, 25] {
        let q = Query::parse("/usertable")
            .unwrap()
            .order_by("field0", Direction::Asc)
            .limit(limit);
        svc.run_query(DATABASE, &q, &Caller::Service, &mut rng)
            .expect("smoke query");
    }
    // And service-path commits (run_ycsb's real updates go straight to the
    // engine), so the `op=commit` rows carry lock-wait / commit-wait / fanout.
    for i in 0..32 {
        let w = firestore_core::Write::set(
            firestore_core::database::doc(&format!("/obs/doc{i:03}")),
            [("n", firestore_core::Value::Int(i))],
        );
        svc.commit(DATABASE, vec![w], &Caller::Service, &mut rng)
            .expect("smoke commit");
    }

    // Per-phase latency breakdown table (spirit of the paper's Fig 7: where
    // does a request's latency actually go).
    let metrics = &svc.obs().metrics;
    println!();
    println!(
        "{:<8} {:<12} {:>8} {:>10} {:>10}",
        "op", "phase", "count", "p50_ms", "p99_ms"
    );
    let queue = metrics.histogram("phase_ms", &[("db", DATABASE), ("phase", "queue")]);
    if let Some(h) = queue {
        println!(
            "{:<8} {:<12} {:>8} {:>10.3} {:>10.3}",
            "(sched)",
            "queue",
            h.total(),
            h.quantile(0.5).unwrap_or(0.0),
            h.quantile(0.99).unwrap_or(0.0)
        );
    }
    for op in ["get", "query", "commit"] {
        for phase in [
            "queue",
            "plan",
            "execute",
            "lock_wait",
            "commit_wait",
            "fanout",
        ] {
            let labels = [("db", DATABASE), ("op", op), ("phase", phase)];
            if let Some(h) = metrics.histogram("phase_ms", &labels) {
                println!(
                    "{:<8} {:<12} {:>8} {:>10.3} {:>10.3}",
                    op,
                    phase,
                    h.total(),
                    h.quantile(0.5).unwrap_or(0.0),
                    h.quantile(0.99).unwrap_or(0.0)
                );
            }
        }
    }

    // Folded profile: the span stream weighted into a call tree, with the
    // top flat frames by self-time (E16's attribution table).
    let profile = FoldedProfile::fold(&svc.obs().tracer.finished_since(0));
    println!();
    println!("top frames by self-time (cost ledger):");
    println!("{:<28} {:>8} {:>14}", "frame", "count", "self_ns");
    for (name, count, self_time) in profile.top_self(10) {
        println!("{:<28} {:>8} {:>14}", name, count, self_time.as_nanos());
    }

    // Artifacts: the deterministic trace, both metrics snapshot formats,
    // and the folded profile (tree + collapsed stacks for flamegraphs).
    let dir = std::path::PathBuf::from(&out);
    std::fs::create_dir_all(&dir).expect("create output dir");
    let trace = svc.obs().tracer.render();
    let snapshot = svc.obs().metrics.snapshot();
    std::fs::write(dir.join("trace.txt"), &trace).expect("write trace");
    std::fs::write(dir.join("metrics.json"), snapshot.to_json()).expect("write metrics json");
    std::fs::write(dir.join("metrics.txt"), snapshot.to_text()).expect("write metrics text");
    std::fs::write(dir.join("profile.txt"), profile.render()).expect("write profile");
    std::fs::write(dir.join("profile.folded"), profile.collapsed())
        .expect("write folded profile");
    println!();
    println!(
        "(wrote {}, {}, {}, {}, {})",
        dir.join("trace.txt").display(),
        dir.join("metrics.json").display(),
        dir.join("metrics.txt").display(),
        dir.join("profile.txt").display(),
        dir.join("profile.folded").display()
    );
    println!(
        "trace: {} spans finished, {} metric series, {} profiled",
        svc.obs().tracer.finished_count(),
        snapshot.len(),
        profile.spans
    );
}
