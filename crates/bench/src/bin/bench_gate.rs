//! CI perf-regression gate: diff fresh `BENCH_*.json` reports against the
//! committed baselines and exit nonzero on any regression.
//!
//! ```text
//! bench_gate --baseline bench/baselines/smoke --fresh .
//! bench_gate --baseline bench/baselines/smoke --fresh . --update
//! ```
//!
//! The baseline directory holds one `BENCH_<name>.json` per gated bench;
//! for each, the same filename is looked up under `--fresh` (typically the
//! workspace root, where the bench bins write their reports). A baseline
//! without a fresh counterpart fails the gate — losing a report silently
//! would otherwise read as "no regressions". Fresh reports without a
//! baseline are listed but don't fail, so new benches can land before
//! their first baseline snapshot.
//!
//! `--update` copies each fresh report over its baseline instead of
//! gating, for intentional perf-profile changes (review the diff!).

use bench::gate::{compare, parse_json, Json};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: bench_gate --baseline <dir> --fresh <dir> [--update]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut baseline_dir: Option<PathBuf> = None;
    let mut fresh_dir: Option<PathBuf> = None;
    let mut update = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_dir = args.next().map(PathBuf::from),
            "--fresh" => fresh_dir = args.next().map(PathBuf::from),
            "--update" => update = true,
            _ => usage(),
        }
    }
    let (Some(baseline_dir), Some(fresh_dir)) = (baseline_dir, fresh_dir) else {
        usage()
    };

    let baselines = bench_reports(&baseline_dir);
    if baselines.is_empty() {
        eprintln!("bench_gate: no BENCH_*.json under {}", baseline_dir.display());
        return ExitCode::from(2);
    }

    if update {
        for name in &baselines {
            let src = fresh_dir.join(name);
            let dst = baseline_dir.join(name);
            match fs::copy(&src, &dst) {
                Ok(_) => println!("updated {}", dst.display()),
                Err(e) => eprintln!("skip {name}: {e}"),
            }
        }
        return ExitCode::SUCCESS;
    }

    let mut failed = false;
    let mut total_passed = 0usize;
    for name in &baselines {
        let base_path = baseline_dir.join(name);
        let fresh_path = fresh_dir.join(name);
        let base = match load(&base_path) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("FAIL {name}: baseline unreadable: {e}");
                failed = true;
                continue;
            }
        };
        let fresh = match load(&fresh_path) {
            Ok(v) => v,
            Err(e) => {
                eprintln!(
                    "FAIL {name}: fresh report missing or unreadable ({e}) — \
                     run the bench before gating"
                );
                failed = true;
                continue;
            }
        };
        let bench = base
            .get("bench")
            .and_then(Json::as_str)
            .unwrap_or(name)
            .to_string();
        let result = compare(&bench, &base, &fresh);
        for note in &result.notes {
            println!("  note: {note}");
        }
        if result.ok() {
            println!("PASS {name}: {} metrics within tolerance", result.passed);
            total_passed += result.passed;
        } else {
            failed = true;
            for r in &result.regressions {
                eprintln!("  {r}");
            }
            eprintln!(
                "FAIL {name}: {} regression(s), {} metrics passed",
                result.regressions.len(),
                result.passed
            );
        }
    }

    // Surface un-baselined fresh reports for visibility.
    for name in bench_reports(&fresh_dir) {
        if !baselines.contains(&name) {
            println!("note: {name} has no baseline (not gated)");
        }
    }

    if failed {
        eprintln!("bench_gate: FAILED");
        ExitCode::FAILURE
    } else {
        println!("bench_gate: OK ({total_passed} metrics across {} benches)", baselines.len());
        ExitCode::SUCCESS
    }
}

fn bench_reports(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter_map(|e| e.file_name().into_string().ok())
                .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    names
}

fn load(path: &Path) -> Result<Json, String> {
    let text = fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse_json(&text)
}
