//! §V-D ease-of-use table: the restaurant-recommendation codelab app,
//! feature by feature, with the lines of code the equivalent Rust example
//! needs against this reproduction's API.
//!
//! The paper argues Firestore's ease of use by walking through the Web
//! Codelab and the handful of JavaScript needed for each feature; we report
//! the same breakdown measured from `examples/restaurant_reviews.rs`.

use std::fs;

struct FeatureRow {
    feature: &'static str,
    paper_notes: &'static str,
    /// Markers delimiting the example's section (inclusive line matches).
    from_marker: &'static str,
    to_marker: &'static str,
}

fn main() {
    let source = fs::read_to_string("examples/restaurant_reviews.rs")
        .or_else(|_| fs::read_to_string("../../examples/restaurant_reviews.rs"))
        .expect("restaurant_reviews.rs example");
    let lines: Vec<&str> = source.lines().collect();
    let code_lines = |from: &str, to: &str| -> usize {
        let start = lines.iter().position(|l| l.contains(from)).unwrap_or(0);
        let end = lines
            .iter()
            .skip(start)
            .position(|l| l.contains(to))
            .map(|i| start + i)
            .unwrap_or(lines.len());
        lines[start..=end.min(lines.len() - 1)]
            .iter()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with("//")
            })
            .count()
    };

    let rows = [
        FeatureRow {
            feature: "initialize database + security rules",
            paper_notes: "a few commands + the Figure 3 rules",
            from_marker: "let service = FirestoreService::new",
            to_marker: "db.set_rules",
        },
        FeatureRow {
            feature: "restaurant list (filter + sort, live)",
            paper_notes: "onSnapshot() on a filtered, ordered query",
            from_marker: "let list_query = Query::parse",
            to_marker: "take_snapshots(listener)",
        },
        FeatureRow {
            feature: "add a review (transaction)",
            paper_notes: "runTransaction(): insert rating + update aggregates",
            from_marker: "run_transaction(5, |txn|",
            to_marker: ".expect(\"review transaction\")",
        },
        FeatureRow {
            feature: "display updates automatically",
            paper_notes: "no update-specific display logic needed",
            from_marker: "service.realtime().tick()",
            to_marker: "after Alice's 5-star review",
        },
    ];

    println!("=== §V-D ease of use: codelab features vs lines of Rust ===\n");
    println!("{:<42} {:>6}  paper's observation", "feature", "LoC");
    let mut body = String::new();
    for r in &rows {
        let n = code_lines(r.from_marker, r.to_marker);
        println!("{:<42} {:>6}  {}", r.feature, n, r.paper_notes);
        body.push_str(&format!("{},{}\n", r.feature, n));
    }
    let total = lines
        .iter()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with("//") && !t.starts_with("//!")
        })
        .count();
    println!("\nwhole runnable app: {total} non-comment lines of Rust");
    println!(
        "(the paper's JavaScript codelab is of the same order — the point is\n\
         that a full realtime, transactional, access-controlled app fits in\n\
         one small file with no server code)"
    );
    body.push_str(&format!("whole app,{total}\n"));
    bench::write_csv("tab_ease_of_use.csv", "feature,loc", &body);
}
