//! Overload-safe fanout trajectory: per-notification pipeline cost and
//! resident queue bytes across listener populations (§IV-D4, Fig 9 taken
//! to overload territory).
//!
//! Phase 1 (scaling): 10³ / 10⁴ / 10⁵ listeners on one hot collection;
//! every write is routed once through the batched changelog path and
//! fanned out to every listener. The per-notification cost of the fanout
//! tick must stay near-flat as the population grows — the pipeline does
//! one tree descent per batch and O(1) work per delivered event, so total
//! tick cost is proportional to deliveries, not to deliveries × listeners.
//! Resident outbound-queue bytes are sampled at their post-tick peak and
//! must stay proportional to the population (bounded per connection).
//! A hot-document burst sub-phase buffers several superseded versions of
//! one document inside a single flush window so per-flush coalescing does
//! real work; the `coalesced` column must be nonzero at every population.
//!
//! Phase 2 (overload): a fixed fleet with seeded slow consumers (clients
//! that stop draining mid-run). Conforming listeners' sim-time delivery
//! p99 must stay within 2× the quiet baseline while the slow consumers
//! are voluntarily reset (`overload`) and caught back up by the degrade
//! machinery; the consistency oracle checks the whole chaos run.
//!
//! Output: `BENCH_fanout.json` at the workspace root (CI uploads it as an
//! artifact; see EXPERIMENTS.md E15 for regeneration instructions).
//!
//! Set `FANOUT_SCALING_SMOKE=1` (or pass `--smoke`) for a seconds-long run
//! with smaller populations, used by CI's smoke job.

use bench::banner;
use firestore_core::database::doc;
use firestore_core::{Caller, Consistency, FirestoreDatabase, Query, Value, Write};
use realtime::{RealtimeCache, RealtimeOptions};
use simkit::{Duration, SimClock, SimDisk};
use spanner::SpannerDatabase;
use std::time::Instant;
use workloads::fanout::{run_fanout, FanoutConfig};

/// Hot documents written round-robin; all under the watched collection.
const HOT_DOCS: usize = 4;
/// Write cycles measured per population size.
const CYCLES: usize = 24;
/// Superseded versions of one document committed inside a single flush
/// window by the burst sub-phase; all but the last coalesce away.
const BURST: usize = 6;

struct ScaleRow {
    listeners: usize,
    notifications: u64,
    p50_ns_per_notification: u128,
    p99_ns_per_notification: u128,
    peak_queue_bytes: usize,
    coalesced: u64,
}

/// One scaling measurement: N plain connections, `CYCLES` hot writes, the
/// fanout tick timed wall-clock and charged per delivered notification.
fn measure(listeners: usize) -> ScaleRow {
    let clock = SimClock::new();
    clock.advance(Duration::from_secs(1));
    let spanner = SpannerDatabase::new(clock.clone());
    let db = FirestoreDatabase::create_default(spanner.clone());
    let mut opts = RealtimeOptions::default();
    // The batched path: changelog application deferred to the flush.
    opts.fanout.flush_interval = Duration::from_millis(50);
    let cache = RealtimeCache::new(spanner.truetime().clone(), opts);
    db.set_observer(cache.observer_for(db.directory()));

    for d in 0..HOT_DOCS {
        db.commit_writes(
            vec![Write::set(
                doc(&format!("/scores/hot{d}")),
                [("v", Value::Int(0))],
            )],
            &Caller::Service,
        )
        .unwrap();
    }
    cache.tick();

    let query = Query::parse("/scores").unwrap();
    let conns: Vec<realtime::Connection> = (0..listeners)
        .map(|_| {
            let conn = cache.connect();
            let ts = db.strong_read_ts();
            let docs = db
                .run_query(
                    &query.without_window(),
                    Consistency::AtTimestamp(ts),
                    &Caller::Service,
                )
                .unwrap()
                .documents;
            conn.listen(db.directory(), query.clone(), docs, ts);
            conn.poll(); // drain the initial snapshot
            conn
        })
        .collect();

    let mut samples: Vec<u128> = Vec::with_capacity(CYCLES);
    let mut notifications = 0u64;
    let mut peak_queue_bytes = 0usize;
    let mut counter = 0i64;
    for cycle in 0..CYCLES {
        clock.advance(Duration::from_millis(100));
        counter += 1;
        db.commit_writes(
            vec![Write::set(
                doc(&format!("/scores/hot{}", cycle % HOT_DOCS)),
                [("v", Value::Int(counter))],
            )],
            &Caller::Service,
        )
        .unwrap();
        let t = Instant::now();
        cache.tick();
        let tick_ns = t.elapsed().as_nanos();
        peak_queue_bytes = peak_queue_bytes.max(cache.stats().queued_bytes);
        let mut delivered = 0u64;
        for conn in &conns {
            delivered += conn
                .poll()
                .iter()
                .filter(|e| matches!(e, realtime::ListenEvent::Snapshot { .. }))
                .count() as u64;
        }
        assert_eq!(
            delivered, listeners as u64,
            "every listener hears every hot write"
        );
        notifications += delivered;
        samples.push(tick_ns / delivered.max(1) as u128);
    }
    // --- hot-document burst: the cycle loop above writes each doc at most
    // once per flush, so per-flush coalescing never fires there. Buffer
    // BURST superseded versions of one doc inside a single flush window,
    // then flush once: each listener hears one snapshot and the pump
    // coalesces away the BURST-1 stale versions per listener.
    let coalesced_before = cache.stats().coalesced;
    for _ in 0..BURST {
        clock.advance(Duration::from_millis(1));
        counter += 1;
        db.commit_writes(
            vec![Write::set(doc("/scores/hot0"), [("v", Value::Int(counter))])],
            &Caller::Service,
        )
        .unwrap();
    }
    clock.advance(Duration::from_millis(100));
    cache.tick();
    let mut burst_delivered = 0u64;
    for conn in &conns {
        burst_delivered += conn
            .poll()
            .iter()
            .filter(|e| matches!(e, realtime::ListenEvent::Snapshot { .. }))
            .count() as u64;
    }
    assert_eq!(
        burst_delivered, listeners as u64,
        "the burst collapses to one snapshot per listener"
    );
    notifications += burst_delivered;
    let burst_coalesced = cache.stats().coalesced - coalesced_before;
    assert_eq!(
        burst_coalesced,
        (BURST as u64 - 1) * listeners as u64,
        "each listener's queue absorbs the burst's superseded versions"
    );

    samples.sort_unstable();
    let pick = |pct: f64| -> u128 {
        let rank = ((pct / 100.0) * samples.len() as f64).ceil() as usize;
        samples[rank.clamp(1, samples.len()) - 1]
    };
    let stats = cache.stats();
    ScaleRow {
        listeners,
        notifications,
        p50_ns_per_notification: pick(50.0),
        p99_ns_per_notification: pick(99.0),
        peak_queue_bytes,
        coalesced: stats.coalesced,
    }
}

/// Profile pass: a small fully-instrumented replay of the scaling loop.
/// Kept separate from the measured sweep — tracer bookkeeping would pollute
/// the wall-clock tick samples, and at 10^5 listeners the per-connection
/// queue-walk spans alone run to millions. A few hundred listeners exercise
/// every instrumented site (matcher descent, pump flush, queue walk,
/// per-index maintenance, redo append) at negligible cost.
fn profile_pass(listeners: usize) {
    let clock = SimClock::new();
    clock.advance(Duration::from_secs(1));
    let obs = simkit::Obs::new(clock.clone(), 0xFA_0F11);
    let spanner = SpannerDatabase::new(clock.clone());
    spanner.set_obs(Some(obs.clone()));
    spanner.attach_durability(SimDisk::new());
    let db = FirestoreDatabase::create_default(spanner.clone());
    let mut opts = RealtimeOptions::default();
    opts.fanout.flush_interval = Duration::from_millis(50);
    let cache = RealtimeCache::new(spanner.truetime().clone(), opts);
    cache.set_obs(Some(obs.clone()));
    db.set_observer(cache.observer_for(db.directory()));

    for d in 0..HOT_DOCS {
        db.commit_writes(
            vec![Write::set(
                doc(&format!("/scores/hot{d}")),
                [("v", Value::Int(0))],
            )],
            &Caller::Service,
        )
        .unwrap();
    }
    cache.tick();

    let query = Query::parse("/scores").unwrap();
    let conns: Vec<realtime::Connection> = (0..listeners)
        .map(|_| {
            let conn = cache.connect();
            let ts = db.strong_read_ts();
            let docs = db
                .run_query(
                    &query.without_window(),
                    Consistency::AtTimestamp(ts),
                    &Caller::Service,
                )
                .unwrap()
                .documents;
            conn.listen(db.directory(), query.clone(), docs, ts);
            conn.poll();
            conn
        })
        .collect();

    let mut counter = 0i64;
    for cycle in 0..8usize {
        clock.advance(Duration::from_millis(100));
        counter += 1;
        db.commit_writes(
            vec![Write::set(
                doc(&format!("/scores/hot{}", cycle % HOT_DOCS)),
                [("v", Value::Int(counter))],
            )],
            &Caller::Service,
        )
        .unwrap();
        cache.tick();
        for conn in &conns {
            conn.poll();
        }
    }

    let profile = simkit::FoldedProfile::fold(&obs.tracer.finished_since(0));
    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write("target/PROFILE_fanout.txt", profile.render()).expect("write profile tree");
    std::fs::write("target/PROFILE_fanout.folded", profile.collapsed())
        .expect("write folded profile");
    println!(
        "profile: {} spans folded ({} listeners) -> target/PROFILE_fanout.{{txt,folded}}",
        profile.spans, listeners
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("FANOUT_SCALING_SMOKE").is_ok_and(|v| v != "0");
    let sizes: &[usize] = if smoke {
        &[200, 1_000, 5_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    banner(
        "fanout scaling + overload",
        "per-notification fanout cost over 10^3/10^4/10^5 listeners must stay \
         near-flat; seeded slow consumers are shed, conforming p99 holds",
    );
    if smoke {
        println!("(smoke mode: sizes {sizes:?})");
    }

    // --- Phase 1: scaling sweep -------------------------------------------
    let mut rows: Vec<ScaleRow> = Vec::new();
    for &n in sizes {
        let t = Instant::now();
        let row = measure(n);
        eprintln!(
            "{n} listeners: {} notifications in {:.2}s, p99 {}ns/notification, \
             peak queues {} bytes",
            row.notifications,
            t.elapsed().as_secs_f64(),
            row.p99_ns_per_notification,
            row.peak_queue_bytes,
        );
        rows.push(row);
    }

    println!(
        "{:>9} {:>13} {:>10} {:>10} {:>12} {:>10}",
        "listeners", "notifications", "p50 ns/n", "p99 ns/n", "queue bytes", "coalesced"
    );
    for r in &rows {
        println!(
            "{:>9} {:>13} {:>10} {:>10} {:>12} {:>10}",
            r.listeners,
            r.notifications,
            r.p50_ns_per_notification,
            r.p99_ns_per_notification,
            r.peak_queue_bytes,
            r.coalesced
        );
    }

    for r in &rows {
        assert!(
            r.coalesced >= (BURST as u64 - 1) * r.listeners as u64,
            "{} listeners: burst sub-phase coalesced only {} deltas",
            r.listeners,
            r.coalesced
        );
    }

    // Near-flat: p99 per-notification cost at the top population must stay
    // within a small factor of the bottom one (floored at 2µs so machine
    // noise on a sub-microsecond sample can't fail the check), against a
    // 100× population growth.
    let small = rows.first().expect("rows");
    let large = rows.last().expect("rows");
    let base = small.p99_ns_per_notification.max(2_000);
    assert!(
        large.p99_ns_per_notification < base * 5,
        "per-notification p99 grew {}ns -> {}ns over {}x more listeners — not flat",
        small.p99_ns_per_notification,
        large.p99_ns_per_notification,
        large.listeners / small.listeners
    );
    println!(
        "\nnear-flat: {}ns -> {}ns per notification over {}x more listeners",
        small.p99_ns_per_notification,
        large.p99_ns_per_notification,
        large.listeners / small.listeners
    );

    // --- Phase 2: seeded slow consumers vs quiet baseline ------------------
    let overload_listeners = if smoke { 300 } else { 1_000 };
    let mk = |slow: usize| FanoutConfig {
        listeners: overload_listeners,
        slow,
        ..FanoutConfig::new(0xFA_007)
    };
    let quiet = run_fanout(&mk(0));
    let loaded = run_fanout(&mk(6));
    println!(
        "\noverload fleet ({overload_listeners} listeners): quiet p99 {:.3}ms, \
         with 6 slow consumers p99 {:.3}ms, {} overload resets, converged={}",
        quiet.conforming_p99.as_millis_f64(),
        loaded.conforming_p99.as_millis_f64(),
        loaded.overload_resets,
        loaded.all_converged,
    );
    assert!(loaded.overload_resets >= 6, "slow consumers must be shed");
    assert!(loaded.slow_recovered, "shed listeners must catch back up");
    assert!(loaded.all_converged, "every listener must converge");
    // Conforming listeners ride out the overload: p99 within 2× the quiet
    // baseline (floored at 1ms of sim time).
    let quiet_p99 = quiet.conforming_p99.as_nanos().max(1_000_000);
    assert!(
        loaded.conforming_p99.as_nanos() <= quiet_p99 * 2,
        "conforming p99 {}ns vs quiet baseline {}ns — slow consumers leaked delay",
        loaded.conforming_p99.as_nanos(),
        quiet.conforming_p99.as_nanos()
    );
    for r in [&quiet, &loaded] {
        let oracle = r.oracle.as_ref().expect("oracle enabled");
        assert!(oracle.passed(), "oracle violations:\n{}", oracle.report);
    }

    let mut report = bench::report::BenchReport::new("fanout")
        .field("smoke", smoke.to_string())
        .field(
            "sizes",
            format!(
                "[{}]",
                sizes
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        );
    for r in &rows {
        report.row(format!(
            "{{\"phase\": \"scaling\", \"listeners\": {}, \"notifications\": {}, \
             \"p50_ns_per_notification\": {}, \"p99_ns_per_notification\": {}, \
             \"peak_queue_bytes\": {}, \"coalesced\": {}}}",
            r.listeners,
            r.notifications,
            r.p50_ns_per_notification,
            r.p99_ns_per_notification,
            r.peak_queue_bytes,
            r.coalesced
        ));
    }
    for (label, r) in [("quiet", &quiet), ("slow-consumers", &loaded)] {
        report.row(format!(
            "{{\"phase\": \"overload\", \"fleet\": \"{label}\", \"listeners\": {}, \
             \"conforming_p50_ms\": {:.3}, \"conforming_p99_ms\": {:.3}, \
             \"overload_resets\": {}, \"fault_resets\": {}, \"dropped_events\": {}, \
             \"peak_queue_bytes\": {}, \"converged\": {}}}",
            r.listeners,
            r.conforming_p50.as_millis_f64(),
            r.conforming_p99.as_millis_f64(),
            r.overload_resets,
            r.fault_resets,
            r.dropped_events,
            r.peak_queue_bytes,
            r.all_converged
        ));
    }
    report.write();

    // Profile artifact, from a separate instrumented pass at the smallest
    // population (see `profile_pass` for why the measured sweep is untraced).
    profile_pass(sizes[0].min(200));
}
