//! Shared `BENCH_*.json` report writer.
//!
//! Every benchmark binary used to hand-roll its JSON assembly; this builder
//! deduplicates that and embeds the observability metrics snapshot so a CI
//! artifact carries both the benchmark's own rows and the instrumented
//! counters/histograms of the run that produced them.

use simkit::MetricsSnapshot;
use std::path::PathBuf;

/// Builder for one `BENCH_<name>.json` file at the workspace root.
pub struct BenchReport {
    name: String,
    /// Top-level `key: raw-json-value` pairs, in insertion order.
    fields: Vec<(String, String)>,
    /// Raw JSON objects, one per result row.
    rows: Vec<String>,
    /// Rendered metrics snapshot, if attached.
    metrics: Option<String>,
}

impl BenchReport {
    /// Start a report for benchmark `name` (written as `BENCH_<name>.json`).
    pub fn new(name: impl Into<String>) -> Self {
        BenchReport {
            name: name.into(),
            fields: Vec::new(),
            rows: Vec::new(),
            metrics: None,
        }
    }

    /// Add a top-level field. `raw_json` is emitted verbatim, so pass
    /// already-valid JSON (`"true"`, `"[1, 2]"`, `"\"text\""`).
    pub fn field(mut self, key: &str, raw_json: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), raw_json.into()));
        self
    }

    /// Append one result row (a raw JSON object).
    pub fn row(&mut self, raw_json_object: impl Into<String>) {
        self.rows.push(raw_json_object.into());
    }

    /// Attach the observability metrics snapshot of the run.
    pub fn metrics(mut self, snapshot: &MetricsSnapshot) -> Self {
        self.metrics = Some(snapshot.to_json());
        self
    }

    /// Render the report as a JSON string.
    pub fn render(&self) -> String {
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"bench\": \"{}\",\n", self.name));
        for (k, v) in &self.fields {
            json.push_str(&format!("  \"{k}\": {v},\n"));
        }
        json.push_str("  \"results\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let sep = if i + 1 == self.rows.len() { "" } else { "," };
            json.push_str(&format!("    {row}{sep}\n"));
        }
        json.push_str("  ]");
        if let Some(metrics) = &self.metrics {
            json.push_str(&format!(",\n  \"metrics\": {metrics}"));
        }
        json.push_str("\n}\n");
        json
    }

    /// Write `BENCH_<name>.json` at the workspace root and print its path.
    pub fn write(&self) -> PathBuf {
        let path = PathBuf::from(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.render()).expect("write BENCH json");
        println!("(wrote {})", path.display());
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Metrics;

    #[test]
    fn report_renders_fields_rows_and_metrics() {
        let metrics = Metrics::new();
        metrics.incr("ops", &[("db", "a")], 3);
        let mut report = BenchReport::new("unit")
            .field("smoke", "true")
            .metrics(&metrics.snapshot());
        report.row(r#"{"x": 1}"#);
        report.row(r#"{"x": 2}"#);
        let json = report.render();
        assert!(json.contains(r#""bench": "unit""#), "{json}");
        assert!(json.contains(r#""smoke": true"#), "{json}");
        assert!(json.contains(r#"{"x": 1},"#), "{json}");
        assert!(json.contains(r#"{"x": 2}"#), "{json}");
        assert!(json.contains(r#""metrics""#), "{json}");
        assert!(json.contains("ops{db=a}"), "{json}");
    }
}
