//! The CI perf-regression gate over `BENCH_*.json` trajectories.
//!
//! Every benchmark's numbers come from a deterministic simulation, so a
//! baseline committed under `bench/baselines/` is reproducible bit-for-bit
//! on any machine — any drift in a *sim-derived* metric is a code change,
//! not noise, and tight tolerances are safe. A few metrics are wall-clock
//! (measured with `Instant` around in-process compute, e.g. the
//! per-notification costs of `fanout_scaling`); those vary with the host,
//! so they gate only against catastrophic regressions.
//!
//! The comparison walks the `results` rows of a fresh report against its
//! baseline: string fields (phase labels, fleet names) must match exactly;
//! numeric fields are classified by name into a [`MetricClass`] with a
//! direction (lower- vs higher-is-better) and a relative tolerance plus an
//! absolute slack floor. A missing row, a missing metric, or a value past
//! its tolerance is a [`Regression`] and the `bench_gate` bin exits
//! nonzero. No external JSON dependency exists in this workspace, so the
//! parser below is hand-rolled for the small JSON dialect
//! [`report::BenchReport`](crate::report::BenchReport) emits.

use std::fmt;

// ---------------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64; integers survive to 2^53, far beyond any
    /// benchmark metric).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered by key.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document. Supports the full value grammar the repo's
/// reports use: objects, arrays, double-quoted strings with `\"`/`\\`/`\n`
/// escapes, numbers (including negatives and decimals), booleans, null.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            other => return Err(format!("unsupported escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // Multi-byte UTF-8 passes through byte-wise; the
                        // input is valid UTF-8 (it came from a &str).
                        let start = *pos;
                        let len = utf8_len(c);
                        *pos += len;
                        s.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| {
                            format!("invalid UTF-8 in string: {e}")
                        })?);
                    }
                }
            }
        }
        Some(b't') => expect_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => expect_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => expect_lit(b, pos, "null", Json::Null),
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).unwrap_or("");
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at offset {start}"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

// ---------------------------------------------------------------------------
// Metric classification & tolerances
// ---------------------------------------------------------------------------

/// How a metric's fresh value is judged against its baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricClass {
    /// Deterministic sim-derived value where smaller is better (simulated
    /// latencies, queue bytes): tight tolerance.
    SimLowerBetter,
    /// Deterministic sim-derived value where larger is better (coalesced
    /// counts, throughput): tight tolerance, inverted direction.
    SimHigherBetter,
    /// Wall-clock measurement (`Instant`-based per-op costs): host-dependent,
    /// gated loosely to catch only catastrophic regressions.
    WallClockLowerBetter,
    /// Workload-shape value (row counts, sizes): equal within tolerance in
    /// *both* directions — drift means the workload changed, which requires
    /// a baseline update, not a silent pass.
    Shape,
    /// Not compared (identifiers, flags).
    Ignored,
}

/// Relative tolerance and absolute slack for one metric class.
#[derive(Clone, Copy, Debug)]
pub struct Tolerance {
    /// Allowed relative drift in the bad direction (0.10 = 10%).
    pub rel: f64,
    /// Absolute slack floor, in the metric's own unit, so near-zero
    /// baselines don't trip on epsilon drift.
    pub abs: f64,
}

/// Classify a metric by its field name. The naming conventions are the
/// repo's own (`*_ms` simulated milliseconds, `*_ns_per_*` wall-clock
/// nanoseconds per op, `us_per_txn` wall-clock, counts bare).
pub fn classify(metric: &str) -> MetricClass {
    // Wall-clock costs measured with Instant: `wall` anywhere in the name
    // (wall_us_p50, wall_ms, per_txn wall costs) or a per-op ns/us rate.
    if metric.contains("wall")
        || metric.contains("ns_per_")
        || metric.contains("us_per_")
        || metric == "per_txn_us"
    {
        return MetricClass::WallClockLowerBetter;
    }
    // Simulated latencies and resource peaks: lower is better.
    if metric.ends_with("_ms")
        || metric.ends_with("_us")
        || metric.ends_with("_ns")
        || metric.contains("_p50")
        || metric.contains("_p99")
        || metric.starts_with("p50_")
        || metric.starts_with("p99_")
        || metric.contains("queue_bytes")
        || metric.contains("dropped")
        || metric.contains("resets")
        || metric.contains("entries_examined")
        || metric.contains("rejected")
    {
        return MetricClass::SimLowerBetter;
    }
    // More work coalesced / carried per unit is better.
    if metric.contains("coalesced") || metric.contains("ops_per_sec") || metric.contains("throughput")
    {
        return MetricClass::SimHigherBetter;
    }
    // Shape: the workload itself.
    if metric.contains("listeners")
        || metric.contains("size")
        || metric.contains("notifications")
        || metric.contains("docs")
        || metric.contains("queries")
        || metric.contains("txns")
        || metric.contains("entries")
        || metric.contains("documents")
        || metric.contains("count")
    {
        return MetricClass::Shape;
    }
    if metric == "seed" || metric == "converged" {
        return MetricClass::Ignored;
    }
    // Default: treat unknown numerics as sim lower-is-better — the
    // conservative choice; misclassified metrics fail loudly and get a
    // naming fix or an override, not a silent pass.
    MetricClass::SimLowerBetter
}

/// Tolerance for a class.
pub fn tolerance(class: MetricClass) -> Tolerance {
    match class {
        MetricClass::SimLowerBetter | MetricClass::SimHigherBetter => {
            Tolerance { rel: 0.10, abs: 2.0 }
        }
        // Wall clock: only 4x-or-worse fails (CI runners vary ~2-3x).
        MetricClass::WallClockLowerBetter => Tolerance { rel: 3.0, abs: 1000.0 },
        MetricClass::Shape => Tolerance { rel: 0.01, abs: 0.5 },
        MetricClass::Ignored => Tolerance { rel: f64::INFINITY, abs: f64::INFINITY },
    }
}

// ---------------------------------------------------------------------------
// Gate
// ---------------------------------------------------------------------------

/// One detected regression (or comparison error).
#[derive(Clone, Debug)]
pub struct Regression {
    /// Bench name (e.g. `fanout`).
    pub bench: String,
    /// Row index in `results` plus its identifying labels.
    pub row: String,
    /// The offending metric.
    pub metric: String,
    /// Human-readable verdict.
    pub detail: String,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "REGRESSION [{} {}] {}: {}",
            self.bench, self.row, self.metric, self.detail
        )
    }
}

/// Comparison summary for one report pair.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// Metrics compared and found within tolerance.
    pub passed: usize,
    /// Detected regressions.
    pub regressions: Vec<Regression>,
    /// Informational lines (improvements, skipped metrics).
    pub notes: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// A row's identity: its string-valued fields joined, falling back to the
/// row index — so reordered or re-shaped workloads produce readable errors.
fn row_label(row: &Json, idx: usize) -> String {
    let mut parts = vec![format!("row{idx}")];
    if let Json::Obj(pairs) = row {
        for (k, v) in pairs {
            if let Json::Str(s) = v {
                parts.push(format!("{k}={s}"));
            }
        }
    }
    parts.join(" ")
}

/// Diff a fresh report against its baseline. `bench` names the pair for
/// error messages (typically the `bench` field of the baseline).
pub fn compare(bench: &str, baseline: &Json, fresh: &Json) -> GateReport {
    let mut out = GateReport::default();
    let base_rows = baseline
        .get("results")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    let fresh_rows = fresh.get("results").and_then(Json::as_arr).unwrap_or(&[]);
    if fresh_rows.len() < base_rows.len() {
        out.regressions.push(Regression {
            bench: bench.into(),
            row: "results".into(),
            metric: "rows".into(),
            detail: format!(
                "baseline has {} rows, fresh has {} — coverage lost",
                base_rows.len(),
                fresh_rows.len()
            ),
        });
    }
    for (idx, (b_row, f_row)) in base_rows.iter().zip(fresh_rows).enumerate() {
        let label = row_label(b_row, idx);
        let Json::Obj(b_pairs) = b_row else { continue };
        for (metric, b_val) in b_pairs {
            compare_metric(bench, &label, metric, b_val, f_row.get(metric), &mut out);
        }
    }
    out
}

/// Diff one metric of one row; recurses into nested objects with dotted
/// metric names (e.g. `throttles.quota_exhausted`).
fn compare_metric(
    bench: &str,
    label: &str,
    metric: &str,
    b_val: &Json,
    f_val: Option<&Json>,
    out: &mut GateReport,
) {
    match (b_val, f_val) {
        (Json::Obj(b_nested), Some(f_obj @ Json::Obj(_))) => {
            for (key, b_inner) in b_nested {
                let dotted = format!("{metric}.{key}");
                compare_metric(bench, label, &dotted, b_inner, f_obj.get(key), out);
            }
        }
        (Json::Str(bs), Some(Json::Str(fs))) => {
            if bs != fs {
                out.regressions.push(Regression {
                    bench: bench.into(),
                    row: label.into(),
                    metric: metric.into(),
                    detail: format!("label changed: baseline {bs:?}, fresh {fs:?}"),
                });
            } else {
                out.passed += 1;
            }
        }
        (Json::Num(bn), Some(Json::Num(fn_))) => {
            judge(bench, label, metric, *bn, *fn_, out);
        }
        (Json::Bool(bb), Some(Json::Bool(fb))) => {
            if bb != fb && metric != "converged" {
                out.regressions.push(Regression {
                    bench: bench.into(),
                    row: label.into(),
                    metric: metric.into(),
                    detail: format!("flag changed: baseline {bb}, fresh {fb}"),
                });
            } else if bb != fb {
                // `converged` flipping false IS a regression.
                if *bb && !*fb {
                    out.regressions.push(Regression {
                        bench: bench.into(),
                        row: label.into(),
                        metric: metric.into(),
                        detail: "converged flipped to false".into(),
                    });
                }
            } else {
                out.passed += 1;
            }
        }
        (_, None) => {
            out.regressions.push(Regression {
                bench: bench.into(),
                row: label.into(),
                metric: metric.into(),
                detail: "metric missing from fresh report".into(),
            });
        }
        _ => {
            out.notes
                .push(format!("[{bench} {label}] {metric}: type changed, skipped"));
        }
    }
}

fn judge(bench: &str, label: &str, metric: &str, base: f64, fresh: f64, out: &mut GateReport) {
    let class = classify(metric);
    let tol = tolerance(class);
    let (bad, improved) = match class {
        MetricClass::Ignored => {
            out.notes
                .push(format!("[{bench} {label}] {metric}: ignored"));
            return;
        }
        MetricClass::SimLowerBetter | MetricClass::WallClockLowerBetter => {
            let limit = (base * (1.0 + tol.rel)).max(base + tol.abs);
            (fresh > limit, fresh < base)
        }
        MetricClass::SimHigherBetter => {
            let limit = (base * (1.0 - tol.rel)).min(base - tol.abs);
            (fresh < limit, fresh > base)
        }
        MetricClass::Shape => {
            let hi = (base * (1.0 + tol.rel)).max(base + tol.abs);
            let lo = (base * (1.0 - tol.rel)).min(base - tol.abs);
            (fresh > hi || fresh < lo, false)
        }
    };
    if bad {
        out.regressions.push(Regression {
            bench: bench.into(),
            row: label.into(),
            metric: metric.into(),
            detail: format!(
                "baseline {base}, fresh {fresh} ({class:?}, rel tol {}, abs slack {})",
                tol.rel, tol.abs
            ),
        });
    } else {
        if improved && (base - fresh).abs() > tol.abs {
            out.notes.push(format!(
                "[{bench} {label}] {metric}: improved {base} -> {fresh}"
            ));
        }
        out.passed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
  "bench": "demo",
  "smoke": true,
  "results": [
    {"phase": "scaling", "listeners": 100, "p99_ms": 10.5, "coalesced": 40, "ns_per_op": 2000},
    {"phase": "overload", "listeners": 100, "p99_ms": 20.0, "converged": true}
  ]
}"#;

    #[test]
    fn parser_round_trips_report_shape() {
        let v = parse_json(BASE).unwrap();
        assert_eq!(v.get("bench").and_then(Json::as_str), Some("demo"));
        let rows = v.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("p99_ms").and_then(Json::as_num), Some(10.5));
        assert_eq!(rows[1].get("converged"), Some(&Json::Bool(true)));
    }

    #[test]
    fn identical_reports_pass() {
        let b = parse_json(BASE).unwrap();
        let r = compare("demo", &b, &b);
        assert!(r.ok(), "{:?}", r.regressions);
        assert!(r.passed > 0);
    }

    #[test]
    fn sim_latency_regression_fails_and_wallclock_noise_passes() {
        let b = parse_json(BASE).unwrap();
        // p99 +50% (sim: fail), ns_per_op +150% (wall clock: within 4x, pass).
        let fresh = parse_json(&BASE.replace("10.5", "15.75").replace("2000", "5000")).unwrap();
        let r = compare("demo", &b, &fresh);
        assert_eq!(r.regressions.len(), 1, "{:?}", r.regressions);
        assert_eq!(r.regressions[0].metric, "p99_ms");
    }

    #[test]
    fn coalesced_drop_fails() {
        let b = parse_json(BASE).unwrap();
        let fresh = parse_json(&BASE.replace("\"coalesced\": 40", "\"coalesced\": 0")).unwrap();
        let r = compare("demo", &b, &fresh);
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].metric, "coalesced");
    }

    #[test]
    fn missing_metric_and_lost_rows_fail() {
        let b = parse_json(BASE).unwrap();
        let fresh = parse_json(&BASE.replace("\"coalesced\": 40, ", "")).unwrap();
        let r = compare("demo", &b, &fresh);
        assert!(r.regressions.iter().any(|x| x.metric == "coalesced"));
        let one_row = parse_json(
            r#"{"bench": "demo", "results": [{"phase": "scaling", "p99_ms": 10.5}]}"#,
        )
        .unwrap();
        let r = compare("demo", &b, &one_row);
        assert!(r.regressions.iter().any(|x| x.metric == "rows"));
    }

    #[test]
    fn shape_drift_fails_both_directions() {
        let b = parse_json(BASE).unwrap();
        let fresh = parse_json(&BASE.replace("\"listeners\": 100, \"p99_ms\": 10.5", "\"listeners\": 90, \"p99_ms\": 10.5")).unwrap();
        let r = compare("demo", &b, &fresh);
        assert!(r.regressions.iter().any(|x| x.metric == "listeners"), "{:?}", r.regressions);
    }

    #[test]
    fn converged_flip_fails() {
        let b = parse_json(BASE).unwrap();
        let fresh = parse_json(&BASE.replace("\"converged\": true", "\"converged\": false")).unwrap();
        let r = compare("demo", &b, &fresh);
        assert!(r.regressions.iter().any(|x| x.metric == "converged"));
    }
}
