//! Criterion micro-benchmarks of the engine's hot paths: order-preserving
//! value encoding, index-entry computation, query planning, zig-zag
//! execution, the write pipeline, and real-time matching.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use firestore_core::database::doc;
use firestore_core::encoding::encode_value_asc;
use firestore_core::index::{entries_for_document, IndexCatalog, IndexState};
use firestore_core::planner::plan_query;
use firestore_core::{
    Caller, Consistency, Direction, Document, FilterOp, FirestoreDatabase, Query, Value, Write,
};
use simkit::{Duration, SimClock, SimRng};
use spanner::database::DirectoryId;
use spanner::SpannerDatabase;
use std::hint::black_box;

fn sample_doc(i: usize) -> Document {
    Document::new(
        doc(&format!("/restaurants/r{i:05}")),
        [
            ("name", Value::Str(format!("Restaurant {i}"))),
            (
                "city",
                Value::from(if i.is_multiple_of(3) { "SF" } else { "NY" }),
            ),
            (
                "type",
                Value::from(if i.is_multiple_of(2) { "BBQ" } else { "Deli" }),
            ),
            ("avgRating", Value::Double((i % 50) as f64 / 10.0)),
            ("numRatings", Value::Int(i as i64)),
            (
                "tags",
                Value::Array(vec![Value::from("a"), Value::from("b"), Value::from("c")]),
            ),
        ],
    )
}

fn bench_encoding(c: &mut Criterion) {
    let values = vec![
        Value::Int(123456),
        Value::Double(1.618034),
        Value::Str("a moderately sized string value".into()),
        Value::Array(vec![Value::Int(1), Value::from("x"), Value::Bool(true)]),
        Value::map([("nested", Value::map([("deep", Value::Int(1))]))]),
    ];
    c.bench_function("encoding/order_preserving_value", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(64);
            for v in &values {
                encode_value_asc(black_box(v), &mut out);
            }
            black_box(out)
        })
    });
    let d = sample_doc(7);
    c.bench_function("encoding/document_serialize", |b| {
        b.iter(|| black_box(black_box(&d).encode()))
    });
    let bytes = d.encode();
    c.bench_function("encoding/document_deserialize", |b| {
        b.iter(|| black_box(Document::decode(d.name.clone(), black_box(&bytes)).unwrap()))
    });
}

fn bench_index(c: &mut Criterion) {
    let d = sample_doc(42);
    c.bench_function("index/entries_for_document", |b| {
        b.iter_batched(
            IndexCatalog::new,
            |mut cat| {
                black_box(entries_for_document(
                    &mut cat,
                    DirectoryId(1),
                    black_box(&d),
                    &[IndexState::Ready],
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_planner(c: &mut Criterion) {
    let mut cat = IndexCatalog::new();
    cat.add_composite(
        "restaurants",
        vec![
            firestore_core::index::IndexedField::asc("city"),
            firestore_core::index::IndexedField::desc("avgRating"),
        ],
        IndexState::Ready,
    );
    cat.add_composite(
        "restaurants",
        vec![
            firestore_core::index::IndexedField::asc("type"),
            firestore_core::index::IndexedField::desc("avgRating"),
        ],
        IndexState::Ready,
    );
    let q = Query::parse("/restaurants")
        .unwrap()
        .filter("city", FilterOp::Eq, "SF")
        .filter("type", FilterOp::Eq, "BBQ")
        .order_by("avgRating", Direction::Desc);
    c.bench_function("planner/zigzag_selection", |b| {
        b.iter(|| black_box(plan_query(&mut cat, DirectoryId(1), black_box(&q)).unwrap()))
    });
}

fn engine_with_docs(n: usize) -> FirestoreDatabase {
    let clock = SimClock::new();
    clock.advance(Duration::from_secs(1));
    let db = FirestoreDatabase::create_default(SpannerDatabase::new(clock));
    for i in 0..n {
        let d = sample_doc(i);
        let fields: Vec<(String, Value)> = d.fields.into_iter().collect();
        db.commit_writes(vec![Write::set(d.name, fields)], &Caller::Service)
            .unwrap();
    }
    db
}

fn bench_engine(c: &mut Criterion) {
    let db = engine_with_docs(2_000);
    let mut rng = SimRng::new(1);

    c.bench_function("engine/point_get", |b| {
        b.iter(|| {
            let i = rng.gen_range(2_000) as usize;
            black_box(
                db.get_document(
                    &doc(&format!("/restaurants/r{i:05}")),
                    Consistency::Strong,
                    &Caller::Service,
                )
                .unwrap(),
            )
        })
    });

    let zigzag = Query::parse("/restaurants")
        .unwrap()
        .filter("city", FilterOp::Eq, "SF")
        .filter("type", FilterOp::Eq, "BBQ");
    c.bench_function("engine/zigzag_query_2k_docs", |b| {
        b.iter(|| {
            black_box(
                db.run_query(&zigzag, Consistency::Strong, &Caller::Service)
                    .unwrap(),
            )
        })
    });

    let mut i = 0usize;
    c.bench_function("engine/single_doc_commit", |b| {
        b.iter(|| {
            i += 1;
            let d = sample_doc(3_000 + i);
            let fields: Vec<(String, Value)> = d.fields.into_iter().collect();
            black_box(
                db.commit_writes(vec![Write::set(d.name, fields)], &Caller::Service)
                    .unwrap(),
            )
        })
    });
}

fn bench_realtime(c: &mut Criterion) {
    use realtime::{RealtimeCache, RealtimeOptions};
    let clock = SimClock::new();
    clock.advance(Duration::from_secs(1));
    let spanner = SpannerDatabase::new(clock);
    let db = FirestoreDatabase::create_default(spanner.clone());
    let cache = RealtimeCache::new(spanner.truetime().clone(), RealtimeOptions::default());
    db.set_observer(cache.observer_for(db.directory()));
    // 100 listeners on the collection.
    let conns: Vec<_> = (0..100)
        .map(|_| {
            let conn = cache.connect();
            conn.listen(
                db.directory(),
                Query::parse("/restaurants").unwrap(),
                vec![],
                spanner.strong_read_ts(),
            );
            conn.poll();
            conn
        })
        .collect();
    // One document rewritten each iteration keeps the result set bounded:
    // the measurement is the per-write fan-out cost, not view growth.
    let mut i = 0i64;
    c.bench_function("realtime/write_fanout_100_listeners", |b| {
        b.iter(|| {
            i += 1;
            db.commit_writes(
                vec![Write::set(
                    doc("/restaurants/hot"),
                    [("seq", Value::Int(i))],
                )],
                &Caller::Service,
            )
            .unwrap();
            cache.tick();
            for c in &conns {
                black_box(c.poll());
            }
        })
    });
}

criterion_group!(
    benches,
    bench_encoding,
    bench_index,
    bench_planner,
    bench_engine,
    bench_realtime
);
criterion_main!(benches);
