//! Target-utilization auto-scaling with a reaction delay.
//!
//! "All components build on Google's auto-scaling infrastructure, so the
//! number of tasks in a given component adjusts in response to load" (§IV-C)
//! — but "auto-scaling incorporates delays because short-lived traffic
//! spikes do not merit auto-scaling". The delay is what produces the
//! transient p99 inflation of Figs 7–8 at high ramp rates, and the prompt
//! Frontend scale-up is why Fig 9's notification latency stays flat.

use simkit::{Duration, Timestamp};

/// An auto-scaler for one task pool.
#[derive(Clone, Debug)]
pub struct AutoScaler {
    /// Minimum pool size.
    pub min_tasks: usize,
    /// Maximum pool size.
    pub max_tasks: usize,
    /// Utilization the scaler steers toward (e.g. 0.6).
    pub target_utilization: f64,
    /// Utilization must stay out of band for this long before acting.
    pub reaction_delay: Duration,
    /// Largest multiplicative step per decision (e.g. 2.0 = at most
    /// doubling).
    pub max_step: f64,
    /// Time the pool first left the target band (None = in band).
    out_of_band_since: Option<Timestamp>,
}

impl AutoScaler {
    /// A scaler with typical parameters.
    pub fn new(min_tasks: usize, max_tasks: usize) -> AutoScaler {
        AutoScaler {
            min_tasks,
            max_tasks,
            target_utilization: 0.6,
            reaction_delay: Duration::from_secs(30),
            max_step: 2.0,
            out_of_band_since: None,
        }
    }

    /// Observe the pool's utilization at `now`; returns the new size when a
    /// scaling decision fires.
    pub fn observe(
        &mut self,
        current_tasks: usize,
        utilization: f64,
        now: Timestamp,
    ) -> Option<usize> {
        let hysteresis = 0.15;
        let in_band = utilization <= self.target_utilization + hysteresis
            && (utilization >= self.target_utilization - 2.0 * hysteresis
                || current_tasks <= self.min_tasks);
        if in_band {
            self.out_of_band_since = None;
            return None;
        }
        let since = *self.out_of_band_since.get_or_insert(now);
        if now.saturating_sub(since) < self.reaction_delay {
            return None;
        }
        self.out_of_band_since = None;
        // Steer capacity so utilization would hit the target.
        let ideal = (current_tasks as f64 * utilization / self.target_utilization).ceil();
        let stepped = if ideal > current_tasks as f64 {
            ideal.min(current_tasks as f64 * self.max_step)
        } else {
            ideal.max(current_tasks as f64 / self.max_step)
        };
        let new = (stepped as usize).clamp(self.min_tasks, self.max_tasks);
        if new == current_tasks {
            None
        } else {
            Some(new)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler() -> AutoScaler {
        let mut s = AutoScaler::new(2, 64);
        s.reaction_delay = Duration::from_secs(10);
        s
    }

    #[test]
    fn stays_put_in_band() {
        let mut s = scaler();
        for sec in 0..100 {
            assert_eq!(s.observe(4, 0.6, Timestamp::from_secs(sec)), None);
        }
    }

    #[test]
    fn scales_up_after_delay() {
        let mut s = scaler();
        assert_eq!(
            s.observe(4, 0.95, Timestamp::from_secs(0)),
            None,
            "within delay"
        );
        assert_eq!(s.observe(4, 0.95, Timestamp::from_secs(5)), None);
        let new = s.observe(4, 0.95, Timestamp::from_secs(10));
        assert!(new.is_some());
        assert!(new.unwrap() > 4);
        assert!(new.unwrap() <= 8, "step-limited to 2x");
    }

    #[test]
    fn short_spike_does_not_scale() {
        let mut s = scaler();
        assert_eq!(s.observe(4, 0.95, Timestamp::from_secs(0)), None);
        // Back in band: the spike ended; the timer resets.
        assert_eq!(s.observe(4, 0.6, Timestamp::from_secs(5)), None);
        assert_eq!(s.observe(4, 0.95, Timestamp::from_secs(6)), None);
        assert_eq!(
            s.observe(4, 0.95, Timestamp::from_secs(10)),
            None,
            "timer restarted at t=6"
        );
    }

    #[test]
    fn scales_down_when_idle() {
        let mut s = scaler();
        s.observe(32, 0.05, Timestamp::from_secs(0));
        let new = s.observe(32, 0.05, Timestamp::from_secs(10)).unwrap();
        assert!(new < 32);
        assert!(new >= 16, "step-limited shrink");
    }

    #[test]
    fn respects_bounds() {
        let mut s = scaler();
        s.observe(64, 1.0, Timestamp::from_secs(0));
        assert_eq!(
            s.observe(64, 1.0, Timestamp::from_secs(10)),
            None,
            "already at max"
        );
        s.observe(2, 0.0, Timestamp::from_secs(20));
        assert_eq!(
            s.observe(2, 0.0, Timestamp::from_secs(40)),
            None,
            "already at min"
        );
    }
}
