#![warn(missing_docs)]

//! The multi-tenant Firestore service (paper §IV-A..C, §VI).
//!
//! "Firestore's multi-tenant architecture is key to its serverless
//! scalability. All its components ... are shared across large numbers of
//! Firestore databases." This crate implements the serving machinery that
//! makes that safe and billable:
//!
//! * [`fairshare`] — the fair-CPU-share scheduler keyed by database id that
//!   keeps one database's traffic from starving others (Fig 11's A/B
//!   switch);
//! * [`autoscale`] — target-utilization auto-scaling with a reaction delay
//!   ("auto-scaling incorporates delays because short-lived traffic spikes
//!   do not merit auto-scaling", §IV-C);
//! * [`admission`] — per-database in-flight RPC limits and load shedding
//!   (the "low-tech manual tool" of §VI plus targeted shedding of §IV-C);
//! * [`conformance`] — the 500/50/5 conforming-traffic rule (§IV-C);
//! * [`billing`] — operation metering with a daily free quota ("serverless
//!   pay-as-you-go pricing together with a daily free quota", §I);
//! * [`router`] — global routing of requests to the region hosting each
//!   database (§IV-A);
//! * [`tenants`] — the tenant control plane: registry with per-database
//!   limits and lifecycle, enforced conformance/quota/overload policy
//!   behind the data path's gate seam, shed ordering, and a throttle
//!   ledger;
//! * [`service`] — the assembled [`service::FirestoreService`]: database
//!   provisioning on shared infrastructure, metered request entry points,
//!   and real-time listener registration.

pub mod admission;
pub mod autoscale;
pub mod billing;
pub mod conformance;
pub mod fairshare;
pub mod router;
pub mod service;
pub mod tenants;

pub use admission::AdmissionController;
pub use autoscale::AutoScaler;
pub use billing::{BillingMeter, FreeQuota, Usage};
pub use conformance::TrafficConformance;
pub use fairshare::{CpuScheduler, Job, SchedulingMode};
pub use service::{FirestoreService, ServedRequest, ServiceOptions};
pub use tenants::{ShedPolicy, TenantControl, TenantLimits, TenantState, ThrottleReason};
