//! The conforming-traffic ("500/50/5") rule (paper §IV-C).
//!
//! "Firestore requires conforming traffic to grow progressively — increase
//! at most 50% every 5 minutes, starting from a 500 QPS base. Firestore is
//! designed to handle spiky traffic and will still accept traffic that
//! violates this rule as long as it can maintain isolation." The allowance
//! is "designed to conservatively match Spanner's splitting behavior"
//! (§IV-D1): load-based splits need time to react.
//!
//! The allowance therefore grows only under *sustained* traffic: a growth
//! period must actually carry load near the current allowance before the
//! next +50% step is granted, because an idle database gives Spanner
//! nothing to split on. A database's first-ever request starts at the
//! 500 QPS base — there is no retroactive compounding for time spent idle —
//! and going idle for a full period drops the allowance back to base.

use parking_lot::Mutex;
use simkit::{Duration, Timestamp};
use std::collections::HashMap;

/// Parameters of the rule.
#[derive(Clone, Copy, Debug)]
pub struct ConformanceRule {
    /// Base allowance (500 QPS).
    pub base_qps: f64,
    /// Growth factor per period (1.5 = +50%).
    pub growth: f64,
    /// Growth period (5 minutes).
    pub period: Duration,
    /// Fraction of the current allowance a period's average QPS must reach
    /// for the next growth step to be granted. Below it the traffic is not
    /// "sustained" — Spanner has nothing to split on — and the allowance
    /// falls back to base.
    pub sustain_fraction: f64,
    /// Width of the short-term rate window behind
    /// [`TrafficConformance::observed_qps`].
    pub rate_window: Duration,
}

impl Default for ConformanceRule {
    fn default() -> Self {
        ConformanceRule {
            base_qps: 500.0,
            growth: 1.5,
            period: Duration::from_secs(300),
            sustain_fraction: 0.5,
            rate_window: Duration::from_secs(1),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct DbTraffic {
    /// The allowance last granted.
    allowance: f64,
    /// Start of the current growth period.
    period_start: Timestamp,
    /// Operations recorded inside the current growth period.
    period_ops: u64,
    /// Start of the current short rate window.
    win_start: Timestamp,
    /// Operations recorded inside the current rate window.
    win_ops: u64,
    /// Rate over the last *completed* rate window (0 after an idle gap).
    prev_rate: f64,
}

/// Tracks per-database traffic against the rule.
pub struct TrafficConformance {
    rule: ConformanceRule,
    state: Mutex<HashMap<String, DbTraffic>>,
}

impl TrafficConformance {
    /// Create with the standard 500/50/5 rule.
    pub fn new(rule: ConformanceRule) -> TrafficConformance {
        TrafficConformance {
            rule,
            state: Mutex::new(HashMap::new()),
        }
    }

    /// The rule in force.
    pub fn rule(&self) -> ConformanceRule {
        self.rule
    }

    fn entry_rolled<'a>(
        &self,
        st: &'a mut HashMap<String, DbTraffic>,
        database: &str,
        now: Timestamp,
    ) -> &'a mut DbTraffic {
        let entry = st.entry(database.to_string()).or_insert(DbTraffic {
            // First-ever request: start at base, right now. No credit for
            // any time before the database was first seen.
            allowance: self.rule.base_qps,
            period_start: now,
            period_ops: 0,
            win_start: now,
            win_ops: 0,
            prev_rate: 0.0,
        });
        // Close out any completed growth periods. Only a period whose
        // average QPS reached `sustain_fraction` of the allowance earns the
        // +50% step; an idle (or near-idle) period resets to base.
        let period_secs = self.rule.period.as_millis_f64() / 1000.0;
        while now.saturating_sub(entry.period_start) >= self.rule.period {
            let period_qps = entry.period_ops as f64 / period_secs;
            if period_qps >= self.rule.sustain_fraction * entry.allowance {
                entry.allowance *= self.rule.growth;
            } else {
                entry.allowance = self.rule.base_qps;
            }
            entry.period_ops = 0;
            entry.period_start = entry.period_start + self.rule.period;
        }
        // Close out the short rate window.
        let gap = now.saturating_sub(entry.win_start);
        if gap >= self.rule.rate_window {
            entry.prev_rate = if gap < self.rule.rate_window + self.rule.rate_window {
                entry.win_ops as f64 / (self.rule.rate_window.as_millis_f64() / 1000.0)
            } else {
                0.0 // idle gap: the last window's rate has aged out
            };
            entry.win_start = now;
            entry.win_ops = 0;
        }
        entry
    }

    /// Record `n` operations for `database` at `now`. The control plane
    /// calls this on every admitted *and* rejected request so the observed
    /// rate reflects offered load, not served load.
    pub fn record(&self, database: &str, n: u64, now: Timestamp) {
        let mut st = self.state.lock();
        let entry = self.entry_rolled(&mut st, database, now);
        entry.period_ops += n;
        entry.win_ops += n;
    }

    /// The observed short-term request rate for `database` at `now`: the
    /// last completed rate window, or the current partial window spread over
    /// the full window width when that is higher (so a burst inside one
    /// simulated instant is still visible).
    pub fn observed_qps(&self, database: &str, now: Timestamp) -> f64 {
        let mut st = self.state.lock();
        let entry = self.entry_rolled(&mut st, database, now);
        let win_secs = self.rule.rate_window.as_millis_f64() / 1000.0;
        entry.prev_rate.max(entry.win_ops as f64 / win_secs)
    }

    /// The current allowance for `database` at `now`.
    pub fn allowance(&self, database: &str, now: Timestamp) -> f64 {
        let mut st = self.state.lock();
        self.entry_rolled(&mut st, database, now).allowance
    }

    /// Whether `qps` conforms for `database` at `now`. Non-conforming
    /// traffic is *not* rejected outright (the paper accepts it while
    /// isolation holds); the control plane sheds non-conforming tenants
    /// first when the backend is overloaded.
    pub fn is_conforming(&self, database: &str, qps: f64, now: Timestamp) -> bool {
        qps <= self.allowance(database, now)
    }

    /// Whether `database`'s *observed* traffic conforms at `now`.
    pub fn observed_conforming(&self, database: &str, now: Timestamp) -> bool {
        let mut st = self.state.lock();
        let entry = self.entry_rolled(&mut st, database, now);
        let win_secs = self.rule.rate_window.as_millis_f64() / 1000.0;
        let qps = entry.prev_rate.max(entry.win_ops as f64 / win_secs);
        qps <= entry.allowance
    }

    /// The time needed to ramp from the base to `target_qps` while
    /// conforming (the "steady exponential ramp-up" best practice, §V-B1).
    pub fn ramp_time_to(&self, target_qps: f64) -> Duration {
        if target_qps <= self.rule.base_qps {
            return Duration::ZERO;
        }
        let periods = (target_qps / self.rule.base_qps).ln() / self.rule.growth.ln();
        Duration::from_millis_f64(periods.ceil() * self.rule.period.as_millis_f64())
    }
}

impl Default for TrafficConformance {
    fn default() -> Self {
        TrafficConformance::new(ConformanceRule::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive one period of traffic at `qps`, spread over 1-second steps.
    fn drive_period(t: &TrafficConformance, db: &str, qps: u64, from: Timestamp) -> Timestamp {
        let period_secs = t.rule().period.as_millis_f64() as u64 / 1000;
        let mut now = from;
        for _ in 0..period_secs {
            t.record(db, qps, now);
            now = now + Duration::from_secs(1);
        }
        now
    }

    #[test]
    fn base_allowance_is_500() {
        let t = TrafficConformance::default();
        assert!(t.is_conforming("db", 499.0, Timestamp::ZERO));
        assert!(t.is_conforming("db", 500.0, Timestamp::ZERO));
        assert!(!t.is_conforming("db", 501.0, Timestamp::ZERO));
    }

    #[test]
    fn ramp_schedule_matches_paper_under_sustained_traffic() {
        // The paper's 500/50/5 schedule: a tenant driving its full
        // allowance earns 500 → 750 → 1125 → 1687.5 at 5-minute steps.
        let t = TrafficConformance::default();
        let mut now = Timestamp::from_secs(1);
        assert_eq!(t.allowance("db", now), 500.0);
        now = drive_period(&t, "db", 500, now);
        assert_eq!(t.allowance("db", now), 750.0);
        now = drive_period(&t, "db", 750, now);
        assert_eq!(t.allowance("db", now), 1125.0);
        now = drive_period(&t, "db", 1125, now);
        assert_eq!(t.allowance("db", now), 1687.5);
    }

    #[test]
    fn cold_start_begins_at_base_with_no_retroactive_growth() {
        // A database first seen an hour into the simulation gets exactly
        // the 500-op base — idle wall-clock time earns nothing.
        let t = TrafficConformance::default();
        assert_eq!(t.allowance("late", Timestamp::from_secs(3600)), 500.0);
        // And staying idle after the first request earns nothing either.
        assert_eq!(t.allowance("late", Timestamp::from_secs(7200)), 500.0);
    }

    #[test]
    fn idle_period_resets_allowance_to_base() {
        let t = TrafficConformance::default();
        let mut now = Timestamp::from_secs(1);
        now = drive_period(&t, "db", 500, now);
        assert_eq!(t.allowance("db", now), 750.0);
        // One silent period: back to base.
        now = now + Duration::from_secs(300);
        assert_eq!(t.allowance("db", now), 500.0);
    }

    #[test]
    fn trickle_traffic_does_not_grow_allowance() {
        // 10 QPS is far below the sustain fraction of 500: no growth step.
        let t = TrafficConformance::default();
        let mut now = Timestamp::from_secs(1);
        for _ in 0..3 {
            now = drive_period(&t, "db", 10, now);
        }
        assert_eq!(t.allowance("db", now), 500.0);
    }

    #[test]
    fn databases_are_independent() {
        let t = TrafficConformance::default();
        let mut now = Timestamp::from_secs(1);
        now = drive_period(&t, "old", 500, now);
        assert_eq!(t.allowance("old", now), 750.0);
        // A new database starts fresh at its first-seen time.
        assert_eq!(t.allowance("new", now), 500.0);
    }

    #[test]
    fn observed_qps_sees_bursts_within_one_window() {
        let t = TrafficConformance::default();
        let now = Timestamp::from_secs(5);
        t.record("db", 10_000, now);
        assert!(t.observed_qps("db", now) >= 10_000.0);
        assert!(!t.observed_conforming("db", now));
        // After an idle gap the burst ages out.
        let later = now + Duration::from_secs(10);
        assert_eq!(t.observed_qps("db", later), 0.0);
        assert!(t.observed_conforming("db", later));
    }

    #[test]
    fn ramp_time_matches_growth() {
        let t = TrafficConformance::default();
        assert_eq!(t.ramp_time_to(400.0), Duration::ZERO);
        // 500 → 8000 ≈ 6.8 growth steps → 7 periods = 35 min.
        let ramp = t.ramp_time_to(8000.0);
        assert_eq!(ramp, Duration::from_secs(7 * 300));
    }
}
