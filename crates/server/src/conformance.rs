//! The conforming-traffic ("500/50/5") rule (paper §IV-C).
//!
//! "Firestore requires conforming traffic to grow progressively — increase
//! at most 50% every 5 minutes, starting from a 500 QPS base. Firestore is
//! designed to handle spiky traffic and will still accept traffic that
//! violates this rule as long as it can maintain isolation." The allowance
//! is "designed to conservatively match Spanner's splitting behavior"
//! (§IV-D1): load-based splits need time to react.

use parking_lot::Mutex;
use simkit::{Duration, Timestamp};
use std::collections::HashMap;

/// Parameters of the rule.
#[derive(Clone, Copy, Debug)]
pub struct ConformanceRule {
    /// Base allowance (500 QPS).
    pub base_qps: f64,
    /// Growth factor per period (1.5 = +50%).
    pub growth: f64,
    /// Growth period (5 minutes).
    pub period: Duration,
}

impl Default for ConformanceRule {
    fn default() -> Self {
        ConformanceRule {
            base_qps: 500.0,
            growth: 1.5,
            period: Duration::from_secs(300),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct DbTraffic {
    /// The allowance last granted.
    allowance: f64,
    /// When the allowance last grew.
    last_growth: Timestamp,
}

/// Tracks per-database traffic against the rule.
pub struct TrafficConformance {
    rule: ConformanceRule,
    state: Mutex<HashMap<String, DbTraffic>>,
}

impl TrafficConformance {
    /// Create with the standard 500/50/5 rule.
    pub fn new(rule: ConformanceRule) -> TrafficConformance {
        TrafficConformance {
            rule,
            state: Mutex::new(HashMap::new()),
        }
    }

    /// The current allowance for `database` at `now`, growing it when a
    /// full period of sustained traffic has elapsed.
    pub fn allowance(&self, database: &str, now: Timestamp) -> f64 {
        let mut st = self.state.lock();
        let entry = st.entry(database.to_string()).or_insert(DbTraffic {
            allowance: self.rule.base_qps,
            last_growth: now,
        });
        // Grow once per elapsed period.
        while now.saturating_sub(entry.last_growth) >= self.rule.period {
            entry.allowance *= self.rule.growth;
            entry.last_growth = entry.last_growth + self.rule.period;
        }
        entry.allowance
    }

    /// Whether `qps` conforms for `database` at `now`. Non-conforming
    /// traffic is *not* rejected (the paper accepts it while isolation
    /// holds); callers use this signal for observability and SLO
    /// accounting.
    pub fn is_conforming(&self, database: &str, qps: f64, now: Timestamp) -> bool {
        qps <= self.allowance(database, now)
    }

    /// The time needed to ramp from the base to `target_qps` while
    /// conforming (the "steady exponential ramp-up" best practice, §V-B1).
    pub fn ramp_time_to(&self, target_qps: f64) -> Duration {
        if target_qps <= self.rule.base_qps {
            return Duration::ZERO;
        }
        let periods = (target_qps / self.rule.base_qps).ln() / self.rule.growth.ln();
        Duration::from_millis_f64(periods.ceil() * self.rule.period.as_millis_f64())
    }
}

impl Default for TrafficConformance {
    fn default() -> Self {
        TrafficConformance::new(ConformanceRule::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_allowance_is_500() {
        let t = TrafficConformance::default();
        assert!(t.is_conforming("db", 499.0, Timestamp::ZERO));
        assert!(t.is_conforming("db", 500.0, Timestamp::ZERO));
        assert!(!t.is_conforming("db", 501.0, Timestamp::ZERO));
    }

    #[test]
    fn allowance_grows_50_percent_per_5_minutes() {
        let t = TrafficConformance::default();
        let _ = t.allowance("db", Timestamp::ZERO);
        assert_eq!(t.allowance("db", Timestamp::from_secs(299)), 500.0);
        assert_eq!(t.allowance("db", Timestamp::from_secs(300)), 750.0);
        assert_eq!(t.allowance("db", Timestamp::from_secs(600)), 1125.0);
        // Multiple periods at once compound.
        assert_eq!(t.allowance("db", Timestamp::from_secs(900)), 1687.5);
    }

    #[test]
    fn databases_are_independent() {
        let t = TrafficConformance::default();
        let _ = t.allowance("old", Timestamp::ZERO);
        let _ = t.allowance("old", Timestamp::from_secs(600));
        // A new database starts fresh at its first-seen time.
        assert_eq!(t.allowance("new", Timestamp::from_secs(600)), 500.0);
        assert!(t.allowance("old", Timestamp::from_secs(600)) > 500.0);
    }

    #[test]
    fn ramp_time_matches_growth() {
        let t = TrafficConformance::default();
        assert_eq!(t.ramp_time_to(400.0), Duration::ZERO);
        // 500 → 8000 ≈ 6.8 growth steps → 7 periods = 35 min.
        let ramp = t.ramp_time_to(8000.0);
        assert_eq!(ramp, Duration::from_secs(7 * 300));
    }
}
