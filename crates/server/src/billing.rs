//! Operation metering, billing, and the daily free quota.
//!
//! "Firestore's billing model is primarily based on three components:
//! document reads, writes, deletes ... also charges for the amount of data
//! stored and network egress. Firestore provides a free quota for each of
//! these dimensions, resetting daily" (§IV-B). Idle databases cost nothing —
//! "at low scale QPS and storage consumption, Firestore costs close to
//! nothing" (§I) — and work served from the client SDK's local cache is
//! never billed (§IV-E).

use parking_lot::Mutex;
use simkit::Timestamp;
use std::collections::HashMap;

/// The daily free allowances (modeled on the documented Firestore free
/// tier).
#[derive(Clone, Copy, Debug)]
pub struct FreeQuota {
    /// Document reads per day.
    pub reads_per_day: u64,
    /// Document writes per day.
    pub writes_per_day: u64,
    /// Document deletes per day.
    pub deletes_per_day: u64,
    /// Stored bytes that are free.
    pub free_storage_bytes: u64,
}

impl Default for FreeQuota {
    fn default() -> Self {
        FreeQuota {
            reads_per_day: 50_000,
            writes_per_day: 20_000,
            deletes_per_day: 20_000,
            free_storage_bytes: 1 << 30, // 1 GiB
        }
    }
}

/// Prices per unit beyond the free quota (cents per 100k ops / GiB-month,
/// abstract units for the simulation).
#[derive(Clone, Copy, Debug)]
pub struct PriceSheet {
    /// Per document read.
    pub per_read: f64,
    /// Per document write.
    pub per_write: f64,
    /// Per document delete.
    pub per_delete: f64,
    /// Per stored byte per day.
    pub per_byte_day: f64,
}

impl Default for PriceSheet {
    fn default() -> Self {
        // Modeled on list prices: $0.06/100k reads, $0.18/100k writes,
        // $0.02/100k deletes, $0.18/GiB-month.
        PriceSheet {
            per_read: 0.06 / 100_000.0,
            per_write: 0.18 / 100_000.0,
            per_delete: 0.02 / 100_000.0,
            per_byte_day: 0.18 / (30.0 * (1u64 << 30) as f64),
        }
    }
}

/// One database's usage counters for the current day.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Usage {
    /// Billed document reads (each document returned by a query counts,
    /// §IV-B: billing "based on only the number of documents in the result
    /// set").
    pub reads: u64,
    /// Document writes.
    pub writes: u64,
    /// Document deletes.
    pub deletes: u64,
    /// Current stored bytes (gauge, not a daily counter).
    pub storage_bytes: u64,
    /// Real-time query snapshots delivered (reads for billing purposes).
    pub realtime_docs: u64,
}

impl Usage {
    /// Total billable read-ops (queries + realtime deliveries).
    pub fn total_reads(&self) -> u64 {
        self.reads + self.realtime_docs
    }
}

/// The bill for one database-day.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Bill {
    /// Reads beyond quota.
    pub billed_reads: u64,
    /// Writes beyond quota.
    pub billed_writes: u64,
    /// Deletes beyond quota.
    pub billed_deletes: u64,
    /// Bytes beyond quota.
    pub billed_storage_bytes: u64,
    /// Total charge in dollars.
    pub total_dollars: f64,
}

struct MeterState {
    usage: HashMap<String, Usage>,
    day_start: Timestamp,
}

/// The metering component: one per region, shared across databases.
pub struct BillingMeter {
    quota: FreeQuota,
    prices: PriceSheet,
    state: Mutex<MeterState>,
    /// Seconds per billing day (daily in production; configurable so tests
    /// and experiments can compress time).
    pub day_seconds: u64,
}

impl BillingMeter {
    /// Create a meter.
    pub fn new(quota: FreeQuota, prices: PriceSheet) -> BillingMeter {
        BillingMeter {
            quota,
            prices,
            state: Mutex::new(MeterState {
                usage: HashMap::new(),
                day_start: Timestamp::ZERO,
            }),
            day_seconds: 86_400,
        }
    }

    /// Record document reads.
    pub fn record_reads(&self, database: &str, n: u64) {
        self.state
            .lock()
            .usage
            .entry(database.to_string())
            .or_default()
            .reads += n;
    }

    /// Record document writes.
    pub fn record_writes(&self, database: &str, n: u64) {
        self.state
            .lock()
            .usage
            .entry(database.to_string())
            .or_default()
            .writes += n;
    }

    /// Record document deletes.
    pub fn record_deletes(&self, database: &str, n: u64) {
        self.state
            .lock()
            .usage
            .entry(database.to_string())
            .or_default()
            .deletes += n;
    }

    /// Record real-time snapshot documents delivered.
    pub fn record_realtime_docs(&self, database: &str, n: u64) {
        self.state
            .lock()
            .usage
            .entry(database.to_string())
            .or_default()
            .realtime_docs += n;
    }

    /// Update the storage gauge.
    pub fn set_storage(&self, database: &str, bytes: u64) {
        self.state
            .lock()
            .usage
            .entry(database.to_string())
            .or_default()
            .storage_bytes = bytes;
    }

    /// Current usage of one database.
    pub fn usage(&self, database: &str) -> Usage {
        self.state
            .lock()
            .usage
            .get(database)
            .copied()
            .unwrap_or_default()
    }

    /// Usage across all databases (for the Fig 6 production statistics).
    pub fn all_usage(&self) -> Vec<(String, Usage)> {
        self.state
            .lock()
            .usage
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Compute the day's bill for one database.
    pub fn bill(&self, database: &str) -> Bill {
        let u = self.usage(database);
        let billed_reads = u.total_reads().saturating_sub(self.quota.reads_per_day);
        let billed_writes = u.writes.saturating_sub(self.quota.writes_per_day);
        let billed_deletes = u.deletes.saturating_sub(self.quota.deletes_per_day);
        let billed_storage_bytes = u
            .storage_bytes
            .saturating_sub(self.quota.free_storage_bytes);
        let total_dollars = billed_reads as f64 * self.prices.per_read
            + billed_writes as f64 * self.prices.per_write
            + billed_deletes as f64 * self.prices.per_delete
            + billed_storage_bytes as f64 * self.prices.per_byte_day;
        Bill {
            billed_reads,
            billed_writes,
            billed_deletes,
            billed_storage_bytes,
            total_dollars,
        }
    }

    /// The free quota in force.
    pub fn quota(&self) -> FreeQuota {
        self.quota
    }

    /// Whether `database` has exhausted any daily free-quota dimension.
    /// Only meaningful for free-tier tenants: paying tenants run past the
    /// quota and get billed instead of blocked.
    pub fn quota_exhausted(&self, database: &str) -> bool {
        let u = self.usage(database);
        u.total_reads() >= self.quota.reads_per_day
            || u.writes >= self.quota.writes_per_day
            || u.deletes >= self.quota.deletes_per_day
    }

    /// Time until the next daily quota reset — the `retry_after` a
    /// quota-exhausted free-tier tenant is handed.
    pub fn time_to_day_roll(&self, now: Timestamp) -> simkit::Duration {
        let st = self.state.lock();
        let elapsed = now.saturating_sub(st.day_start);
        let day = simkit::Duration::from_secs(self.day_seconds);
        day.saturating_sub(elapsed)
    }

    /// Roll the billing day if `now` has passed the day boundary; counters
    /// reset (storage gauge persists).
    pub fn maybe_roll_day(&self, now: Timestamp) {
        let mut st = self.state.lock();
        if now.saturating_sub(st.day_start).as_secs_f64() >= self.day_seconds as f64 {
            st.day_start = now;
            for u in st.usage.values_mut() {
                let storage = u.storage_bytes;
                *u = Usage {
                    storage_bytes: storage,
                    ..Usage::default()
                };
            }
        }
    }
}

impl Default for BillingMeter {
    fn default() -> Self {
        BillingMeter::new(FreeQuota::default(), PriceSheet::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_database_costs_nothing() {
        let m = BillingMeter::default();
        assert_eq!(m.bill("idle").total_dollars, 0.0);
    }

    #[test]
    fn usage_below_quota_is_free() {
        let m = BillingMeter::default();
        m.record_reads("db", 49_999);
        m.record_writes("db", 19_999);
        m.set_storage("db", 1 << 29);
        let b = m.bill("db");
        assert_eq!(b.billed_reads, 0);
        assert_eq!(b.billed_writes, 0);
        assert_eq!(b.total_dollars, 0.0);
    }

    #[test]
    fn usage_beyond_quota_is_billed() {
        let m = BillingMeter::default();
        m.record_reads("db", 150_000);
        m.record_writes("db", 120_000);
        m.record_deletes("db", 20_001);
        let b = m.bill("db");
        assert_eq!(b.billed_reads, 100_000);
        assert_eq!(b.billed_writes, 100_000);
        assert_eq!(b.billed_deletes, 1);
        assert!(
            (b.total_dollars - (0.06 + 0.18)).abs() < 0.01,
            "{}",
            b.total_dollars
        );
    }

    #[test]
    fn realtime_docs_count_as_reads() {
        let m = BillingMeter::default();
        m.record_realtime_docs("db", 60_000);
        assert_eq!(m.bill("db").billed_reads, 10_000);
    }

    #[test]
    fn quota_exhaustion_and_reset_horizon() {
        let m = BillingMeter::default();
        assert!(!m.quota_exhausted("db"));
        m.record_writes("db", 20_000);
        assert!(m.quota_exhausted("db"));
        // The retry horizon is the remainder of the billing day.
        let ra = m.time_to_day_roll(Timestamp::from_secs(86_000));
        assert_eq!(ra, simkit::Duration::from_secs(400));
        // After the roll the tenant is whole again.
        m.maybe_roll_day(Timestamp::from_secs(86_401));
        assert!(!m.quota_exhausted("db"));
    }

    #[test]
    fn daily_reset_keeps_storage() {
        let m = BillingMeter::default();
        m.record_reads("db", 100_000);
        m.set_storage("db", 42);
        m.maybe_roll_day(Timestamp::from_secs(86_401));
        let u = m.usage("db");
        assert_eq!(u.reads, 0);
        assert_eq!(u.storage_bytes, 42);
        // Not yet a day since the roll: no further reset.
        m.record_reads("db", 7);
        m.maybe_roll_day(Timestamp::from_secs(86_500));
        assert_eq!(m.usage("db").reads, 7);
    }
}
