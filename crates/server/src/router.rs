//! Global routing (paper §IV-A).
//!
//! "Firestore RPCs from the application get routed and distributed across
//! the Frontend tasks in the region where the database is located." A
//! customer picks the database's location at creation time; the global
//! router maps database ids to regions and rejects requests for unknown
//! databases.

use parking_lot::RwLock;
use std::collections::HashMap;

/// A region identifier, e.g. `nam5` or `eur3`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RegionId(pub String);

/// The global routing table.
#[derive(Default)]
pub struct Router {
    table: RwLock<HashMap<String, RegionId>>,
}

impl Router {
    /// Empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Register a database in a region (at creation time; placement is
    /// immutable thereafter, as in production).
    pub fn register(&self, database: &str, region: RegionId) -> Result<(), RouteError> {
        let mut t = self.table.write();
        if t.contains_key(database) {
            return Err(RouteError::AlreadyRegistered);
        }
        t.insert(database.to_string(), region);
        Ok(())
    }

    /// Resolve the region serving `database`.
    pub fn route(&self, database: &str) -> Result<RegionId, RouteError> {
        self.table
            .read()
            .get(database)
            .cloned()
            .ok_or(RouteError::UnknownDatabase)
    }

    /// Databases hosted in `region`.
    pub fn databases_in(&self, region: &RegionId) -> Vec<String> {
        self.table
            .read()
            .iter()
            .filter(|(_, r)| *r == region)
            .map(|(d, _)| d.clone())
            .collect()
    }
}

/// Routing errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// No such database.
    UnknownDatabase,
    /// The database already has a location.
    AlreadyRegistered,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_to_registered_region() {
        let r = Router::new();
        r.register("app1", RegionId("nam5".into())).unwrap();
        r.register("app2", RegionId("eur3".into())).unwrap();
        assert_eq!(r.route("app1").unwrap(), RegionId("nam5".into()));
        assert_eq!(r.route("app2").unwrap(), RegionId("eur3".into()));
        assert_eq!(r.route("ghost"), Err(RouteError::UnknownDatabase));
    }

    #[test]
    fn placement_is_immutable() {
        let r = Router::new();
        r.register("app", RegionId("nam5".into())).unwrap();
        assert_eq!(
            r.register("app", RegionId("eur3".into())),
            Err(RouteError::AlreadyRegistered)
        );
    }

    #[test]
    fn region_listing() {
        let r = Router::new();
        r.register("a", RegionId("nam5".into())).unwrap();
        r.register("b", RegionId("nam5".into())).unwrap();
        r.register("c", RegionId("eur3".into())).unwrap();
        let mut in_nam5 = r.databases_in(&RegionId("nam5".into()));
        in_nam5.sort();
        assert_eq!(in_nam5, vec!["a", "b"]);
    }
}
