//! The tenant control plane: registry, lifecycle, limits, and throttles.
//!
//! The paper's serving layer multiplexes thousands of customer databases
//! over shared Frontend/Backend pools while promising that "a tenant's
//! traffic cannot affect the latency of other tenants" (§IV-C). The
//! FoundationDB Record Layer makes the same promise the same way: a
//! management plane owns per-tenant accounting and throttling, and the
//! request path merely consults it. This module is that management plane:
//!
//! * a **registry** of provisioned databases with per-tenant limits
//!   (free-quota standing, listener caps, lifecycle state);
//! * a **conformance + quota + overload policy** evaluated on every request
//!   via the [`TenantGate`] seam the data path exposes — rejections are
//!   retriable [`FirestoreError::ResourceExhausted`] with a `retry_after`
//!   hint, except for suspended tenants which get a terminal
//!   `FailedPrecondition`;
//! * a **shed order** under Backend overload (§IV-C "targeted load-shedding
//!   to drop excess work before auto-scaling can take effect"):
//!   non-conforming tenants first, then batch traffic, never conforming
//!   interactive traffic;
//! * a **throttle ledger** recording every rejection for audit, plus
//!   bounded-cardinality per-tenant metrics (top-K heavy hitters by name,
//!   everyone else under `other`).

use crate::admission::AdmissionController;
use crate::billing::BillingMeter;
use crate::conformance::TrafficConformance;
use crate::fairshare::CpuScheduler;
use firestore_core::{FirestoreError, FirestoreResult, GatedOp, RequestClass, TenantGate};
use parking_lot::Mutex;
use simkit::{Duration, Obs, SimClock, Timestamp, TopK};
use std::collections::HashMap;
use std::sync::Arc;

/// Lifecycle state of a provisioned database.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantState {
    /// Serving normally.
    Provisioned,
    /// Administratively suspended (abuse, non-payment): every request is
    /// rejected with a terminal error — retrying will not help.
    Suspended,
}

/// Per-tenant limits, set at provisioning time and adjustable at runtime.
#[derive(Clone, Copy, Debug)]
pub struct TenantLimits {
    /// Free-tier tenants are *blocked* (not billed) once the daily free
    /// quota is exhausted; paying tenants run past it and get billed.
    pub free_tier: bool,
    /// Maximum concurrently registered real-time listeners.
    pub listener_cap: usize,
}

impl Default for TenantLimits {
    fn default() -> Self {
        TenantLimits {
            free_tier: false,
            listener_cap: 10_000,
        }
    }
}

/// Why a request was throttled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThrottleReason {
    /// The tenant is suspended.
    Suspended,
    /// A free-tier tenant exhausted its daily quota.
    QuotaExhausted,
    /// Shed under Backend overload as a non-conforming tenant.
    ShedNonConforming,
    /// Shed under Backend overload as batch traffic.
    ShedBatch,
    /// The tenant exceeded its listener cap.
    ListenerCap,
    /// New listener refused because the real-time fanout pipeline is under
    /// queue pressure; the effective listener cap shrinks with pressure.
    FanoutPressure,
}

impl ThrottleReason {
    /// Stable label for metrics and the ledger.
    pub fn label(self) -> &'static str {
        match self {
            ThrottleReason::Suspended => "suspended",
            ThrottleReason::QuotaExhausted => "quota_exhausted",
            ThrottleReason::ShedNonConforming => "shed_nonconforming",
            ThrottleReason::ShedBatch => "shed_batch",
            ThrottleReason::ListenerCap => "listener_cap",
            ThrottleReason::FanoutPressure => "fanout_pressure",
        }
    }
}

/// One audit-ledger entry: a request the control plane refused.
#[derive(Clone, Debug)]
pub struct ThrottleEntry {
    /// When.
    pub at: Timestamp,
    /// Which database.
    pub database: String,
    /// Which operation class.
    pub op: GatedOp,
    /// Interactive or batch.
    pub class: RequestClass,
    /// Why.
    pub reason: ThrottleReason,
    /// The backoff hint handed to the client (zero for terminal errors).
    pub retry_after: Duration,
}

/// Shed-policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct ShedPolicy {
    /// Backend backlog (queued jobs) beyond which the service starts
    /// shedding. Below it even wildly non-conforming traffic is accepted —
    /// the paper "will still accept traffic that violates this rule as long
    /// as it can maintain isolation."
    pub backlog_watermark: usize,
    /// Base `retry_after` for overload sheds; scaled by how far past the
    /// watermark the backlog is.
    pub shed_retry_base: Duration,
    /// Upper bound on any overload `retry_after` hint.
    pub shed_retry_cap: Duration,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        ShedPolicy {
            backlog_watermark: 1024,
            shed_retry_base: Duration::from_millis(100),
            shed_retry_cap: Duration::from_secs(5),
        }
    }
}

struct TenantRecord {
    state: TenantState,
    limits: TenantLimits,
    listeners: usize,
}

struct ControlState {
    tenants: HashMap<String, TenantRecord>,
    ledger: Vec<ThrottleEntry>,
    /// Heavy-hitter sketch feeding the bounded-cardinality `db` label.
    topk: TopK,
    /// Fraction of real-time connections under queue pressure (0.0–1.0),
    /// fed by the service tick from the Real-time Cache. New listener
    /// admissions shrink proportionally so fanout overload sheds at the
    /// front door, not only inside the pipeline.
    fanout_pressure: f64,
}

/// The control plane of one region. The data path holds per-database
/// [`DbGate`] handles onto it; the service consults it for admission caps
/// and shed decisions. It owns no request state of its own — it reads the
/// conformance tracker, the billing meter, and the Backend scheduler the
/// service already maintains.
pub struct TenantControl {
    clock: SimClock,
    conformance: Arc<TrafficConformance>,
    billing: Arc<BillingMeter>,
    backend: Arc<Mutex<CpuScheduler>>,
    admission: Arc<AdmissionController>,
    obs: Obs,
    policy: ShedPolicy,
    state: Mutex<ControlState>,
}

/// Cap on retained ledger entries; older entries age out first.
const LEDGER_CAP: usize = 4096;

/// How many tenants get their own metric label; the rest share `other`.
const METRIC_TOP_K: usize = 8;

impl TenantControl {
    /// Build the control plane over the service's shared components.
    pub fn new(
        clock: SimClock,
        conformance: Arc<TrafficConformance>,
        billing: Arc<BillingMeter>,
        backend: Arc<Mutex<CpuScheduler>>,
        admission: Arc<AdmissionController>,
        obs: Obs,
        policy: ShedPolicy,
    ) -> TenantControl {
        TenantControl {
            clock,
            conformance,
            billing,
            backend,
            admission,
            obs,
            policy,
            state: Mutex::new(ControlState {
                tenants: HashMap::new(),
                ledger: Vec::new(),
                topk: TopK::new(METRIC_TOP_K),
                fanout_pressure: 0.0,
            }),
        }
    }

    /// The shed policy in force.
    pub fn policy(&self) -> ShedPolicy {
        self.policy
    }

    // --- registry -----------------------------------------------------------

    /// Provision a tenant with default limits (idempotent).
    pub fn register(&self, database: &str) {
        self.register_with(database, TenantLimits::default());
    }

    /// Provision a tenant with explicit limits.
    pub fn register_with(&self, database: &str, limits: TenantLimits) {
        let mut st = self.state.lock();
        st.tenants
            .entry(database.to_string())
            .and_modify(|r| r.limits = limits)
            .or_insert(TenantRecord {
                state: TenantState::Provisioned,
                limits,
                listeners: 0,
            });
    }

    /// Adjust a tenant's limits.
    pub fn set_limits(&self, database: &str, limits: TenantLimits) {
        self.register_with(database, limits);
    }

    /// A tenant's limits (default limits for unregistered databases).
    pub fn limits(&self, database: &str) -> TenantLimits {
        self.state
            .lock()
            .tenants
            .get(database)
            .map(|r| r.limits)
            .unwrap_or_default()
    }

    /// A tenant's lifecycle state (unregistered databases count as
    /// provisioned: the registry is advisory for direct engine users).
    pub fn state(&self, database: &str) -> TenantState {
        self.state
            .lock()
            .tenants
            .get(database)
            .map(|r| r.state)
            .unwrap_or(TenantState::Provisioned)
    }

    /// Suspend a tenant: every subsequent request fails terminally.
    pub fn suspend(&self, database: &str) {
        let mut st = self.state.lock();
        st.tenants
            .entry(database.to_string())
            .or_insert(TenantRecord {
                state: TenantState::Provisioned,
                limits: TenantLimits::default(),
                listeners: 0,
            })
            .state = TenantState::Suspended;
    }

    /// Restore a suspended tenant.
    pub fn resume(&self, database: &str) {
        if let Some(r) = self.state.lock().tenants.get_mut(database) {
            r.state = TenantState::Provisioned;
        }
    }

    // --- enforcement --------------------------------------------------------

    /// The per-tenant admission-slot cap: an equal share of the global
    /// in-flight limit across currently active tenants (never below one
    /// slot, never above the component default).
    pub fn fair_slot_cap(&self) -> usize {
        let active = self.admission.active_databases().max(1);
        (self.admission.global_limit / active).max(1)
    }

    /// Admit or reject one request. This is the single enforcement point
    /// behind every [`DbGate`]; the decision order is:
    ///
    /// 1. suspended tenant → terminal `FailedPrecondition`;
    /// 2. free-tier tenant past its daily quota → `ResourceExhausted` with
    ///    `retry_after` = time to the next quota reset;
    /// 3. Backend backlog past the watermark → shed non-conforming tenants
    ///    first, then batch traffic; conforming interactive traffic is
    ///    never shed.
    ///
    /// Every offered request — admitted or not — counts toward the tenant's
    /// observed rate, so a client hammering through rejections stays
    /// non-conforming.
    pub fn check(&self, database: &str, op: GatedOp, class: RequestClass) -> FirestoreResult<()> {
        let now = self.clock.now();
        self.conformance.record(database, 1, now);
        {
            let mut st = self.state.lock();
            st.topk.observe(database, 1);
        }

        if self.state(database) == TenantState::Suspended {
            self.note_throttle(database, op, class, ThrottleReason::Suspended, Duration::ZERO);
            return Err(FirestoreError::FailedPrecondition(format!(
                "database {database} is suspended"
            )));
        }

        if self.limits(database).free_tier && self.billing.quota_exhausted(database) {
            let retry_after = self.billing.time_to_day_roll(now);
            self.note_throttle(database, op, class, ThrottleReason::QuotaExhausted, retry_after);
            return Err(FirestoreError::ResourceExhausted {
                message: format!("database {database} exhausted its daily free quota"),
                retry_after,
            });
        }

        let backlog = self.backend.lock().backlog();
        if backlog > self.policy.backlog_watermark {
            let retry_after = self.shed_retry_after(backlog);
            if !self.conformance.observed_conforming(database, now) {
                self.note_throttle(
                    database,
                    op,
                    class,
                    ThrottleReason::ShedNonConforming,
                    retry_after,
                );
                return Err(FirestoreError::ResourceExhausted {
                    message: format!(
                        "backend overloaded (backlog {backlog}); shedding non-conforming \
                         traffic from {database}"
                    ),
                    retry_after,
                });
            }
            if class == RequestClass::Batch {
                self.note_throttle(database, op, class, ThrottleReason::ShedBatch, retry_after);
                return Err(FirestoreError::ResourceExhausted {
                    message: format!("backend overloaded (backlog {backlog}); shedding batch"),
                    retry_after,
                });
            }
            // Conforming interactive traffic rides out the overload.
        }
        Ok(())
    }

    /// Overload `retry_after`: the base hint scaled by how overloaded the
    /// Backend is, capped so clients never sleep absurdly long.
    fn shed_retry_after(&self, backlog: usize) -> Duration {
        let over = backlog as f64 / self.policy.backlog_watermark.max(1) as f64;
        self.policy
            .shed_retry_base
            .mul_f64(over)
            .min(self.policy.shed_retry_cap)
            .max(self.policy.shed_retry_base)
    }

    /// Report fanout queue pressure (fraction of real-time connections at
    /// or past their queue watermark, 0.0–1.0). Fed each service tick.
    pub fn set_fanout_pressure(&self, pressure: f64) {
        self.state.lock().fanout_pressure = pressure.clamp(0.0, 1.0);
    }

    /// The fanout pressure last reported.
    pub fn fanout_pressure(&self) -> f64 {
        self.state.lock().fanout_pressure
    }

    /// Count a listener registration against the tenant's cap. Under fanout
    /// pressure the effective cap shrinks linearly (down to half the
    /// configured cap at full pressure): existing listeners are untouched —
    /// the pipeline sheds those itself — but the front door stops piling
    /// new subscriptions onto already-saturated queues.
    pub fn listener_opened(&self, database: &str) -> FirestoreResult<()> {
        let (cap, reason) = {
            let mut st = self.state.lock();
            let pressure = st.fanout_pressure;
            let rec = st
                .tenants
                .entry(database.to_string())
                .or_insert(TenantRecord {
                    state: TenantState::Provisioned,
                    limits: TenantLimits::default(),
                    listeners: 0,
                });
            let cap = rec.limits.listener_cap;
            let effective = ((cap as f64) * (1.0 - pressure / 2.0)).ceil() as usize;
            let effective = effective.clamp(1, cap);
            if rec.listeners >= cap {
                (cap, Some(ThrottleReason::ListenerCap))
            } else if rec.listeners >= effective {
                (effective, Some(ThrottleReason::FanoutPressure))
            } else {
                rec.listeners += 1;
                (cap, None)
            }
        };
        if let Some(reason) = reason {
            let retry_after = Duration::from_secs(1);
            self.note_throttle(
                database,
                GatedOp::Listen,
                RequestClass::Interactive,
                reason,
                retry_after,
            );
            let detail = match reason {
                ThrottleReason::FanoutPressure => "effective listener cap under fanout pressure",
                _ => "listener cap",
            };
            return Err(FirestoreError::ResourceExhausted {
                message: format!("database {database} at its {detail} ({cap})"),
                retry_after,
            });
        }
        Ok(())
    }

    /// Release a listener slot.
    pub fn listener_closed(&self, database: &str) {
        if let Some(r) = self.state.lock().tenants.get_mut(database) {
            r.listeners = r.listeners.saturating_sub(1);
        }
    }

    /// Currently registered listeners for a tenant.
    pub fn listeners(&self, database: &str) -> usize {
        self.state
            .lock()
            .tenants
            .get(database)
            .map(|r| r.listeners)
            .unwrap_or(0)
    }

    // --- observability ------------------------------------------------------

    fn note_throttle(
        &self,
        database: &str,
        op: GatedOp,
        class: RequestClass,
        reason: ThrottleReason,
        retry_after: Duration,
    ) {
        let mut st = self.state.lock();
        if st.ledger.len() >= LEDGER_CAP {
            let drop = st.ledger.len() - LEDGER_CAP + 1;
            st.ledger.drain(..drop);
        }
        st.ledger.push(ThrottleEntry {
            at: self.clock.now(),
            database: database.to_string(),
            op,
            class,
            reason,
            retry_after,
        });
        let label = if st.topk.contains(database) {
            database
        } else {
            simkit::obs::OTHER_LABEL
        };
        self.obs.metrics.incr(
            "tenant.throttles",
            &[
                ("db", label),
                ("reason", reason.label()),
                ("class", class.label()),
            ],
            1,
        );
    }

    /// A snapshot of the throttle ledger (oldest first).
    pub fn throttle_ledger(&self) -> Vec<ThrottleEntry> {
        self.state.lock().ledger.clone()
    }

    /// Throttle counts grouped by reason.
    pub fn throttle_counts(&self) -> HashMap<&'static str, u64> {
        let st = self.state.lock();
        let mut out: HashMap<&'static str, u64> = HashMap::new();
        for e in &st.ledger {
            *out.entry(e.reason.label()).or_default() += 1;
        }
        out
    }

    /// The current heavy hitters by offered load (approximate weights).
    pub fn heavy_hitters(&self) -> Vec<(String, u64)> {
        self.state.lock().topk.entries()
    }

    /// The bounded-cardinality metric label for `database`: its own name
    /// while it is a top-K heavy hitter, `other` otherwise.
    pub fn db_label<'a>(&self, database: &'a str) -> &'a str {
        if self.state.lock().topk.contains(database) {
            database
        } else {
            simkit::obs::OTHER_LABEL
        }
    }

    /// Export per-tenant gauges (scheduler backlog for heavy hitters plus
    /// the aggregate) into the metrics registry. Called from the service
    /// tick.
    pub fn export_gauges(&self) {
        let backend = self.backend.lock();
        let total = backend.backlog();
        self.obs
            .metrics
            .gauge_set("service.backend.backlog", &[("db", "all")], total as f64);
        let hitters = self.state.lock().topk.entries();
        let mut named = 0usize;
        for (db, _) in &hitters {
            let b = backend.backlog_of(db);
            named += b;
            self.obs
                .metrics
                .gauge_set("service.backend.backlog", &[("db", db.as_str())], b as f64);
        }
        self.obs.metrics.gauge_set(
            "service.backend.backlog",
            &[("db", simkit::obs::OTHER_LABEL)],
            total.saturating_sub(named) as f64,
        );
    }
}

/// The per-database [`TenantGate`] adapter the service installs on each
/// [`FirestoreDatabase`](firestore_core::FirestoreDatabase) it provisions.
pub struct DbGate {
    database: String,
    control: Arc<TenantControl>,
}

impl DbGate {
    /// A gate binding `database` to `control`.
    pub fn new(database: impl Into<String>, control: Arc<TenantControl>) -> DbGate {
        DbGate {
            database: database.into(),
            control,
        }
    }
}

impl TenantGate for DbGate {
    fn check(&self, op: GatedOp, class: RequestClass) -> FirestoreResult<()> {
        self.control.check(&self.database, op, class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::ConformanceRule;
    use crate::fairshare::{Job, SchedulingMode};

    fn control(clock: &SimClock) -> (Arc<TenantControl>, Arc<Mutex<CpuScheduler>>) {
        let backend = Arc::new(Mutex::new(CpuScheduler::new(4, SchedulingMode::FairShare)));
        let c = Arc::new(TenantControl::new(
            clock.clone(),
            Arc::new(TrafficConformance::new(ConformanceRule::default())),
            Arc::new(BillingMeter::default()),
            backend.clone(),
            Arc::new(AdmissionController::new(1000, 100_000)),
            Obs::new(clock.clone(), 7),
            ShedPolicy {
                backlog_watermark: 10,
                ..ShedPolicy::default()
            },
        ));
        (c, backend)
    }

    fn flood_backlog(backend: &Mutex<CpuScheduler>, jobs: usize) {
        let mut b = backend.lock();
        for i in 0..jobs {
            b.submit(Job::new(
                i as u64,
                "flooder",
                Duration::from_millis(10),
                Timestamp::ZERO,
            ));
        }
    }

    #[test]
    fn suspended_tenant_is_terminal() {
        let clock = SimClock::new();
        let (c, _) = control(&clock);
        c.register("app");
        assert!(c
            .check("app", GatedOp::Get, RequestClass::Interactive)
            .is_ok());
        c.suspend("app");
        let err = c
            .check("app", GatedOp::Get, RequestClass::Interactive)
            .unwrap_err();
        assert!(matches!(err, FirestoreError::FailedPrecondition(_)));
        assert!(!err.is_retriable(), "suspension must not invite retries");
        c.resume("app");
        assert!(c
            .check("app", GatedOp::Get, RequestClass::Interactive)
            .is_ok());
        assert_eq!(c.throttle_counts()["suspended"], 1);
    }

    #[test]
    fn free_tier_quota_exhaustion_carries_reset_horizon() {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1000));
        let (c, _) = control(&clock);
        c.register_with(
            "hobby",
            TenantLimits {
                free_tier: true,
                ..TenantLimits::default()
            },
        );
        c.billing.record_writes("hobby", 20_000); // quota is 20k writes/day
        let err = c
            .check("hobby", GatedOp::Commit, RequestClass::Interactive)
            .unwrap_err();
        let retry_after = err.retry_after().expect("quota throttle carries a hint");
        assert_eq!(retry_after, Duration::from_secs(86_400 - 1000));
        assert!(err.is_retriable());
        // A paying tenant with identical usage sails through.
        c.register("pro");
        c.billing.record_writes("pro", 20_000);
        assert!(c
            .check("pro", GatedOp::Commit, RequestClass::Interactive)
            .is_ok());
    }

    #[test]
    fn shed_order_spares_conforming_interactive_traffic() {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(5));
        let (c, backend) = control(&clock);
        c.register("abuser");
        c.register("good");
        // Make `abuser` non-conforming: a 10k burst in one rate window.
        for _ in 0..10_000 {
            c.conformance.record("abuser", 1, clock.now());
        }
        // Overload the backend past the watermark of 10.
        flood_backlog(&backend, 50);
        // Non-conforming tenant is shed with a retry hint…
        let err = c
            .check("abuser", GatedOp::Query, RequestClass::Interactive)
            .unwrap_err();
        assert!(matches!(err, FirestoreError::ResourceExhausted { .. }));
        assert!(err.retry_after().unwrap() > Duration::ZERO);
        // …conforming batch traffic is shed too…
        let err = c
            .check("good", GatedOp::Query, RequestClass::Batch)
            .unwrap_err();
        assert!(matches!(err, FirestoreError::ResourceExhausted { .. }));
        // …but conforming interactive traffic is never shed.
        assert!(c
            .check("good", GatedOp::Query, RequestClass::Interactive)
            .is_ok());
        let counts = c.throttle_counts();
        assert_eq!(counts["shed_nonconforming"], 1);
        assert_eq!(counts["shed_batch"], 1);
    }

    #[test]
    fn below_watermark_nothing_is_shed() {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(5));
        let (c, _) = control(&clock);
        c.register("spiky");
        for _ in 0..10_000 {
            c.conformance.record("spiky", 1, clock.now());
        }
        // Wildly non-conforming, but the backend is idle: accepted ("will
        // still accept traffic that violates this rule as long as it can
        // maintain isolation").
        assert!(c
            .check("spiky", GatedOp::Query, RequestClass::Interactive)
            .is_ok());
    }

    #[test]
    fn listener_cap_enforced_and_released() {
        let clock = SimClock::new();
        let (c, _) = control(&clock);
        c.register_with(
            "fanout",
            TenantLimits {
                listener_cap: 2,
                ..TenantLimits::default()
            },
        );
        assert!(c.listener_opened("fanout").is_ok());
        assert!(c.listener_opened("fanout").is_ok());
        let err = c.listener_opened("fanout").unwrap_err();
        assert!(matches!(err, FirestoreError::ResourceExhausted { .. }));
        c.listener_closed("fanout");
        assert!(c.listener_opened("fanout").is_ok());
        assert_eq!(c.listeners("fanout"), 2);
    }

    #[test]
    fn fanout_pressure_shrinks_the_effective_listener_cap() {
        let clock = SimClock::new();
        let (c, _) = control(&clock);
        c.register_with(
            "hot",
            TenantLimits {
                listener_cap: 4,
                ..TenantLimits::default()
            },
        );
        // Full pressure halves the cap: 2 of 4 admit.
        c.set_fanout_pressure(1.0);
        assert!(c.listener_opened("hot").is_ok());
        assert!(c.listener_opened("hot").is_ok());
        let err = c.listener_opened("hot").unwrap_err();
        assert!(matches!(err, FirestoreError::ResourceExhausted { .. }));
        let last = c.throttle_ledger().last().unwrap().reason;
        assert_eq!(last, ThrottleReason::FanoutPressure);
        // Pressure subsides: the remaining slots open back up, and the
        // hard cap still closes the door with its own reason.
        c.set_fanout_pressure(0.0);
        assert!(c.listener_opened("hot").is_ok());
        assert!(c.listener_opened("hot").is_ok());
        let err = c.listener_opened("hot").unwrap_err();
        assert!(matches!(err, FirestoreError::ResourceExhausted { .. }));
        assert_eq!(
            c.throttle_ledger().last().unwrap().reason,
            ThrottleReason::ListenerCap
        );
        // Existing listeners were never evicted by pressure.
        assert_eq!(c.listeners("hot"), 4);
    }

    #[test]
    fn ledger_is_bounded_and_ordered() {
        let clock = SimClock::new();
        let (c, _) = control(&clock);
        c.suspend("spammer");
        for _ in 0..(LEDGER_CAP + 100) {
            let _ = c.check("spammer", GatedOp::Get, RequestClass::Interactive);
        }
        let ledger = c.throttle_ledger();
        assert_eq!(ledger.len(), LEDGER_CAP);
        assert!(ledger.iter().all(|e| e.reason == ThrottleReason::Suspended));
    }

    #[test]
    fn offered_load_counts_even_when_rejected() {
        // A tenant hammering through rejections must stay non-conforming:
        // rejections still feed the observed rate.
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(5));
        let (c, backend) = control(&clock);
        c.register("hammer");
        flood_backlog(&backend, 50);
        // First burst marks it non-conforming; subsequent checks keep
        // rejecting and keep counting.
        for _ in 0..2000 {
            let _ = c.check("hammer", GatedOp::Get, RequestClass::Interactive);
        }
        assert!(!c.conformance.observed_conforming("hammer", clock.now()));
        assert!(c.throttle_counts()["shed_nonconforming"] > 0);
    }
}
