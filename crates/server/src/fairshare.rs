//! Fair-CPU-share scheduling keyed by database id (paper §IV-C).
//!
//! "We use a fair-CPU-share scheduler in our Backend tasks, keyed by
//! database ID." The scheduler simulates a pool of CPU cores executing jobs
//! whose *cost* is CPU time (from [`simkit::latency::CpuCostModel`]):
//!
//! * [`SchedulingMode::FairShare`] — processor sharing across *databases*:
//!   each active database receives an equal share of the pool regardless of
//!   how many jobs it has queued; within one database jobs run FIFO.
//! * [`SchedulingMode::Fifo`] — a single global FIFO queue (the "fairness
//!   disabled" arm of Fig 11): a flood from one database heads-of-line
//!   blocks everyone.
//!
//! Time advances in quanta; per quantum the pool's capacity is divided per
//! the mode. Completion times feed the latency measurements of Fig 11 and
//! the YCSB experiments.

use simkit::{Duration, Timestamp};
use std::collections::{BTreeMap, VecDeque};

/// Scheduling discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulingMode {
    /// Fair CPU share per database id.
    FairShare,
    /// Global FIFO (no isolation).
    Fifo,
}

/// Request priority class (§IV-C: "certain batch and internal workloads
/// set custom tags on their RPCs, which allow schedulers to prioritize
/// latency-sensitive workloads over such RPCs"; §VIII proposes exposing
/// this per-database QoS to customers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Priority {
    /// User-facing traffic: served first.
    #[default]
    LatencySensitive,
    /// Batch/internal traffic: uses whatever share remains.
    Batch,
}

/// A unit of CPU work submitted by a database.
#[derive(Clone, Debug)]
pub struct Job {
    /// Opaque id returned on completion.
    pub id: u64,
    /// The owning database.
    pub database: String,
    /// Total CPU cost.
    pub cost: Duration,
    /// Remaining CPU time.
    pub remaining: Duration,
    /// Submission time.
    pub submitted: Timestamp,
    /// QoS class.
    pub priority: Priority,
}

impl Job {
    /// A latency-sensitive job.
    pub fn new(id: u64, database: impl Into<String>, cost: Duration, submitted: Timestamp) -> Job {
        Job {
            id,
            database: database.into(),
            cost,
            remaining: cost,
            submitted,
            priority: Priority::LatencySensitive,
        }
    }

    /// Tag as batch traffic.
    pub fn batch(mut self) -> Job {
        self.priority = Priority::Batch;
        self
    }
}

/// A finished job with its completion time.
#[derive(Clone, Debug)]
pub struct CompletedJob {
    /// The job.
    pub id: u64,
    /// Owning database.
    pub database: String,
    /// CPU cost of the job (for completed-work-share accounting).
    pub cost: Duration,
    /// Submission time.
    pub submitted: Timestamp,
    /// Completion time.
    pub completed: Timestamp,
}

impl CompletedJob {
    /// Queueing + service latency.
    pub fn latency(&self) -> Duration {
        self.completed - self.submitted
    }
}

/// The simulated CPU pool.
#[derive(Debug)]
pub struct CpuScheduler {
    mode: SchedulingMode,
    /// Pool capacity in cores (may be fractional during scale changes).
    cores: f64,
    /// Per-database FIFO queues (fair-share mode): latency-sensitive and
    /// batch, the former always served first within the database's share.
    queues: BTreeMap<String, (VecDeque<Job>, VecDeque<Job>)>,
    /// Global queue (FIFO mode).
    fifo: VecDeque<Job>,
    /// Completions since the last drain.
    completed: Vec<CompletedJob>,
    /// Busy core-time accumulated since the last utilization query.
    busy: Duration,
    /// Wall time accumulated since the last utilization query.
    elapsed: Duration,
}

impl CpuScheduler {
    /// A pool of `cores` CPUs with the given discipline.
    pub fn new(cores: usize, mode: SchedulingMode) -> CpuScheduler {
        CpuScheduler {
            mode,
            cores: cores as f64,
            queues: BTreeMap::new(),
            fifo: VecDeque::new(),
            completed: Vec::new(),
            busy: Duration::ZERO,
            elapsed: Duration::ZERO,
        }
    }

    /// Change the pool size (auto-scaling).
    pub fn set_cores(&mut self, cores: usize) {
        self.cores = cores as f64;
    }

    /// Current pool size.
    pub fn cores(&self) -> usize {
        self.cores as usize
    }

    /// Jobs currently queued or running.
    pub fn backlog(&self) -> usize {
        match self.mode {
            SchedulingMode::FairShare => {
                self.queues.values().map(|(ls, b)| ls.len() + b.len()).sum()
            }
            SchedulingMode::Fifo => self.fifo.len(),
        }
    }

    /// Jobs queued for one database.
    pub fn backlog_of(&self, database: &str) -> usize {
        match self.mode {
            SchedulingMode::FairShare => self
                .queues
                .get(database)
                .map(|(ls, b)| ls.len() + b.len())
                .unwrap_or(0),
            SchedulingMode::Fifo => self.fifo.iter().filter(|j| j.database == database).count(),
        }
    }

    /// Submit a job.
    pub fn submit(&mut self, job: Job) {
        match self.mode {
            SchedulingMode::FairShare => {
                let slot = self.queues.entry(job.database.clone()).or_default();
                match job.priority {
                    Priority::LatencySensitive => slot.0.push_back(job),
                    Priority::Batch => slot.1.push_back(job),
                }
            }
            SchedulingMode::Fifo => self.fifo.push_back(job),
        }
    }

    /// Advance simulated time from `from` to `until` in steps of `quantum`,
    /// executing queued work. Returns jobs completed in the interval.
    pub fn advance(
        &mut self,
        from: Timestamp,
        until: Timestamp,
        quantum: Duration,
    ) -> Vec<CompletedJob> {
        assert!(quantum > Duration::ZERO);
        let mut now = from;
        while now < until {
            let step = quantum.min(until - now);
            let slice_end = now + step;
            self.run_quantum(step, slice_end);
            now = slice_end;
            self.elapsed += step;
        }
        std::mem::take(&mut self.completed)
    }

    fn run_quantum(&mut self, quantum: Duration, quantum_end: Timestamp) {
        // Total core-time available this quantum.
        let mut budget = quantum.mul_f64(self.cores);
        match self.mode {
            SchedulingMode::Fifo => {
                while budget > Duration::ZERO {
                    let Some(job) = self.fifo.front_mut() else {
                        break;
                    };
                    let spend = job.remaining.min(budget);
                    job.remaining = job.remaining - spend;
                    budget = budget - spend;
                    self.busy += spend;
                    if job.remaining == Duration::ZERO {
                        let job = self.fifo.pop_front().expect("front exists");
                        self.completed.push(CompletedJob {
                            id: job.id,
                            database: job.database,
                            cost: job.cost,
                            submitted: job.submitted,
                            completed: quantum_end,
                        });
                    }
                }
            }
            SchedulingMode::FairShare => {
                // Repeatedly divide the remaining budget equally across
                // active databases; a database that drains its queues
                // returns its unused share to the others. Within one
                // database, latency-sensitive jobs run before batch jobs.
                loop {
                    self.queues
                        .retain(|_, (ls, b)| !ls.is_empty() || !b.is_empty());
                    let active = self.queues.len();
                    if active == 0 || budget <= Duration::ZERO {
                        break;
                    }
                    let share = budget.mul_f64(1.0 / active as f64);
                    if share == Duration::ZERO {
                        break;
                    }
                    let mut spent_total = Duration::ZERO;
                    for (ls, batch) in self.queues.values_mut() {
                        let mut share_left = share;
                        for q in [&mut *ls, &mut *batch] {
                            while share_left > Duration::ZERO {
                                let Some(job) = q.front_mut() else { break };
                                let spend = job.remaining.min(share_left);
                                job.remaining = job.remaining - spend;
                                share_left = share_left - spend;
                                spent_total += spend;
                                if job.remaining == Duration::ZERO {
                                    let job = q.pop_front().expect("front exists");
                                    self.completed.push(CompletedJob {
                                        id: job.id,
                                        database: job.database,
                                        cost: job.cost,
                                        submitted: job.submitted,
                                        completed: quantum_end,
                                    });
                                }
                            }
                        }
                    }
                    self.busy += spent_total;
                    if spent_total == Duration::ZERO {
                        break; // nothing runnable consumed budget
                    }
                    budget = budget - spent_total.min(budget);
                }
            }
        }
    }

    /// Utilization since the last call (busy core-time / available
    /// core-time), then reset the counters. Drives the auto-scaler.
    pub fn take_utilization(&mut self) -> f64 {
        let available = self.elapsed.mul_f64(self.cores);
        let u = if available == Duration::ZERO {
            0.0
        } else {
            self.busy.as_secs_f64() / available.as_secs_f64()
        };
        self.busy = Duration::ZERO;
        self.elapsed = Duration::ZERO;
        u.min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, db: &str, cost_ms: u64, at_ms: u64) -> Job {
        Job::new(
            id,
            db,
            Duration::from_millis(cost_ms),
            Timestamp::from_millis(at_ms),
        )
    }

    fn advance_all(s: &mut CpuScheduler, from_ms: u64, until_ms: u64) -> Vec<CompletedJob> {
        s.advance(
            Timestamp::from_millis(from_ms),
            Timestamp::from_millis(until_ms),
            Duration::from_millis(1),
        )
    }

    #[test]
    fn single_job_completes_after_its_cost() {
        let mut s = CpuScheduler::new(1, SchedulingMode::Fifo);
        s.submit(job(1, "a", 5, 0));
        let done = advance_all(&mut s, 0, 10);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].completed, Timestamp::from_millis(5));
        assert_eq!(done[0].latency(), Duration::from_millis(5));
    }

    #[test]
    fn fifo_head_of_line_blocks() {
        let mut s = CpuScheduler::new(1, SchedulingMode::Fifo);
        s.submit(job(1, "culprit", 100, 0));
        s.submit(job(2, "bystander", 1, 0));
        let done = advance_all(&mut s, 0, 200);
        let bystander = done.iter().find(|j| j.id == 2).unwrap();
        assert!(
            bystander.latency() >= Duration::from_millis(100),
            "bystander waits behind the culprit: {:?}",
            bystander.latency()
        );
    }

    #[test]
    fn fair_share_isolates_bystander() {
        let mut s = CpuScheduler::new(1, SchedulingMode::FairShare);
        s.submit(job(1, "culprit", 100, 0));
        s.submit(job(2, "bystander", 1, 0));
        let done = advance_all(&mut s, 0, 200);
        let bystander = done.iter().find(|j| j.id == 2).unwrap();
        assert!(
            bystander.latency() <= Duration::from_millis(3),
            "fair share serves the bystander promptly: {:?}",
            bystander.latency()
        );
        // The culprit still finishes.
        assert!(done.iter().any(|j| j.id == 1));
    }

    #[test]
    fn fair_share_within_database_is_fifo() {
        let mut s = CpuScheduler::new(1, SchedulingMode::FairShare);
        s.submit(job(1, "a", 5, 0));
        s.submit(job(2, "a", 5, 0));
        let done = advance_all(&mut s, 0, 20);
        assert!(done[0].id == 1 && done[1].id == 2);
        assert!(done[0].completed <= done[1].completed);
    }

    #[test]
    fn idle_share_redistributes() {
        // Database `a` has lots of work, `b` a single tiny job: after b
        // finishes, a gets the whole machine; total time ≈ total work.
        let mut s = CpuScheduler::new(1, SchedulingMode::FairShare);
        s.submit(job(1, "a", 50, 0));
        s.submit(job(2, "b", 2, 0));
        let done = advance_all(&mut s, 0, 100);
        let a = done.iter().find(|j| j.id == 1).unwrap();
        assert!(
            a.completed <= Timestamp::from_millis(54),
            "work-conserving: total ≈ 52ms, got {:?}",
            a.completed
        );
    }

    #[test]
    fn more_cores_go_faster() {
        let run = |cores: usize| {
            let mut s = CpuScheduler::new(cores, SchedulingMode::FairShare);
            for i in 0..8 {
                s.submit(job(i, &format!("db{i}"), 10, 0));
            }
            let done = advance_all(&mut s, 0, 200);
            done.iter().map(|j| j.completed).max().unwrap()
        };
        let slow = run(1);
        let fast = run(8);
        assert!(fast < slow);
        assert_eq!(
            fast,
            Timestamp::from_millis(10),
            "8 cores run 8 jobs in parallel"
        );
    }

    #[test]
    fn utilization_accounting() {
        let mut s = CpuScheduler::new(2, SchedulingMode::FairShare);
        s.submit(job(1, "a", 10, 0));
        advance_all(&mut s, 0, 10);
        let u = s.take_utilization();
        assert!((u - 0.5).abs() < 0.05, "one core of two busy: {u}");
        // Counters reset.
        advance_all(&mut s, 10, 20);
        assert_eq!(s.take_utilization(), 0.0);
    }

    #[test]
    fn batch_yields_to_latency_sensitive_within_database() {
        // §VIII: "a bug in their daily batch job should not lead to
        // rejection of user-facing traffic."
        let mut s = CpuScheduler::new(1, SchedulingMode::FairShare);
        s.submit(job(1, "app", 100, 0).batch()); // runaway batch job
        s.submit(job(2, "app", 1, 0)); // user-facing request
        let done = advance_all(&mut s, 0, 200);
        let user = done.iter().find(|j| j.id == 2).unwrap();
        assert!(
            user.latency() <= Duration::from_millis(3),
            "user-facing request preempts the batch backlog: {:?}",
            user.latency()
        );
        // Batch work still completes once user traffic drains.
        assert!(done.iter().any(|j| j.id == 1));
    }

    #[test]
    fn batch_does_not_affect_other_databases() {
        let mut s = CpuScheduler::new(1, SchedulingMode::FairShare);
        for i in 0..10 {
            s.submit(job(i, "batchy", 50, 0).batch());
        }
        s.submit(job(100, "other", 1, 0));
        let done = advance_all(&mut s, 0, 1000);
        let other = done.iter().find(|j| j.id == 100).unwrap();
        assert!(other.latency() <= Duration::from_millis(3));
    }

    #[test]
    fn completed_work_share_stays_near_fair_share_under_flooding() {
        // Property (seeded-loop style): with K total tenants — K-1 conforming
        // tenants with equal offered cost and one flooder with 10× the work —
        // every tenant that stays backlogged completes within ε of 1/K of
        // the pool's work. The flooder gains nothing from flooding.
        let base_seed: u64 = std::env::var("FAIRSHARE_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xF41E);
        for case in 0..8u64 {
            let mut rng = simkit::SimRng::new(base_seed ^ (case.wrapping_mul(0x9E37_79B9)));
            let k = 3 + rng.gen_range(8) as usize; // 3..=10 total tenants
            let horizon_ms: u64 = 2_000;
            let fair_ms = horizon_ms / k as u64;
            let mut s = CpuScheduler::new(1, SchedulingMode::FairShare);
            let mut id = 0u64;
            // Conforming tenants: twice their fair share of work, in jobs
            // with seeded jittered costs — enough to stay backlogged for the
            // whole horizon.
            for t in 0..k - 1 {
                let db = format!("tenant{t}");
                let mut remaining = 2 * fair_ms;
                while remaining > 0 {
                    let cost = (1 + rng.gen_range(4)).min(remaining);
                    s.submit(job(id, &db, cost, 0));
                    id += 1;
                    remaining -= cost;
                }
            }
            // The flooder: 10× the whole horizon's capacity.
            let mut remaining = 10 * horizon_ms;
            while remaining > 0 {
                let cost = (1 + rng.gen_range(4)).min(remaining);
                s.submit(job(id, "flooder", cost, 0));
                id += 1;
                remaining -= cost;
            }
            let done = advance_all(&mut s, 0, horizon_ms);
            let mut per_db: std::collections::HashMap<&str, f64> = Default::default();
            let mut total = 0.0;
            for j in &done {
                let ms = j.cost.as_secs_f64() * 1000.0;
                *per_db.entry(j.database.as_str()).or_default() += ms;
                total += ms;
            }
            let fair = 1.0 / k as f64;
            for t in 0..k - 1 {
                let share = per_db
                    .get(format!("tenant{t}").as_str())
                    .copied()
                    .unwrap_or(0.0)
                    / total;
                assert!(
                    (share - fair).abs() <= 0.1 * fair + 0.01,
                    "case {case} (seed {base_seed:#x}): tenant{t} share {share:.4} \
                     vs fair {fair:.4} with k={k}",
                );
            }
            // The flooder is capped at its fair share too.
            let flooder = per_db.get("flooder").copied().unwrap_or(0.0) / total;
            assert!(
                flooder <= fair * 1.1 + 0.01,
                "case {case}: flooder share {flooder:.4} exceeds fair {fair:.4}"
            );
        }
    }

    #[test]
    fn backlog_tracking() {
        let mut s = CpuScheduler::new(1, SchedulingMode::FairShare);
        s.submit(job(1, "a", 5, 0));
        s.submit(job(2, "b", 5, 0));
        assert_eq!(s.backlog(), 2);
        assert_eq!(s.backlog_of("a"), 1);
        assert_eq!(s.backlog_of("missing"), 0);
        advance_all(&mut s, 0, 20);
        assert_eq!(s.backlog(), 0);
    }
}
