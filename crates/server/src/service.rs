//! The assembled multi-tenant service.
//!
//! One [`FirestoreService`] models one region: a shared Spanner database,
//! a shared Real-time Cache, shared Frontend/Backend pools with
//! auto-scaling, an admission controller, a billing meter, and any number
//! of customer databases multiplexed on top (paper Fig 4). Request entry
//! points meter billing and report the modeled CPU cost and latency of
//! each operation so experiment harnesses can feed the fair-share
//! scheduler and latency distributions.

use crate::admission::AdmissionController;
use crate::autoscale::AutoScaler;
use crate::billing::BillingMeter;
use crate::conformance::TrafficConformance;
use crate::fairshare::{CpuScheduler, SchedulingMode};
use crate::router::{RegionId, Router};
use crate::tenants::{DbGate, ShedPolicy, TenantControl};
use firestore_core::database::DatabaseOptions;
use firestore_core::{
    Caller, Consistency, Document, DocumentName, FirestoreDatabase, FirestoreError,
    FirestoreResult, Query, RequestClass, Write, WriteResult,
};
use parking_lot::{Mutex, RwLock};
use realtime::{Connection, QueryId, RealtimeCache, RealtimeOptions};
use simkit::latency::{CpuCostModel, Deployment, LatencyModel};
use simkit::{Duration, Obs, PhaseBreakdown, SimClock, SimRng, Timestamp};
use spanner::SpannerDatabase;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServiceOptions {
    /// Region name (e.g. `nam5`).
    pub region: String,
    /// Replica placement (drives commit latency, §IV-D2).
    pub deployment: Deployment,
    /// Initial Backend pool size (CPU cores).
    pub backend_tasks: usize,
    /// Initial Frontend pool size.
    pub frontend_tasks: usize,
    /// Backend scheduling discipline (the Fig 11 switch).
    pub scheduling: SchedulingMode,
    /// Whether pools auto-scale (disabled for the fixed-capacity isolation
    /// experiment).
    pub autoscaling: bool,
    /// Real-time cache task pairs.
    pub realtime_tasks: usize,
    /// Seed for the observability trace id (spans and metrics are
    /// deterministic given this seed and the workload).
    pub obs_seed: u64,
    /// Backend backlog beyond which the control plane sheds load
    /// (non-conforming tenants first, then batch traffic).
    pub shed_watermark: usize,
    /// How long `WriteLedger` dedup rows are retained before the periodic
    /// GC collects them. Must cover the client retry-budget horizon.
    pub ledger_retention: Duration,
    /// How often [`FirestoreService::tick`] runs the write-ledger GC.
    pub gc_interval: Duration,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            region: "nam5".to_string(),
            deployment: Deployment::MultiRegional,
            backend_tasks: 8,
            frontend_tasks: 4,
            scheduling: SchedulingMode::FairShare,
            autoscaling: true,
            realtime_tasks: 4,
            obs_seed: 0xB5,
            shed_watermark: 1024,
            ledger_retention: Duration::from_secs(600),
            gc_interval: Duration::from_secs(60),
        }
    }
}

/// The cost and latency breakdown of one served request, for experiment
/// harnesses.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServedRequest {
    /// Backend CPU consumed (what the fair-share scheduler arbitrates).
    pub cpu_cost: Duration,
    /// Modeled storage/replication latency (excluding CPU queueing).
    pub storage_latency: Duration,
    /// Per-phase latency breakdown (queue is filled in by the scheduler-
    /// aware harness; lock/commit-wait are measured simulated-clock time).
    pub breakdown: PhaseBreakdown,
    /// Executor work counters, for queries (EXPLAIN ANALYZE surface).
    pub query_stats: Option<firestore_core::QueryStats>,
}

/// One region of the multi-tenant Firestore service.
pub struct FirestoreService {
    clock: SimClock,
    spanner: SpannerDatabase,
    rtc: RealtimeCache,
    databases: RwLock<HashMap<String, FirestoreDatabase>>,
    /// Billing meter shared by all hosted databases.
    pub billing: Arc<BillingMeter>,
    /// Backend admission control.
    pub admission: Arc<AdmissionController>,
    /// Conforming-traffic tracking.
    pub conformance: Arc<TrafficConformance>,
    /// The tenant control plane: registry, lifecycle, throttles, sheds.
    pub tenants: Arc<TenantControl>,
    /// Global routing table (§IV-A): database → hosting region.
    pub router: Router,
    /// The Backend CPU pool.
    pub backend: Arc<Mutex<CpuScheduler>>,
    backend_scaler: Mutex<AutoScaler>,
    /// Last write-ledger GC run.
    last_gc: Mutex<Timestamp>,
    frontend_tasks: AtomicUsize,
    frontend_scaler: Mutex<AutoScaler>,
    latency: LatencyModel,
    cost: CpuCostModel,
    options: ServiceOptions,
    obs: Obs,
}

impl FirestoreService {
    /// Bring up a region.
    pub fn new(clock: SimClock, options: ServiceOptions) -> FirestoreService {
        let spanner = SpannerDatabase::new(clock.clone());
        let rtc = RealtimeCache::new(
            spanner.truetime().clone(),
            RealtimeOptions {
                tasks: options.realtime_tasks,
                ..RealtimeOptions::default()
            },
        );
        let latency = match options.deployment {
            Deployment::Regional => LatencyModel::regional(),
            Deployment::MultiRegional => LatencyModel::multi_regional(),
        };
        // One observability handle for the whole region: spans from the
        // service, planner, Spanner, and Real-time Cache share one trace.
        let obs = Obs::new(clock.clone(), options.obs_seed);
        spanner.set_obs(Some(obs.clone()));
        rtc.set_obs(Some(obs.clone()));
        let billing = Arc::new(BillingMeter::default());
        let admission = Arc::new(AdmissionController::new(1000, 100_000));
        let conformance = Arc::new(TrafficConformance::default());
        let backend = Arc::new(Mutex::new(CpuScheduler::new(
            options.backend_tasks,
            options.scheduling,
        )));
        let tenants = Arc::new(TenantControl::new(
            clock.clone(),
            conformance.clone(),
            billing.clone(),
            backend.clone(),
            admission.clone(),
            obs.clone(),
            ShedPolicy {
                backlog_watermark: options.shed_watermark,
                ..ShedPolicy::default()
            },
        ));
        FirestoreService {
            clock,
            spanner,
            rtc,
            databases: RwLock::new(HashMap::new()),
            billing,
            admission,
            conformance,
            tenants,
            router: Router::new(),
            backend,
            backend_scaler: Mutex::new(AutoScaler::new(options.backend_tasks.max(1), 4096)),
            last_gc: Mutex::new(Timestamp::ZERO),
            frontend_tasks: AtomicUsize::new(options.frontend_tasks),
            frontend_scaler: Mutex::new(AutoScaler::new(options.frontend_tasks.max(1), 4096)),
            latency,
            cost: CpuCostModel::default(),
            options,
            obs,
        }
    }

    /// The region's observability handle (tracer + metrics registry).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The shared Spanner database.
    pub fn spanner(&self) -> &SpannerDatabase {
        &self.spanner
    }

    /// The shared Real-time Cache.
    pub fn realtime(&self) -> &RealtimeCache {
        &self.rtc
    }

    /// The latency model of this region's deployment.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// The CPU cost model.
    pub fn cost_model(&self) -> &CpuCostModel {
        &self.cost
    }

    /// Current Frontend pool size.
    pub fn frontend_tasks(&self) -> usize {
        self.frontend_tasks.load(Ordering::Relaxed)
    }

    /// Provision a database on the shared infrastructure ("initialize a
    /// Firestore database", §I — this is all a customer does).
    pub fn create_database(&self, id: &str) -> FirestoreDatabase {
        let db = FirestoreDatabase::create(
            self.spanner.clone(),
            DatabaseOptions {
                database_id: id.to_string(),
                ..DatabaseOptions::default()
            },
        );
        db.set_observer(self.rtc.observer_for(db.directory()));
        // Provision the tenant in the control plane and install its gate:
        // from here on every entry point — including client-SDK flushes
        // that reach the engine directly — consults tenant policy first.
        self.tenants.register(id);
        db.set_gate(Some(Arc::new(DbGate::new(id, self.tenants.clone()))));
        self.databases.write().insert(id.to_string(), db.clone());
        // Placement is chosen at creation time and immutable (§IV-A).
        let _ = self.router.register(id, RegionId(self.options.region.clone()));
        db
    }

    /// Look up a hosted database.
    pub fn database(&self, id: &str) -> Option<FirestoreDatabase> {
        self.databases.read().get(id).cloned()
    }

    /// Number of hosted databases.
    pub fn database_count(&self) -> usize {
        self.databases.read().len()
    }

    fn require(&self, id: &str) -> FirestoreResult<FirestoreDatabase> {
        self.database(id)
            .ok_or_else(|| FirestoreError::NotFound(format!("database {id}")))
    }

    /// Admit one request for `database` or fail with a retriable
    /// `Unavailable`; the returned guard releases the slot when dropped, so
    /// every exit path of an entry point gives the slot back. The
    /// per-database limit is bounded by the tenant's fair share of the
    /// global in-flight budget, so one tenant cannot monopolize the slots.
    fn admit<'a>(&'a self, database: &'a str) -> FirestoreResult<AdmitGuard<'a>> {
        let cap = self.tenants.fair_slot_cap();
        match self.admission.try_admit_bounded(database, cap) {
            Ok(()) => {
                self.obs
                    .metrics
                    .incr("service.admission.admitted", &[("db", database)], 1);
                Ok(AdmitGuard {
                    admission: &self.admission,
                    database,
                })
            }
            Err(e) => {
                self.obs
                    .metrics
                    .incr("service.admission.rejected", &[("db", database)], 1);
                Err(e.into())
            }
        }
    }

    /// Install (or replace) a database's security rules. The ruleset is
    /// parsed and compiled to its first-match decision tree here, at
    /// deploy time, so no per-request work depends on rules complexity.
    pub fn set_rules(&self, database: &str, source: &str) -> FirestoreResult<()> {
        let span = self.obs.tracer.span("service.set_rules");
        span.attr("db", database);
        span.attr("bytes", source.len());
        let db = self.require(database)?;
        db.set_rules(source)
    }

    // --- metered request entry points -------------------------------------

    /// Serve a single-document read.
    pub fn get_document(
        &self,
        database: &str,
        name: &DocumentName,
        caller: &Caller,
        rng: &mut SimRng,
    ) -> FirestoreResult<(Option<Document>, ServedRequest)> {
        let span = self.obs.tracer.span("service.get_document");
        span.attr("db", database);
        let db = self.require(database)?;
        let _slot = self.admit(database)?;
        let doc = db.get_document(name, Consistency::Strong, caller)?;
        self.billing.record_reads(database, 1);
        let bytes = doc.as_ref().map(|d| d.approx_size()).unwrap_or(0);
        let cpu_cost = self.cost.query_cost(1, 1, bytes);
        let storage_latency = self.latency.spanner_read(1, rng) + self.latency.hop(rng);
        let breakdown = PhaseBreakdown {
            execute: cpu_cost + storage_latency,
            ..PhaseBreakdown::default()
        };
        breakdown.record(&self.obs.metrics, &[("db", database), ("op", "get")]);
        let served = ServedRequest {
            cpu_cost,
            storage_latency,
            breakdown,
            query_stats: None,
        };
        Ok((doc, served))
    }

    /// Serve a query.
    pub fn run_query(
        &self,
        database: &str,
        query: &Query,
        caller: &Caller,
        rng: &mut SimRng,
    ) -> FirestoreResult<(firestore_core::executor::QueryResult, ServedRequest)> {
        let span = self.obs.tracer.span("service.run_query");
        span.attr("db", database);
        let db = self.require(database)?;
        let _slot = self.admit(database)?;
        let result = db.run_query(query, Consistency::Strong, caller)?;
        self.billing
            .record_reads(database, result.documents.len() as u64);
        let cpu_cost = self.cost.query_cost(
            result.stats.entries_examined + result.stats.seeks * 4,
            result.stats.docs_fetched,
            result.stats.bytes_returned,
        );
        let storage_latency = self
            .latency
            .spanner_read(result.stats.entries_examined.max(1), rng)
            + self.latency.hop(rng);
        // The fixed per-RPC overhead models parsing + planning; the rest of
        // the CPU cost plus the storage reads are the executor's share.
        let plan = self.cost.per_rpc;
        let breakdown = PhaseBreakdown {
            plan,
            execute: cpu_cost.saturating_sub(plan) + storage_latency,
            ..PhaseBreakdown::default()
        };
        breakdown.record(&self.obs.metrics, &[("db", database), ("op", "query")]);
        let served = ServedRequest {
            cpu_cost,
            storage_latency,
            breakdown,
            query_stats: Some(result.stats),
        };
        Ok((result, served))
    }

    /// Serve a commit.
    pub fn commit(
        &self,
        database: &str,
        writes: Vec<Write>,
        caller: &Caller,
        rng: &mut SimRng,
    ) -> FirestoreResult<(WriteResult, ServedRequest)> {
        let span = self.obs.tracer.span("service.commit");
        span.attr("db", database);
        let db = self.require(database)?;
        let _slot = self.admit(database)?;
        let deletes = writes
            .iter()
            .filter(|w| matches!(w.op, firestore_core::WriteOp::Delete { .. }))
            .count();
        let result = db.commit_writes(writes, caller)?;
        self.billing.record_writes(
            database,
            (result.stats.documents - deletes.min(result.stats.documents)) as u64,
        );
        self.billing.record_deletes(database, deletes as u64);
        // The engine's cost ledger now charges per-index maintenance, redo
        // appends/fsyncs, and lock release to the clock itself
        // (`stats.engine_cpu`, measured); the modeled residual is the RPC
        // overhead + payload term, so the per-entry cost isn't counted
        // twice.
        let cpu_cost =
            self.cost.write_cost(0, result.stats.payload_bytes) + result.stats.engine_cpu;
        let rtc_hops = self.latency.hop(rng).mul_f64(2.0); // Prepare + Accept hops
        let spanner_latency = self.latency.spanner_commit(
            result.stats.participants,
            result.stats.payload_bytes,
            rng,
        );
        let breakdown = PhaseBreakdown {
            execute: cpu_cost + spanner_latency,
            lock_wait: result.stats.lock_wait,
            commit_wait: result.stats.commit_wait,
            fanout: rtc_hops,
            ..PhaseBreakdown::default()
        };
        breakdown.record(&self.obs.metrics, &[("db", database), ("op", "commit")]);
        let served = ServedRequest {
            cpu_cost,
            storage_latency: spanner_latency + rtc_hops,
            breakdown,
            query_stats: None,
        };
        Ok((result, served))
    }

    /// Open a real-time connection.
    pub fn connect(&self) -> Connection {
        self.rtc.connect()
    }

    /// Register a real-time query for `conn`: runs the initial (unwindowed)
    /// snapshot on the Backend, bills its reads, and subscribes (§IV-D4
    /// steps 1–4).
    pub fn listen(
        &self,
        database: &str,
        conn: &Connection,
        query: Query,
        caller: &Caller,
    ) -> FirestoreResult<QueryId> {
        let span = self.obs.tracer.span("service.listen");
        span.attr("db", database);
        self.obs
            .metrics
            .incr("service.listens", &[("db", database)], 1);
        let db = self.require(database)?;
        // The initial snapshot below runs through the tenant gate (it is a
        // query); the listener registration itself is capped here.
        self.tenants.listener_opened(database)?;
        let snapshot_ts = db.strong_read_ts();
        let initial = match db.run_query(
            &query.without_window(),
            Consistency::AtTimestamp(snapshot_ts),
            caller,
        ) {
            Ok(r) => r,
            Err(e) => {
                self.tenants.listener_closed(database);
                return Err(e);
            }
        };
        self.billing
            .record_reads(database, initial.documents.len() as u64);
        Ok(conn.listen(db.directory(), query, initial.documents, snapshot_ts))
    }

    /// Gate one unit of Backend work submitted outside the RPC entry points
    /// (load-driver jobs, batch pipelines), honoring the request class: the
    /// control plane sheds batch work before interactive work under
    /// overload. Returns `Ok` when the work may be enqueued.
    pub fn admit_work(&self, database: &str, class: RequestClass) -> FirestoreResult<()> {
        self.tenants
            .check(database, firestore_core::GatedOp::Query, class)
    }

    /// Model the per-listener notification delays of one fan-out: each
    /// Frontend task serializes the sends of the listeners it hosts
    /// (round-robin assignment), so delay grows within a task but the pool
    /// scales out with listener count (Fig 9).
    pub fn fanout_delays(&self, listeners: usize, rng: &mut SimRng) -> Vec<Duration> {
        let tasks = self.frontend_tasks.load(Ordering::Relaxed).max(1);
        let per_send = Duration::from_micros(30);
        (0..listeners)
            .map(|i| {
                let rank_in_task = (i / tasks) as u64;
                self.latency.hop(rng) + per_send * (rank_in_task + 1)
            })
            .collect()
    }

    /// Observe real-time load and let the Frontend pool scale with the
    /// number of active queries ("the increase in active real-time queries
    /// increases the load on Frontend tasks, which leads autoscaling to
    /// quickly scale up the number of Frontend tasks, independently of the
    /// rest of the system", §V-B1).
    pub fn autoscale_frontends(&self, now: Timestamp) {
        if !self.options.autoscaling {
            return;
        }
        let active = self.rtc.stats().active_queries;
        let tasks = self.frontend_tasks.load(Ordering::Relaxed);
        // Model: one task comfortably serves ~64 active queries.
        let utilization = active as f64 / (tasks as f64 * 64.0);
        if let Some(new) = self.frontend_scaler.lock().observe(tasks, utilization, now) {
            self.frontend_tasks.store(new, Ordering::Relaxed);
        }
    }

    /// Observe Backend utilization and scale the pool.
    pub fn autoscale_backend(&self, now: Timestamp) {
        if !self.options.autoscaling {
            return;
        }
        let mut backend = self.backend.lock();
        let utilization = backend.take_utilization();
        let tasks = backend.cores();
        if let Some(new) = self.backend_scaler.lock().observe(tasks, utilization, now) {
            backend.set_cores(new);
        }
    }

    /// Periodic service maintenance: real-time heartbeats, billing day
    /// rolls, storage maintenance, auto-scaling.
    pub fn tick(&self) {
        let now = self.clock.now();
        self.rtc.tick();
        // Feed fanout queue pressure to the control plane: under pressure
        // the effective per-tenant listener cap shrinks, shedding new
        // subscriptions at admission instead of onto saturated queues.
        self.tenants.set_fanout_pressure(self.rtc.fanout_pressure());
        self.billing.maybe_roll_day(now);
        self.spanner.maintain(Timestamp::from_nanos(
            now.as_nanos()
                .saturating_sub(Duration::from_secs(3600).as_nanos()),
        ));
        self.autoscale_frontends(now);
        self.autoscale_backend(now);
        // Refresh storage gauges.
        let dbs: Vec<(String, FirestoreDatabase)> = self
            .databases
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        for (id, db) in &dbs {
            if let Ok((_, bytes)) = db.storage_stats() {
                self.billing.set_storage(id, bytes as u64);
            }
        }
        // Collect expired write-ledger dedup rows (PR 3's exactly-once
        // machinery) so long fleet runs don't grow the ledger unboundedly.
        // The retention horizon must outlive the client retry budget, so a
        // late retry still finds its row.
        let run_gc = {
            let mut last = self.last_gc.lock();
            if now.saturating_sub(*last) >= self.options.gc_interval {
                *last = now;
                true
            } else {
                false
            }
        };
        if run_gc {
            let horizon = Timestamp::from_nanos(
                now.as_nanos()
                    .saturating_sub(self.options.ledger_retention.as_nanos()),
            );
            let mut collected = 0usize;
            for (_, db) in &dbs {
                if let Ok(n) = db.gc_write_ledger(horizon) {
                    collected += n;
                }
            }
            if collected > 0 {
                self.obs
                    .metrics
                    .incr("service.ledger_gc.rows", &[], collected as u64);
            }
        }
        // Per-tenant backlog gauges (top-K heavy hitters + `other`).
        self.tenants.export_gauges();
    }
}

/// Holds one admitted-request slot; dropping it releases the slot.
struct AdmitGuard<'a> {
    admission: &'a AdmissionController,
    database: &'a str,
}

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        self.admission.release(self.database);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firestore_core::database::doc;
    use firestore_core::Value;

    fn service() -> FirestoreService {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        FirestoreService::new(clock, ServiceOptions::default())
    }

    #[test]
    fn set_rules_compiles_and_enforces() {
        let svc = service();
        let db = svc.create_database("app");
        svc.set_rules(
            "app",
            r#"
            service cloud.firestore {
              match /databases/{database}/documents {
                match /open/{d} { allow read, write: if true; }
              }
            }
            "#,
        )
        .unwrap();
        let user = Caller::EndUser(Some(rules::AuthContext::uid("u")));
        db.commit_writes(
            vec![Write::set(doc("/open/x"), [("v", Value::Int(1))])],
            &user,
        )
        .unwrap();
        assert!(db
            .commit_writes(
                vec![Write::set(doc("/closed/x"), [("v", Value::Int(1))])],
                &user,
            )
            .is_err());
        // Rules deploys are routed per database; unknown databases error.
        assert!(svc.set_rules("nope", "service cloud.firestore {}").is_err());
        // Bad source is rejected at deploy time, not at request time.
        assert!(svc.set_rules("app", "match oops {").is_err());
    }

    #[test]
    fn multi_tenant_databases_are_isolated() {
        let svc = service();
        let a = svc.create_database("app-a");
        let b = svc.create_database("app-b");
        assert_eq!(svc.database_count(), 2);
        a.commit_writes(
            vec![Write::set(doc("/users/u"), [("app", Value::from("a"))])],
            &Caller::Service,
        )
        .unwrap();
        // Database B cannot see A's document despite the shared Spanner.
        assert!(b
            .get_document(&doc("/users/u"), Consistency::Strong, &Caller::Service)
            .unwrap()
            .is_none());
        assert!(a
            .get_document(&doc("/users/u"), Consistency::Strong, &Caller::Service)
            .unwrap()
            .is_some());
    }

    #[test]
    fn requests_are_metered() {
        let svc = service();
        svc.create_database("app");
        let mut rng = SimRng::new(1);
        let (result, served) = svc
            .commit(
                "app",
                vec![Write::set(doc("/c/d"), [("v", Value::Int(1))])],
                &Caller::Service,
                &mut rng,
            )
            .unwrap();
        assert!(result.commit_ts > Timestamp::ZERO);
        assert!(served.cpu_cost > Duration::ZERO);
        assert!(served.storage_latency > Duration::ZERO);
        assert_eq!(svc.billing.usage("app").writes, 1);

        let (doc_read, _) = svc
            .get_document("app", &doc("/c/d"), &Caller::Service, &mut rng)
            .unwrap();
        assert!(doc_read.is_some());
        assert_eq!(svc.billing.usage("app").reads, 1);

        let q = Query::parse("/c").unwrap();
        let (qr, _) = svc
            .run_query("app", &q, &Caller::Service, &mut rng)
            .unwrap();
        assert_eq!(qr.documents.len(), 1);
        assert_eq!(svc.billing.usage("app").reads, 2);

        svc.commit(
            "app",
            vec![Write::delete(doc("/c/d"))],
            &Caller::Service,
            &mut rng,
        )
        .unwrap();
        assert_eq!(svc.billing.usage("app").deletes, 1);
    }

    #[test]
    fn admission_gates_entry_points_with_retriable_errors() {
        let svc = service();
        svc.create_database("throttled");
        let mut rng = SimRng::new(9);
        // Emergency-cap the database to zero in-flight requests (§VI).
        svc.admission.set_override("throttled", 0);
        let err = svc
            .get_document("throttled", &doc("/c/d"), &Caller::Service, &mut rng)
            .unwrap_err();
        assert!(matches!(err, FirestoreError::Unavailable(_)));
        assert!(err.is_retriable(), "shed load must invite a backoff-retry");
        let err = svc
            .commit(
                "throttled",
                vec![Write::set(doc("/c/d"), [("v", Value::Int(1))])],
                &Caller::Service,
                &mut rng,
            )
            .unwrap_err();
        assert!(err.is_retriable());
        assert!(svc.admission.stats().rejected_per_db >= 2);
        // Lifting the cap restores service, and slots were not leaked.
        svc.admission.clear_override("throttled");
        svc.get_document("throttled", &doc("/c/d"), &Caller::Service, &mut rng)
            .unwrap();
        assert_eq!(svc.admission.inflight("throttled"), 0);
    }

    #[test]
    fn unknown_database_rejected() {
        let svc = service();
        let mut rng = SimRng::new(1);
        assert!(matches!(
            svc.get_document("ghost", &doc("/c/d"), &Caller::Service, &mut rng),
            Err(FirestoreError::NotFound(_))
        ));
    }

    #[test]
    fn realtime_listen_through_service() {
        let svc = service();
        svc.create_database("app");
        let conn = svc.connect();
        let q = Query::parse("/scores").unwrap();
        svc.listen("app", &conn, q, &Caller::Service).unwrap();
        conn.poll(); // initial snapshot
        let mut rng = SimRng::new(2);
        svc.commit(
            "app",
            vec![Write::set(doc("/scores/game1"), [("home", Value::Int(1))])],
            &Caller::Service,
            &mut rng,
        )
        .unwrap();
        svc.realtime().tick();
        let events = conn.poll();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn multi_regional_commits_slower_than_regional() {
        let mk = |deployment| {
            let clock = SimClock::new();
            clock.advance(Duration::from_secs(1));
            let svc = FirestoreService::new(
                clock,
                ServiceOptions {
                    deployment,
                    ..ServiceOptions::default()
                },
            );
            svc.create_database("app");
            let mut rng = SimRng::new(3);
            let mut total = Duration::ZERO;
            for i in 0..50 {
                let (_, served) = svc
                    .commit(
                        "app",
                        vec![Write::set(
                            doc(&format!("/c/d{i}")),
                            [("v", Value::Int(i as i64))],
                        )],
                        &Caller::Service,
                        &mut rng,
                    )
                    .unwrap();
                total += served.storage_latency;
            }
            total
        };
        let regional = mk(Deployment::Regional);
        let multi = mk(Deployment::MultiRegional);
        assert!(
            multi > regional.mul_f64(2.0),
            "multi {multi} vs regional {regional}"
        );
    }

    #[test]
    fn frontend_autoscaling_follows_listeners() {
        let svc = service();
        svc.create_database("app");
        let before = svc.frontend_tasks();
        // Register many listeners, then advance past the reaction delay.
        let conn = svc.connect();
        for i in 0..2000 {
            let q = Query::parse(&format!("/c{i}")).unwrap();
            svc.listen("app", &conn, q, &Caller::Service).unwrap();
        }
        svc.autoscale_frontends(svc.clock().now());
        svc.clock().advance(Duration::from_secs(60));
        svc.autoscale_frontends(svc.clock().now());
        assert!(
            svc.frontend_tasks() > before,
            "pool should grow under listener load"
        );
        // Fan-out delays shrink as the pool grows.
        let mut rng = SimRng::new(4);
        let delays = svc.fanout_delays(1000, &mut rng);
        assert_eq!(delays.len(), 1000);
    }

    #[test]
    fn databases_route_to_their_region() {
        let svc = service();
        svc.create_database("app");
        assert_eq!(
            svc.router.route("app").unwrap(),
            crate::router::RegionId("nam5".into())
        );
        assert!(svc.router.route("elsewhere").is_err());
    }

    #[test]
    fn tick_runs_maintenance() {
        let svc = service();
        svc.create_database("app");
        let mut rng = SimRng::new(5);
        svc.commit(
            "app",
            vec![Write::set(doc("/c/d"), [("v", Value::Int(1))])],
            &Caller::Service,
            &mut rng,
        )
        .unwrap();
        svc.tick();
        assert!(svc.billing.usage("app").storage_bytes > 0);
    }
}
