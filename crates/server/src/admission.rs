//! Admission control: per-database in-flight limits and load shedding.
//!
//! §VI: "One is a low-tech manual tool that limits the number of per-task
//! in-flight RPCs for a given database, which has been one of our more
//! effective mechanisms for preventing isolation failure." §IV-C: "some
//! components do targeted load-shedding to drop excess work before
//! auto-scaling can take effect."

use firestore_core::FirestoreError;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Why a request was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The database hit its in-flight limit.
    PerDatabaseLimit,
    /// The whole component is shedding load.
    Overloaded,
}

impl From<AdmissionError> for FirestoreError {
    /// Admission rejections surface as a retriable `Unavailable`: clients
    /// should back off and retry — under their retry budget, so shed load
    /// does not multiply itself into a retry storm (§VI).
    fn from(e: AdmissionError) -> FirestoreError {
        match e {
            AdmissionError::PerDatabaseLimit => FirestoreError::Unavailable(
                "per-database in-flight limit reached; retry with backoff".into(),
            ),
            AdmissionError::Overloaded => {
                FirestoreError::Unavailable("service is shedding load; retry with backoff".into())
            }
        }
    }
}

/// Counters for observability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected by a per-database limit.
    pub rejected_per_db: u64,
    /// Requests shed by the global limit.
    pub shed: u64,
}

#[derive(Default)]
struct AdmissionState {
    inflight: HashMap<String, usize>,
    total_inflight: usize,
    /// Manual per-database overrides (the §VI emergency tool).
    overrides: HashMap<String, usize>,
    stats: AdmissionStats,
}

/// The admission controller of one component (e.g. the Backend pool).
pub struct AdmissionController {
    /// Default per-database in-flight limit.
    pub default_limit: usize,
    /// Global in-flight limit; beyond it, excess work is shed.
    pub global_limit: usize,
    state: Mutex<AdmissionState>,
}

impl AdmissionController {
    /// Create with the given limits.
    pub fn new(default_limit: usize, global_limit: usize) -> AdmissionController {
        AdmissionController {
            default_limit,
            global_limit,
            state: Mutex::new(AdmissionState::default()),
        }
    }

    /// Manually cap one database (set below the default to throttle an
    /// incident, §VI).
    pub fn set_override(&self, database: &str, limit: usize) {
        self.state
            .lock()
            .overrides
            .insert(database.to_string(), limit);
    }

    /// Remove a manual cap.
    pub fn clear_override(&self, database: &str) {
        self.state.lock().overrides.remove(database);
    }

    /// Try to admit a request for `database`. On success the caller must
    /// call [`AdmissionController::release`] when the request finishes.
    pub fn try_admit(&self, database: &str) -> Result<(), AdmissionError> {
        let mut st = self.state.lock();
        if st.total_inflight >= self.global_limit {
            st.stats.shed += 1;
            return Err(AdmissionError::Overloaded);
        }
        let limit = st
            .overrides
            .get(database)
            .copied()
            .unwrap_or(self.default_limit);
        let inflight = st.inflight.entry(database.to_string()).or_insert(0);
        if *inflight >= limit {
            st.stats.rejected_per_db += 1;
            return Err(AdmissionError::PerDatabaseLimit);
        }
        *inflight += 1;
        st.total_inflight += 1;
        st.stats.admitted += 1;
        Ok(())
    }

    /// Like [`AdmissionController::try_admit`], but with the per-database
    /// limit further bounded by `cap` — the tenant's fair share of the
    /// global limit, computed by the control plane from the number of
    /// currently active tenants. A manual override (the §VI emergency tool)
    /// still wins when it is tighter.
    pub fn try_admit_bounded(&self, database: &str, cap: usize) -> Result<(), AdmissionError> {
        let mut st = self.state.lock();
        if st.total_inflight >= self.global_limit {
            st.stats.shed += 1;
            return Err(AdmissionError::Overloaded);
        }
        let limit = st
            .overrides
            .get(database)
            .copied()
            .unwrap_or(self.default_limit)
            .min(cap.max(1));
        let inflight = st.inflight.entry(database.to_string()).or_insert(0);
        if *inflight >= limit {
            st.stats.rejected_per_db += 1;
            return Err(AdmissionError::PerDatabaseLimit);
        }
        *inflight += 1;
        st.total_inflight += 1;
        st.stats.admitted += 1;
        Ok(())
    }

    /// Number of databases with at least one in-flight request.
    pub fn active_databases(&self) -> usize {
        self.state.lock().inflight.values().filter(|&&n| n > 0).count()
    }

    /// Release a previously admitted request.
    pub fn release(&self, database: &str) {
        let mut st = self.state.lock();
        if let Some(n) = st.inflight.get_mut(database) {
            *n = n.saturating_sub(1);
        }
        st.total_inflight = st.total_inflight.saturating_sub(1);
    }

    /// Current in-flight count for a database.
    pub fn inflight(&self, database: &str) -> usize {
        self.state
            .lock()
            .inflight
            .get(database)
            .copied()
            .unwrap_or(0)
    }

    /// Counters.
    pub fn stats(&self) -> AdmissionStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_database_limit_enforced() {
        let a = AdmissionController::new(2, 100);
        assert!(a.try_admit("db1").is_ok());
        assert!(a.try_admit("db1").is_ok());
        assert_eq!(a.try_admit("db1"), Err(AdmissionError::PerDatabaseLimit));
        // Another database is unaffected.
        assert!(a.try_admit("db2").is_ok());
        a.release("db1");
        assert!(a.try_admit("db1").is_ok());
        assert_eq!(a.stats().rejected_per_db, 1);
    }

    #[test]
    fn global_shedding() {
        let a = AdmissionController::new(10, 3);
        for i in 0..3 {
            assert!(a.try_admit(&format!("db{i}")).is_ok());
        }
        assert_eq!(a.try_admit("db9"), Err(AdmissionError::Overloaded));
        assert_eq!(a.stats().shed, 1);
        a.release("db0");
        assert!(a.try_admit("db9").is_ok());
    }

    #[test]
    fn manual_override_caps_one_database() {
        let a = AdmissionController::new(10, 100);
        a.set_override("noisy", 1);
        assert!(a.try_admit("noisy").is_ok());
        assert_eq!(a.try_admit("noisy"), Err(AdmissionError::PerDatabaseLimit));
        a.clear_override("noisy");
        assert!(a.try_admit("noisy").is_ok());
        assert_eq!(a.inflight("noisy"), 2);
    }

    #[test]
    fn bounded_admission_respects_fair_share_cap() {
        let a = AdmissionController::new(10, 100);
        // Fair-share cap of 2 binds below the default limit of 10.
        assert!(a.try_admit_bounded("db1", 2).is_ok());
        assert!(a.try_admit_bounded("db1", 2).is_ok());
        assert_eq!(
            a.try_admit_bounded("db1", 2),
            Err(AdmissionError::PerDatabaseLimit)
        );
        // A cap of zero still admits one request (no tenant is starved).
        assert!(a.try_admit_bounded("db2", 0).is_ok());
        // A tighter manual override wins over a generous cap.
        a.set_override("db3", 1);
        assert!(a.try_admit_bounded("db3", 50).is_ok());
        assert_eq!(
            a.try_admit_bounded("db3", 50),
            Err(AdmissionError::PerDatabaseLimit)
        );
        assert_eq!(a.active_databases(), 3);
    }

    #[test]
    fn release_is_saturating() {
        let a = AdmissionController::new(10, 100);
        a.release("never-admitted");
        assert_eq!(a.inflight("never-admitted"), 0);
    }

    #[test]
    fn rejections_map_to_retriable_unavailable() {
        let e: FirestoreError = AdmissionError::PerDatabaseLimit.into();
        assert!(e.is_retriable());
        let e: FirestoreError = AdmissionError::Overloaded.into();
        assert!(e.is_retriable());
    }
}
