#![warn(missing_docs)]

//! The Mobile/Web client SDK (paper §III-E, §IV-E).
//!
//! "The Client (Mobile and Web) SDKs build a local cache of the documents
//! accessed by the client together with the necessary local indexes ...
//! Mutations to documents by the client are acknowledged immediately after
//! updating the local cache; the updates are also flushed to the Firestore
//! API asynchronously. ... A disconnected client can therefore continue to
//! serve queries and updates using its local cache, and reconcile its local
//! cache when it eventually reconnects."
//!
//! * [`store`] — the local cache: server documents plus the ordered queue
//!   of pending (unacknowledged) mutations, merged into a latency-
//!   compensated overlay view.
//! * [`listener`] — snapshot listeners: merged-query views that emit
//!   `onSnapshot`-style deltas, flagged `from_cache` while disconnected.
//! * [`client`] — [`client::FirestoreClient`]: reads, blind writes,
//!   optimistic-concurrency transactions with automatic retry, real-time
//!   listeners, disconnect/reconnect reconciliation, and opt-in cache
//!   persistence.
//!
//! The "network" between the SDK and the service is simulated by direct
//! calls into [`firestore_core::FirestoreDatabase`] and
//! [`realtime::RealtimeCache`]; a [`client::FirestoreClient`] in the
//! disconnected state simply stops making those calls, exactly like a
//! device in airplane mode.

pub mod client;
pub mod listener;
pub mod store;

pub use client::{ClientError, ClientOptions, FirestoreClient};
pub use listener::{ClientSnapshot, ListenerId};
pub use store::{LocalStore, PendingMutation};
